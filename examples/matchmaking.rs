//! Matchmaking at scale: derive a probabilistic database from a synthetic
//! profile dataset and answer queries over it.
//!
//! The paper motivates MRSL with an eHarmony-style profile table (Fig. 1).
//! This example scales that scenario up: a 4-attribute profile schema with
//! realistic correlations (age→income→net-worth, education→income) encoded
//! as a Bayesian network, 5000 observed profiles, 400 partially-filled
//! ones. We derive the probabilistic database and then ask the questions a
//! matchmaking service would:
//!
//!   * how many candidates probably earn 100K+?
//!   * what is the distribution of the count of rich candidates?
//!   * who are the top-5 most probably ⟨high income, high net worth⟩?
//!
//! Run with: `cargo run --release --example matchmaking`

use mrsl_repro::bayesnet::{BayesianNetwork, NodeSpec, TopologySpec};
use mrsl_repro::core::{derive_probabilistic_db, DeriveConfig, GibbsConfig, LearnConfig};
use mrsl_repro::probdb::query::{count_distribution, expected_count, top_k, Predicate};
use mrsl_repro::probdb::{Catalog, CatalogEngine, EvalPath, Query, QueryEngineConfig, Statistic};
use mrsl_repro::relation::{AttrId, Relation, ValueId};
use mrsl_repro::util::seeded_rng;
use rand::seq::SliceRandom;
use rand::Rng;

fn profile_network() -> TopologySpec {
    // age → inc, edu → inc, inc → nw: the dependency structure the paper's
    // introduction describes ("higher age often co-occurs with higher
    // income, and higher income often co-occurs with higher net worth").
    TopologySpec::new(
        "profiles",
        vec![
            NodeSpec {
                name: "age".into(),
                cardinality: 3, // 20 / 30 / 40
                parents: vec![],
            },
            NodeSpec {
                name: "edu".into(),
                cardinality: 3, // HS / BS / MS
                parents: vec![],
            },
            NodeSpec {
                name: "inc".into(),
                cardinality: 2, // 50K / 100K
                parents: vec![0, 1],
            },
            NodeSpec {
                name: "nw".into(),
                cardinality: 2, // 100K / 500K
                parents: vec![2],
            },
        ],
    )
    .expect("valid topology")
}

fn main() {
    let spec = profile_network();
    let bn = BayesianNetwork::instantiate(&spec, 0.4, 2024);
    let schema = bn.schema().clone();

    // Sample 5400 profiles; hide 1–2 attributes in 400 of them.
    let mut rng = seeded_rng(7);
    let points = mrsl_repro::bayesnet::sampler::sample_dataset(&bn, 5400, 99);
    let mut relation = Relation::new(schema.clone());
    for (i, p) in points.into_iter().enumerate() {
        if i < 5000 {
            relation.push_complete(p).expect("arity ok");
        } else {
            let mut t = p.to_partial();
            let hide = rng.gen_range(1..=2usize);
            let mut attrs: Vec<u16> = (0..4).collect();
            attrs.shuffle(&mut rng);
            for &a in &attrs[..hide] {
                t = t.without_attr(AttrId(a));
            }
            relation.push(t).expect("arity ok");
        }
    }
    println!(
        "profiles: {} complete, {} incomplete",
        relation.complete_part().len(),
        relation.incomplete_part().len()
    );

    // Derive the probabilistic database.
    let config = DeriveConfig {
        learn: LearnConfig {
            support_threshold: 0.005,
            max_itemsets: 1000,
        },
        gibbs: GibbsConfig {
            burn_in: 100,
            samples: 800,
            ..GibbsConfig::default()
        },
        ..DeriveConfig::default()
    };
    let out = derive_probabilistic_db(&relation, &config);
    println!(
        "derived: model of {} meta-rules in {:.2}s; {} blocks, {} alternatives, {} Gibbs draws ({} shared)",
        out.model.size(),
        out.elapsed.as_secs_f64(),
        out.db.blocks().len(),
        out.db.alternative_count(),
        out.sampling_cost.total_draws,
        out.sampling_cost.shared_samples,
    );

    // Query 1: expected number of 100K+ earners.
    let inc = schema.attr_id("inc").expect("inc");
    let nw = schema.attr_id("nw").expect("nw");
    let rich = Predicate::any().and_eq(inc, ValueId(1));
    let expected = expected_count(&out.db, &rich);
    let certain = out
        .db
        .certain()
        .iter()
        .filter(|t| t.value(inc) == ValueId(1))
        .count();
    println!(
        "\nE[#profiles with inc=100K] = {expected:.1} ({certain} certain + {:.1} expected from blocks)",
        expected - certain as f64
    );

    // Query 2: exact distribution of the count of ⟨100K, 500K⟩ candidates
    // among the *incomplete* profiles (restrict attention to blocks).
    let prime = Predicate::any()
        .and_eq(inc, ValueId(1))
        .and_eq(nw, ValueId(1));
    let dist = count_distribution(&out.db, &prime);
    let mean: f64 = dist.iter().enumerate().map(|(k, &p)| k as f64 * p).sum();
    let mode = dist
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(k, _)| k)
        .unwrap_or(0);
    println!(
        "COUNT(inc=100K ∧ nw=500K): mean {mean:.1}, mode {mode}, P(count=mode) = {:.3}",
        dist[mode]
    );

    // Query 3: top-5 most probable ⟨100K, 500K⟩ completions among blocks.
    // Certain matches rank first (probability 1), so ask for enough rows
    // to reach the block tuples behind them.
    println!("\ntop-5 probable ⟨inc=100K, nw=500K⟩ candidates from incomplete profiles:");
    let deep = out.db.certain().len() + 50;
    for ranked in top_k(&out.db, &prime, deep)
        .into_iter()
        .filter(|r| r.block.is_some())
        .take(5)
    {
        let cells: Vec<String> = schema
            .iter()
            .map(|(aid, attr)| attr.value_label(ranked.tuple.value(aid)).to_string())
            .collect();
        println!(
            "  block {:>4}: ⟨{}⟩ with prob {:.3}",
            ranked.block.expect("filtered to blocks"),
            cells.join(", "),
            ranked.prob
        );
    }

    // Query 4: the planned engine on a compound predicate — prime matches
    // *or* young-and-educated long shots, excluding the lowest bracket:
    // (inc=100K ∧ nw=500K) ∨ (age=20 ∧ ¬(edu=HS)). The derived database
    // moves into a named catalog and queries become algebra trees.
    let age = schema.attr_id("age").expect("age");
    let edu = schema.attr_id("edu").expect("edu");
    let compound = prime
        .clone()
        .or(Predicate::eq(age, ValueId(0)).and(Predicate::eq(edu, ValueId(0)).negate()));
    let mut catalog = Catalog::new();
    catalog.add("profiles", out.db).expect("fresh catalog");
    let engine = CatalogEngine::new(&catalog);
    let compound_query = Query::scan("profiles").filter(compound);
    let (count, report) = engine
        .expected_count(&compound_query)
        .expect("planned query");
    println!(
        "\nE[#(prime ∨ young-non-HS)] = {count:.1} via {:?} ({} of {} blocks pruned)",
        report.path, report.blocks_pruned, report.blocks_total
    );
    let (p_any, _) = engine.probability(&compound_query).expect("planned query");
    println!("P(at least one such profile exists) = {p_any:.4}");

    // The same count distribution through both physical paths: exact DP,
    // then the Monte-Carlo fallback a tiny DP budget forces.
    let (exact_dist, exact_report) = engine
        .count_distribution(&compound_query)
        .expect("exact path");
    let mc_engine = CatalogEngine::with_config(
        &catalog,
        QueryEngineConfig {
            max_exact_dp_blocks: 0,
            mc_samples: 20_000,
            ..QueryEngineConfig::default()
        },
    );
    let (mc_dist, mc_report) = mc_engine
        .count_distribution(&compound_query)
        .expect("mc path");
    assert_eq!(exact_report.path, EvalPath::ExactColumnar);
    assert_eq!(mc_report.path, EvalPath::MonteCarlo);
    let exact_mean: f64 = exact_dist
        .iter()
        .enumerate()
        .map(|(k, &p)| k as f64 * p)
        .sum();
    let mc_mean: f64 = mc_dist.iter().enumerate().map(|(k, &p)| k as f64 * p).sum();
    println!(
        "count distribution mean: exact {exact_mean:.2} ({:?}), MC {mc_mean:.2} ({:?}, {} samples)",
        exact_report.path, mc_report.path, mc_report.mc_samples
    );

    // A range workload: middle-or-upper age bracket (30..=40).
    let (mature, mature_report) = engine
        .evaluate(
            &Query::scan("profiles").filter(Predicate::range(age, ValueId(1), ValueId(2))),
            Statistic::ExpectedCount,
        )
        .expect("range query");
    if let mrsl_repro::probdb::QueryAnswer::Count { mean, .. } = mature {
        println!(
            "E[#profiles with age ∈ [30, 40]] = {mean:.1} via {:?}",
            mature_report.path
        );
    }

    // Sanity: compare the derived marginal of `inc` against the network's.
    let derived = mrsl_repro::probdb::query::value_marginal(
        catalog.get("profiles").expect("added above"),
        inc,
    );
    let true_marginal = bn.marginal(inc);
    println!(
        "\nmarginal of inc: derived [{}], true BN [{}]",
        derived
            .iter()
            .map(|p| format!("{p:.3}"))
            .collect::<Vec<_>>()
            .join(", "),
        true_marginal
            .iter()
            .map(|p| format!("{p:.3}"))
            .collect::<Vec<_>>()
            .join(", "),
    );
}
