//! The learning subsystem end to end: fit ensemble weights on held-out
//! tuples, derive a probabilistic database with the learned ensemble,
//! then gradient-tune its block masses against audited query answers.
//!
//! A sensor fleet again loses readings, but this time we *learn how much
//! to trust each inference strategy* instead of picking one up front:
//!
//! 1. [`fit_ensemble_weights`] masks each attribute of a held-out slice
//!    of clean readings, scores all four engines on recovering the true
//!    values, and EM-fits mixture weights — the fitted
//!    [`EnsembleEngine`] is a drop-in engine for the whole pipeline.
//! 2. [`derive_probabilistic_db_with_engine`] derives the probabilistic
//!    database under that learned mixture; the relation records the
//!    ensemble as its provenance.
//! 3. An auditor supplies the true probabilities of a few selection
//!    queries (here computed from the generating network);
//!    [`fit_block_masses`] descends the exact safe-plan gradients to pull
//!    the block masses toward masses consistent with those answers,
//!    reporting train/validation loss per epoch.
//!
//! Run with: `cargo run --release --example learning`

use mrsl_repro::bayesnet::{conditional, BayesianNetwork, NodeSpec, TopologySpec};
use mrsl_repro::core::{
    derive_probabilistic_db_with_engine, DeriveConfig, GibbsConfig, LearnConfig, MrslModel,
    VotingConfig,
};
use mrsl_repro::learn::{
    fit_block_masses, fit_ensemble_weights, standard_members, LabeledQuery, MassFitConfig,
    WeightStrategy,
};
use mrsl_repro::probdb::{Catalog, CatalogEngine, Predicate, ProbDb, Query};
use mrsl_repro::relation::{AttrId, JointIndexer, Relation, ValueId};
use mrsl_repro::util::seeded_rng;
use rand::Rng;

/// front → (temp, humidity); temp → sky; (humidity, sky) → visibility.
fn weather_network() -> TopologySpec {
    TopologySpec::new(
        "weather",
        vec![
            NodeSpec {
                name: "front".into(),
                cardinality: 3,
                parents: vec![],
            },
            NodeSpec {
                name: "temp".into(),
                cardinality: 3,
                parents: vec![0],
            },
            NodeSpec {
                name: "humidity".into(),
                cardinality: 3,
                parents: vec![0],
            },
            NodeSpec {
                name: "sky".into(),
                cardinality: 3,
                parents: vec![1, 2],
            },
        ],
    )
    .expect("valid topology")
}

fn gibbs() -> GibbsConfig {
    GibbsConfig {
        burn_in: 60,
        samples: 600,
        voting: VotingConfig::best_averaged(),
    }
}

/// A copy of the derived database whose block masses are the generating
/// network's true conditionals — the "auditor" who labels query answers.
fn gold_catalog(derived: &ProbDb, rel: &Relation, bn: &BayesianNetwork) -> Catalog {
    let mut db = derived.clone();
    for (b, t) in rel.incomplete_part().iter().enumerate() {
        let truth = conditional(bn, t.missing_mask(), t).expect("network covers every evidence");
        let indexer = JointIndexer::new(bn.schema(), t.missing_mask());
        let mut probs: Vec<f64> = db.blocks()[b]
            .alternatives()
            .iter()
            .map(|a| {
                let combo: Vec<ValueId> = indexer
                    .attrs()
                    .iter()
                    .map(|&attr| ValueId(a.tuple.raw()[attr.0 as usize]))
                    .collect();
                truth[indexer.index_of(&combo)].max(1e-6)
            })
            .collect();
        let sum: f64 = probs.iter().sum();
        probs.iter_mut().for_each(|p| *p /= sum);
        db.set_block_masses(b, &probs)
            .expect("renormalized truth is a valid distribution");
    }
    let mut catalog = Catalog::new();
    catalog.add("weather", db).expect("fresh catalog");
    catalog
}

fn main() {
    let bn = BayesianNetwork::instantiate(&weather_network(), 0.5, 41);

    // 3000 clean readings to learn the model, 40 more held out for
    // weight fitting.
    let train = mrsl_repro::bayesnet::sampler::sample_dataset(&bn, 3000, 1);
    let holdout = mrsl_repro::bayesnet::sampler::sample_dataset(&bn, 40, 2);
    let learn_config = LearnConfig {
        support_threshold: 0.005,
        max_itemsets: 1000,
    };
    let model = MrslModel::learn(bn.schema(), &train, &learn_config);
    println!(
        "learned MRSL model from {} readings: {} meta-rules",
        train.len(),
        model.size()
    );

    // --- 1. Fit ensemble weights on the held-out slice. ---------------
    let (ensemble, report) = fit_ensemble_weights(
        &model,
        &holdout,
        VotingConfig::best_averaged(),
        standard_members(&gibbs()),
        WeightStrategy::Em {
            max_iters: 200,
            tol: 1e-9,
        },
        7,
    )
    .expect("holdout is non-empty");
    println!(
        "\nfitted ensemble weights on {} masked instances ({} EM iterations):",
        report.instances, report.em_iterations
    );
    for ((name, w), acc) in report
        .members
        .iter()
        .zip(&report.weights)
        .zip(&report.member_accuracy)
    {
        println!("  {name:<14} weight {w:.3}   top-1 {:.1}%", 100.0 * acc);
    }
    println!(
        "  weighted mixture top-1 {:.1}%  (uniform voting {:.1}%)",
        100.0 * report.ensemble_accuracy,
        100.0 * report.uniform_accuracy
    );

    // --- 2. Derive a probabilistic database under the mixture. --------
    let fresh = mrsl_repro::bayesnet::sampler::sample_dataset(&bn, 120, 3);
    let mut rel = Relation::new(bn.schema().clone());
    let mut rng = seeded_rng(17);
    for (i, point) in fresh.iter().enumerate() {
        if i % 2 == 0 {
            rel.push_complete(point.clone()).unwrap();
        } else {
            // Each incomplete reading loses one attribute.
            let drop = AttrId(rng.gen_range(0..4u16));
            rel.push(point.to_partial().without_attr(drop)).unwrap();
        }
    }
    let derive_config = DeriveConfig {
        learn: learn_config,
        gibbs: gibbs(),
        seed: 23,
        ..DeriveConfig::default()
    };
    let out = derive_probabilistic_db_with_engine(&rel, &derive_config, &ensemble);
    println!(
        "\nderived {} blocks + {} certain tuples under provenance {:?} ({})",
        out.db.blocks().len(),
        out.db.certain().len(),
        out.db.provenance().unwrap_or("?"),
        ensemble.describe()
    );

    // --- 3. Gradient-tune the masses against audited answers. ---------
    let gold = gold_catalog(&out.db, &rel, &bn);
    let auditor = CatalogEngine::new(&gold);
    let mut labeled: Vec<LabeledQuery> = Vec::new();
    for attr in 0..4u16 {
        for value in 0..3u16 {
            let q = Query::scan("weather").filter(
                Predicate::eq(AttrId(attr), ValueId(value))
                    .and_eq(AttrId((attr + 1) % 4), ValueId(value % 3)),
            );
            let target = auditor.probability(&q).expect("liftable selection").0;
            labeled.push(LabeledQuery::new(q, target));
        }
    }
    let validation = labeled.split_off(9);

    let mut catalog = Catalog::new();
    catalog.add("weather", out.db).expect("fresh catalog");
    let fit_config = MassFitConfig {
        epochs: 120,
        learning_rate: 0.01,
        ..MassFitConfig::default()
    };
    let fit = fit_block_masses(&mut catalog, &labeled, &validation, &fit_config)
        .expect("selection queries are liftable");
    println!(
        "\nfitted block masses to {} audited answers over {} epochs:",
        labeled.len(),
        fit.epochs
    );
    println!(
        "  train MSE      {:.2e} -> {:.2e}",
        fit.initial_train_loss(),
        fit.final_train_loss()
    );
    println!(
        "  validation MSE {:.2e} -> {:.2e}",
        fit.validation_loss.first().unwrap(),
        fit.validation_loss.last().unwrap()
    );
    println!(
        "  provenance now {:?}",
        catalog.get("weather").unwrap().provenance().unwrap_or("?")
    );
    assert!(fit.final_train_loss() < fit.initial_train_loss());
}
