//! Joins across derived relations: the catalog + relational-algebra API.
//!
//! A sensor network stores station metadata (`sensors`) and measurements
//! (`readings`) in separate relations, both with dropouts. We derive each
//! into a probabilistic relation **lazily for one join query**, register
//! them in a `Catalog`, and ask: *is some outdoor station currently
//! reporting a high reading?* — a boolean conjunctive query the safe-plan
//! classifier recognizes as hierarchical and answers exactly, which we
//! cross-check against the multi-relation Monte-Carlo sampler. A second,
//! non-hierarchical query shows the planner routing to sampling, with the
//! reason recorded in the report.
//!
//! Run with: `cargo run --release --example catalog_joins`

use mrsl_repro::bayesnet::{BayesianNetwork, NodeSpec, TopologySpec};
use mrsl_repro::core::{
    derive_catalog_for_query, GibbsConfig, LazySource, LearnConfig, MrslModel, WorkloadStrategy,
};
use mrsl_repro::probdb::{CatalogEngine, Predicate, Query, QueryEngineConfig, Statistic};
use mrsl_repro::relation::{AttrId, Relation, ValueId};
use mrsl_repro::util::seeded_rng;
use rand::Rng;

const STATIONS: usize = 5;

fn network(name: &str, attr: &str, card: usize) -> TopologySpec {
    TopologySpec::new(
        name,
        vec![
            NodeSpec {
                name: "station".into(),
                cardinality: STATIONS,
                parents: vec![],
            },
            NodeSpec {
                name: attr.into(),
                cardinality: card,
                parents: vec![0],
            },
            NodeSpec {
                name: "ok".into(),
                cardinality: 2,
                parents: vec![1],
            },
        ],
    )
    .expect("valid topology")
}

/// Samples `complete` full tuples plus `incomplete` tuples that each lost
/// one attribute drawn from `hideable` (the station id survives every
/// dropout, as it would in a real ingest pipeline — it is the record's
/// address; relations whose *other* attributes serve as join keys keep
/// those observed too, or blocks would straddle the key).
fn sample_relation(
    bn: &BayesianNetwork,
    complete: usize,
    incomplete: usize,
    seed: u64,
    hideable: std::ops::Range<u16>,
) -> Relation {
    let mut rel = Relation::new(bn.schema().clone());
    for p in mrsl_repro::bayesnet::sampler::sample_dataset(bn, complete, seed) {
        rel.push_complete(p).expect("arity ok");
    }
    let mut rng = seeded_rng(seed ^ 0xd06);
    for p in mrsl_repro::bayesnet::sampler::sample_dataset(bn, incomplete, seed ^ 0xfeed) {
        let hide = AttrId(rng.gen_range(hideable.clone()));
        rel.push(p.to_partial().without_attr(hide))
            .expect("arity ok");
    }
    rel
}

fn main() {
    let sensors_bn = BayesianNetwork::instantiate(&network("sensors", "kind", 2), 0.5, 36);
    let readings_bn = BayesianNetwork::instantiate(&network("readings", "level", 3), 0.5, 33);

    // Models are learned from a large *historical* sample; the queried
    // relations are today's small, partially-reported snapshot — so the
    // query's answer genuinely hinges on the inferred distributions.
    let learn = LearnConfig {
        support_threshold: 0.005,
        max_itemsets: 1000,
    };
    let sensors_history = mrsl_repro::bayesnet::sampler::sample_dataset(&sensors_bn, 3_000, 101);
    let readings_history = mrsl_repro::bayesnet::sampler::sample_dataset(&readings_bn, 3_000, 102);
    let sensors_model = MrslModel::learn(sensors_bn.schema(), &sensors_history, &learn);
    let readings_model = MrslModel::learn(readings_bn.schema(), &readings_history, &learn);

    // Sensors may lose kind or ok; readings keep (station, level) — their
    // level becomes a join key below — and only lose the ok flag.
    let sensors = sample_relation(&sensors_bn, 2, 6, 4, 1..3);
    let readings = sample_relation(&readings_bn, 3, 9, 174, 2..3);
    println!(
        "today's snapshot — sensors: {} complete + {} incomplete; \
         readings: {} complete + {} incomplete (models from 3000 historical rows each)",
        sensors.complete_part().len(),
        sensors.incomplete_part().len(),
        readings.complete_part().len(),
        readings.incomplete_part().len(),
    );

    // The query: ∃ outdoor sensor s, reading r at the same station with a
    // high level? (kind=1 is "outdoor", level=2 is "high".)
    let query = Query::scan("sensors")
        .filter(Predicate::eq(AttrId(1), ValueId(1)))
        .join_on(
            Query::scan("readings").filter(Predicate::eq(AttrId(1), ValueId(2))),
            [(AttrId(0), AttrId(0))],
        )
        .project([AttrId(0)]);
    let gibbs = GibbsConfig {
        burn_in: 80,
        samples: 600,
        ..GibbsConfig::default()
    };
    let lazy = derive_catalog_for_query(
        &[
            LazySource {
                name: "sensors",
                relation: &sensors,
                model: &sensors_model,
            },
            LazySource {
                name: "readings",
                relation: &readings,
                model: &readings_model,
            },
        ],
        &query,
        &gibbs,
        WorkloadStrategy::TupleDag,
        7,
    )
    .expect("derivation succeeds");
    for stats in &lazy.per_relation {
        println!(
            "derived `{}`: {} blocks inferred, {} pinned without inference, {} ruled out",
            stats.relation, stats.inferred, stats.pinned, stats.ruled_out
        );
    }

    // Exact safe-plan evaluation...
    let engine = CatalogEngine::new(&lazy.catalog);
    let (p, report) = engine.probability(&query).expect("hierarchical join");
    println!(
        "\nP(∃ outdoor station with a high reading) = {p:.4} via {:?} ({:?})",
        report.path, report.plan
    );
    if let Some(plan) = &report.decomposition {
        println!("safe plan: {}", plan.render());
    }
    let (pairs, _) = engine.expected_count(&query).expect("expected count");
    println!("E[#(outdoor sensor, high reading) pairs] = {pairs:.2}");

    // ...cross-checked by the multi-relation Monte-Carlo sampler.
    let mc_engine = CatalogEngine::with_config(
        &lazy.catalog,
        QueryEngineConfig {
            force_monte_carlo: true,
            mc_samples: 20_000,
            ..QueryEngineConfig::default()
        },
    );
    let (answer, mc_report) = mc_engine
        .evaluate(&query, Statistic::Probability)
        .expect("mc join");
    if let mrsl_repro::probdb::QueryAnswer::Probability { p: mc, std_error } = answer {
        println!(
            "Monte-Carlo cross-check: {mc:.4} ± {:.4} over {} joint worlds",
            std_error.unwrap_or(0.0),
            mc_report.mc_samples
        );
    }

    // A non-hierarchical shape — sensors(x), readings(x, y), quality(y) —
    // has no safe plan; the planner says so and samples.
    let quality_bn = BayesianNetwork::instantiate(&network("quality", "level", 3), 0.5, 31);
    let quality_history = mrsl_repro::bayesnet::sampler::sample_dataset(&quality_bn, 3_000, 103);
    let quality_model = MrslModel::learn(quality_bn.schema(), &quality_history, &learn);
    let quality = sample_relation(&quality_bn, 3, 8, 3, 2..3);
    let chain = Query::scan("sensors")
        .join_on("readings", [(AttrId(0), AttrId(0))])
        .join_on_rel("readings", "quality", [(AttrId(1), AttrId(1))]);
    let lazy_chain = derive_catalog_for_query(
        &[
            LazySource {
                name: "sensors",
                relation: &sensors,
                model: &sensors_model,
            },
            LazySource {
                name: "readings",
                relation: &readings,
                model: &readings_model,
            },
            LazySource {
                name: "quality",
                relation: &quality,
                model: &quality_model,
            },
        ],
        &chain,
        &gibbs,
        WorkloadStrategy::TupleDag,
        7,
    )
    .expect("derivation succeeds");
    let chain_engine = CatalogEngine::with_config(
        &lazy_chain.catalog,
        QueryEngineConfig {
            mc_samples: 5_000,
            ..QueryEngineConfig::default()
        },
    );
    let (p_chain, chain_report) = chain_engine.probability(&chain).expect("mc chain");
    println!(
        "\nnon-hierarchical chain query: P = {p_chain:.4} via {:?} ({:?})",
        chain_report.path, chain_report.plan
    );
    if let Some(plan) = &chain_report.decomposition {
        println!("classifier verdict: {}", plan.render());
    }

    // Dissociation gives the same unsafe shape deterministic guarantees:
    // replicate the scan that skips a join variable into every key branch
    // and the safe plan's answer brackets the truth — no sampling needed
    // unless the bracket is wider than the configured tolerance.
    let (bounds, bounds_report) = chain_engine
        .probability_bounds(&chain)
        .expect("bounds on the chain");
    println!(
        "dissociation bounds: P ∈ [{:.4}, {:.4}] via {:?} ({:?})",
        bounds.lower, bounds.upper, bounds_report.path, bounds_report.plan
    );
    for d in &bounds_report.dissociated {
        println!("dissociated: {d}");
    }
    if let Some(plan) = &bounds_report.decomposition {
        println!("dissociated plan: {}", plan.render());
    }
    match (bounds.estimate, bounds.std_error) {
        (Some(est), Some(se)) => println!(
            "bracket wider than {:.2} → refined by sampling: {est:.4} ± {se:.4}",
            chain_engine.config().bounds_tolerance
        ),
        _ => println!("bracket within tolerance: no sampling spent"),
    }
    assert!(
        bounds.lower <= p_chain + 0.05 && p_chain - 0.05 <= bounds.upper,
        "MC estimate strayed far outside the guaranteed bracket"
    );
}
