//! The concurrent serving layer: snapshot generations, live ingest, and
//! a worker pool sharing one plan cache.
//!
//! A monitoring service holds a probabilistic sensor catalog for its
//! whole lifetime: clients keep asking *is some outdoor station reporting
//! a high level?* while fresh (still uncertain) measurements arrive. This
//! example starts a [`ProbDbServer`], hammers it from several client
//! threads, publishes two copy-on-write generations mid-flight, and shows
//! what the snapshot architecture guarantees along the way:
//!
//! - every answer is stamped with the generation it was computed against;
//! - an update copies only the relation it touches — the untouched one is
//!   the *same object* across generations (`Arc::ptr_eq`), so its warm
//!   register memos survive the publish;
//! - the shared plan cache stays warm through it all, and the server's
//!   counters tell the story at the end.
//!
//! Run with: `cargo run --release --example serving`

use mrsl_repro::probdb::serve::{ProbDbServer, ServeConfig};
use mrsl_repro::probdb::{
    Alternative, Block, Catalog, Predicate, ProbDb, ProbDbError, Query, QueryEngineConfig,
    Statistic,
};
use mrsl_repro::relation::{AttrId, CompleteTuple, Schema, ValueId};
use mrsl_repro::util::seeded_rng;
use rand::Rng;
use std::sync::Arc;

const STATIONS: u16 = 48;

/// `sensors(station, kind)` — kind (0 indoor / 1 outdoor) is uncertain
/// for part of the fleet: each block splits one sensor across both kinds.
fn sensors(blocks: usize, seed: u64) -> ProbDb {
    let schema = Schema::builder()
        .attribute("station", (0..STATIONS).map(|i| format!("st{i}")))
        .attribute("kind", ["indoor", "outdoor"])
        .build()
        .expect("valid schema");
    let mut db = ProbDb::new(schema);
    let mut rng = seeded_rng(seed);
    for key in 0..blocks {
        let station = rng.gen_range(0..STATIONS);
        if rng.gen_bool(0.5) {
            db.push_certain(CompleteTuple::from_values(vec![
                station,
                rng.gen_range(0..2),
            ]))
            .expect("arity ok");
        } else {
            let p_outdoor = rng.gen_range(0.05..0.95);
            db.push_block(
                Block::new(
                    key,
                    vec![
                        Alternative {
                            tuple: CompleteTuple::from_values(vec![station, 0]),
                            prob: 1.0 - p_outdoor,
                        },
                        Alternative {
                            tuple: CompleteTuple::from_values(vec![station, 1]),
                            prob: p_outdoor,
                        },
                    ],
                )
                .expect("valid block"),
            )
            .expect("arity ok");
        }
    }
    db
}

/// `readings(station, level)` — level (low/mid/high) uncertain per block.
fn readings(blocks: usize, seed: u64) -> ProbDb {
    let schema = Schema::builder()
        .attribute("station", (0..STATIONS).map(|i| format!("st{i}")))
        .attribute("level", ["low", "mid", "high"])
        .build()
        .expect("valid schema");
    let mut db = ProbDb::new(schema);
    let mut rng = seeded_rng(seed);
    for key in 0..blocks {
        db.push_block(reading_block(key, &mut rng))
            .expect("arity ok");
    }
    db
}

fn reading_block(key: usize, rng: &mut impl Rng) -> Block {
    let station = rng.gen_range(0..STATIONS);
    let p_high = rng.gen_range(0.02..0.12);
    let rest = 1.0 - p_high;
    Block::new(
        key,
        vec![
            Alternative {
                tuple: CompleteTuple::from_values(vec![station, 0]),
                prob: rest / 2.0,
            },
            Alternative {
                tuple: CompleteTuple::from_values(vec![station, 1]),
                prob: rest / 2.0,
            },
            Alternative {
                tuple: CompleteTuple::from_values(vec![station, 2]),
                prob: p_high,
            },
        ],
    )
    .expect("valid block")
}

fn main() {
    let mut catalog = Catalog::new();
    catalog.add("sensors", sensors(70, 11)).expect("fresh name");
    catalog
        .add("readings", readings(60, 12))
        .expect("fresh name");

    // ∃ outdoor sensor joined with a high reading at the same station —
    // hierarchical, so every request takes the exact safe-plan path.
    let query = Query::scan("sensors")
        .filter(Predicate::eq(AttrId(1), ValueId(1)))
        .join_on(
            Query::scan("readings").filter(Predicate::eq(AttrId(1), ValueId(2))),
            [(AttrId(0), AttrId(0))],
        );

    let server = ProbDbServer::with_config(
        catalog,
        ServeConfig {
            workers: 4,
            engine: QueryEngineConfig::default(),
            ..ServeConfig::default()
        },
    );
    let (p0, _) = server.handle().probability(&query).expect("generation 0");
    println!("generation 0: P(outdoor station reporting high) = {p0:.4}");

    // Four client threads keep reading while the main thread ingests two
    // batches of new readings. Copy-on-write publication means no reader
    // ever blocks and no torn catalog is observable: each answer is
    // internally consistent and stamped with its generation.
    let before = server.snapshot();
    std::thread::scope(|s| {
        for client in 0..4 {
            let handle = server.handle();
            let query = &query;
            s.spawn(move || {
                let mut last = (0, 0.0);
                for _ in 0..200 {
                    let served = handle
                        .evaluate(query, Statistic::Probability)
                        .expect("served");
                    if let mrsl_repro::probdb::QueryAnswer::Probability { p, .. } = served.answer {
                        last = (served.generation, p);
                    }
                }
                println!(
                    "client {client}: last answer {:.4} against generation {}",
                    last.1, last.0
                );
            });
        }

        let mut rng = seeded_rng(99);
        for batch in 0..2 {
            let (generation, added) = server.update(|catalog| {
                let db = catalog.get_mut("readings").expect("readings exists");
                let base = db.blocks().len();
                for i in 0..25 {
                    db.push_block(reading_block(60 + batch * 25 + i, &mut rng))
                        .expect("arity ok");
                }
                db.blocks().len() - base
            });
            println!("published generation {generation} (+{added} reading blocks)");
        }
    });

    // The writer only touched `readings`: `sensors` is the same object in
    // both generations, so its memoized registers carried over verbatim.
    let after = server.snapshot();
    println!(
        "sensors shared across generations {} -> {}: {} (readings shared: {})",
        before.generation(),
        after.generation(),
        Arc::ptr_eq(
            &before.catalog().get_shared("sensors").expect("sensors"),
            &after.catalog().get_shared("sensors").expect("sensors"),
        ),
        Arc::ptr_eq(
            &before.catalog().get_shared("readings").expect("readings"),
            &after.catalog().get_shared("readings").expect("readings"),
        ),
    );
    let (p2, _) = server.handle().probability(&query).expect("generation 2");
    println!("generation {}: P = {p2:.4}", server.generation());

    let stats = server.stats();
    println!(
        "\nserved {} queries ({} exact / {} sampled), {} warm plan-cache hits, \
         {} publishes, max queue depth {}, {} lagged reads (max lag {})",
        stats.queries,
        stats.exact,
        stats.monte_carlo + stats.hybrid,
        stats.cache_hits,
        stats.publishes,
        stats.max_queue_depth,
        stats.lagged_reads,
        stats.max_lag,
    );
    println!(
        "plan cache: {} hits / {} misses, {} register patches, {} rebinds",
        stats.plan_cache.hits,
        stats.plan_cache.misses,
        stats.plan_cache.reg_patches,
        stats.plan_cache.reg_rebinds,
    );
    println!(
        "overload counters: {} coalesced answers, {} hot-tier plan hits, \
         {} rejected / {} expired / {} abandoned",
        stats.coalesced, stats.hot_hits, stats.rejected, stats.expired, stats.abandoned,
    );

    // Graceful shutdown drains the queue; handles outlive the server but
    // get a typed error instead of an answer.
    let orphan = server.handle();
    server.shutdown();
    assert_eq!(
        orphan.probability(&query).unwrap_err(),
        ProbDbError::ServerUnavailable
    );
    println!("after shutdown: submissions answer with ServerUnavailable");
}
