//! Scientific data cleaning: impute missing sensor readings.
//!
//! The paper's second motivating domain is scientific data management,
//! where "experimental results are often noisy or missing". This example
//! models a six-station environmental sensor network — temperature,
//! humidity, pressure band, wind band, sky condition, air quality — whose
//! discretized readings are correlated (weather fronts propagate). Sensors
//! drop readings; we derive probability distributions for the gaps and
//! compare three estimators on held-out ground truth:
//!
//!   * MRSL + Gibbs (the paper's method),
//!   * the independence-assuming product baseline (§V's strawman),
//!   * uninformed uniform guessing.
//!
//! Run with: `cargo run --release --example sensor_cleaning`

use mrsl_repro::bayesnet::{conditional, BayesianNetwork, NodeSpec, TopologySpec};
use mrsl_repro::core::{
    infer_batch, GibbsConfig, IndependentBaseline, InferContext, InferenceEngine, LearnConfig,
    MrslModel, TupleDagWorkload, VotingConfig,
};
use mrsl_repro::eval::{kl_divergence, top1_match};
use mrsl_repro::relation::{AttrId, PartialTuple};
use mrsl_repro::util::seeded_rng;
use rand::seq::SliceRandom;
use rand::Rng;

fn weather_network() -> TopologySpec {
    // front → (temp, pressure); temp → humidity; pressure → wind;
    // (humidity, wind) → sky; sky → air quality.
    TopologySpec::new(
        "weather",
        vec![
            NodeSpec {
                name: "front".into(),
                cardinality: 3,
                parents: vec![],
            },
            NodeSpec {
                name: "temp".into(),
                cardinality: 4,
                parents: vec![0],
            },
            NodeSpec {
                name: "pressure".into(),
                cardinality: 3,
                parents: vec![0],
            },
            NodeSpec {
                name: "humidity".into(),
                cardinality: 3,
                parents: vec![1],
            },
            NodeSpec {
                name: "wind".into(),
                cardinality: 3,
                parents: vec![2],
            },
            NodeSpec {
                name: "sky".into(),
                cardinality: 3,
                parents: vec![3, 4],
            },
        ],
    )
    .expect("valid topology")
}

fn main() {
    let spec = weather_network();
    let bn = BayesianNetwork::instantiate(&spec, 0.45, 77);

    // 8000 clean historical readings to learn from.
    let train = mrsl_repro::bayesnet::sampler::sample_dataset(&bn, 8000, 1);
    let model = MrslModel::learn(
        bn.schema(),
        &train,
        &LearnConfig {
            support_threshold: 0.003,
            max_itemsets: 1000,
        },
    );
    println!(
        "learned MRSL model from {} readings: {} meta-rules in {:.2}s",
        train.len(),
        model.size(),
        model.stats().elapsed.as_secs_f64()
    );

    // 200 fresh readings, each losing 2 or 3 values (sensor dropouts).
    let fresh = mrsl_repro::bayesnet::sampler::sample_dataset(&bn, 200, 2);
    let mut rng = seeded_rng(13);
    let workload: Vec<PartialTuple> = fresh
        .iter()
        .map(|p| {
            let k = rng.gen_range(2..=3usize);
            let mut attrs: Vec<u16> = (0..6).collect();
            attrs.shuffle(&mut rng);
            let mut t = p.to_partial();
            for &a in &attrs[..k] {
                t = t.without_attr(AttrId(a));
            }
            t
        })
        .collect();

    // The paper's estimator: workload-driven Gibbs with the tuple DAG.
    let gibbs = GibbsConfig {
        burn_in: 100,
        samples: 1500,
        voting: VotingConfig::best_averaged(),
    };
    let result = infer_batch(
        &model,
        &workload,
        &TupleDagWorkload::from_config(&gibbs),
        gibbs.voting,
        5,
    );
    println!(
        "imputed {} readings with {} Gibbs draws ({} shared via the tuple DAG) in {:.2}s",
        workload.len(),
        result.cost.total_draws,
        result.cost.shared_samples,
        result.cost.elapsed.as_secs_f64()
    );

    // Score all three estimators against the true BN conditionals.
    let mut infer_ctx = InferContext::new(&model, gibbs.voting, 0);
    let (mut kl_g, mut kl_i, mut kl_u) = (0.0f64, 0.0f64, 0.0f64);
    let (mut t1_g, mut t1_i, mut t1_u) = (0usize, 0usize, 0usize);
    let mut n = 0usize;
    for (t, est) in workload.iter().zip(&result.estimates) {
        let Some(truth) = conditional(&bn, t.missing_mask(), t) else {
            continue;
        };
        let independent = IndependentBaseline.estimate(&mut infer_ctx, t);
        let uniform = vec![1.0 / truth.len() as f64; truth.len()];
        kl_g += kl_divergence(&truth, &est.probs);
        kl_i += kl_divergence(&truth, &independent.probs);
        kl_u += kl_divergence(&truth, &uniform);
        t1_g += top1_match(&truth, &est.probs) as usize;
        t1_i += top1_match(&truth, &independent.probs) as usize;
        t1_u += top1_match(&truth, &uniform) as usize;
        n += 1;
    }
    let n_f = n as f64;
    println!("\nscored {n} imputations against the generating network:");
    println!("  estimator             avg KL    top-1");
    println!(
        "  MRSL + Gibbs (paper)  {:>6.3}    {:>5.1}%",
        kl_g / n_f,
        100.0 * t1_g as f64 / n_f
    );
    println!(
        "  independent product   {:>6.3}    {:>5.1}%",
        kl_i / n_f,
        100.0 * t1_i as f64 / n_f
    );
    println!(
        "  uniform guess         {:>6.3}    {:>5.1}%",
        kl_u / n_f,
        100.0 * t1_u as f64 / n_f
    );

    // Show one concrete imputation.
    let (idx, _) = workload
        .iter()
        .enumerate()
        .find(|(_, t)| t.missing_mask().count() == 2)
        .expect("some tuple has 2 gaps");
    let t = &workload[idx];
    let est = &result.estimates[idx];
    let schema = bn.schema();
    println!(
        "\nexample reading with dropouts: {}",
        mrsl_repro::relation::display::render_partial(schema, t)
    );
    let mut ranked: Vec<(usize, f64)> = est.probs.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    for (combo_idx, prob) in ranked.into_iter().take(3) {
        let assignment: Vec<String> = est
            .indexer
            .decode(combo_idx)
            .into_iter()
            .map(|(a, v)| {
                format!(
                    "{}={}",
                    schema.attr(a).name(),
                    schema.attr(a).value_label(v)
                )
            })
            .collect();
        println!("  {} with prob {:.3}", assignment.join(", "), prob);
    }
}
