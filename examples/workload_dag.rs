//! The tuple-DAG optimization in action (Fig. 3 / Algorithm 3).
//!
//! Builds a workload of incomplete tuples over a 6-attribute network,
//! prints the subsumption DAG structure, and contrasts the sampling cost
//! of tuple-at-a-time vs tuple-DAG scheduling — the paper's Fig. 11
//! experiment in miniature.
//!
//! Run with: `cargo run --release --example workload_dag`

use mrsl_repro::bayesnet::catalog::by_name;
use mrsl_repro::bayesnet::BayesianNetwork;
use mrsl_repro::core::{
    infer_batch, workload_engine, GibbsConfig, LearnConfig, MrslModel, TupleDag, VotingConfig,
    WorkloadStrategy,
};
use mrsl_repro::relation::display::render_partial;
use mrsl_repro::relation::{AttrId, PartialTuple};
use mrsl_repro::util::seeded_rng;
use rand::seq::SliceRandom;
use rand::Rng;

fn main() {
    let net = by_name("BN9").expect("BN9 in catalog").topology;
    let bn = BayesianNetwork::instantiate(&net, 0.5, 11);
    let train = mrsl_repro::bayesnet::sampler::sample_dataset(&bn, 6000, 1);
    let model = MrslModel::learn(
        bn.schema(),
        &train,
        &LearnConfig {
            support_threshold: 0.005,
            max_itemsets: 1000,
        },
    );

    // A workload with plenty of subsumption: hide 1–5 of 6 attributes.
    let points = mrsl_repro::bayesnet::sampler::sample_dataset(&bn, 400, 2);
    let mut rng = seeded_rng(3);
    let workload: Vec<PartialTuple> = points
        .iter()
        .map(|p| {
            let k = rng.gen_range(1..=5usize);
            let mut attrs: Vec<u16> = (0..6).collect();
            attrs.shuffle(&mut rng);
            let mut t = p.to_partial();
            for &a in &attrs[..k] {
                t = t.without_attr(AttrId(a));
            }
            t
        })
        .collect();

    // Inspect the DAG.
    let dag = TupleDag::build(&workload);
    let shared_nodes = dag.workload_nodes().len().saturating_sub(dag.len());
    let edges: usize = (0..dag.len()).map(|i| dag.children(i).len()).sum();
    println!(
        "workload: {} tuples → {} distinct DAG nodes ({} duplicates), {} cover edges, {} roots",
        workload.len(),
        dag.len(),
        shared_nodes,
        edges,
        dag.roots().len()
    );

    // Show one subsumption chain like Fig. 3.
    let schema = bn.schema();
    if let Some(&root) = dag.roots().iter().find(|&&r| !dag.children(r).is_empty()) {
        println!("\na subsumption family (cf. Fig. 3):");
        println!("  root: {}", render_partial(schema, &dag.nodes()[root]));
        for &child in dag.children(root).iter().take(3) {
            println!("   └─ {}", render_partial(schema, &dag.nodes()[child]));
            for &grand in dag.children(child).iter().take(2) {
                println!("       └─ {}", render_partial(schema, &dag.nodes()[grand]));
            }
        }
    }

    // Race the two strategies.
    let gibbs = GibbsConfig {
        burn_in: 100,
        samples: 500,
        voting: VotingConfig::best_averaged(),
    };
    println!(
        "\nsampling with N = {} per tuple, burn-in {}:",
        gibbs.samples, gibbs.burn_in
    );
    for strategy in [WorkloadStrategy::TupleAtATime, WorkloadStrategy::TupleDag] {
        let engine = workload_engine(strategy, &gibbs);
        let result = infer_batch(&model, &workload, engine.as_ref(), gibbs.voting, 9);
        println!(
            "  {:<16} draws {:>8}  chains {:>4}  shared {:>7}  wall {:>6.2}s",
            match strategy {
                WorkloadStrategy::TupleAtATime => "tuple-at-a-time",
                WorkloadStrategy::TupleDag => "tuple-DAG",
            },
            result.cost.total_draws,
            result.cost.chains,
            result.cost.shared_samples,
            result.cost.elapsed.as_secs_f64(),
        );
    }
    println!("\n(the paper reports close to an order-of-magnitude sampling reduction; the exact factor depends on how much the workload overlaps)");
}
