//! Quickstart: the paper's running example (Fig. 1 / Fig. 2).
//!
//! Loads the 17-tuple matchmaking relation, learns the MRSL model from its
//! complete part, prints the meta-rule semi-lattice for `age`, infers the
//! missing `age` of tuple t1, and derives the full probabilistic database
//! including the `Δt12` block shown in Fig. 1's call-out.
//!
//! Run with: `cargo run --release --example quickstart`

use mrsl_repro::core::{
    derive_probabilistic_db, DeriveConfig, InferContext, LearnConfig, MrslModel, VotingConfig,
};
use mrsl_repro::relation::display::{render_partial, render_relation};
use mrsl_repro::relation::relation::fig1_relation;
use mrsl_repro::relation::{AttrId, PartialTuple};

fn main() {
    // 1. The incomplete relation R of Fig. 1.
    let relation = fig1_relation();
    println!("Incomplete relation R (matchmaking profiles):");
    println!("{}", render_relation(&relation));

    // 2. Learning phase (Algorithm 1): mine Rc, build one MRSL per attribute.
    let learn = LearnConfig {
        support_threshold: 0.05,
        max_itemsets: 1000,
    };
    let model = MrslModel::learn(relation.schema(), relation.complete_part(), &learn);
    println!(
        "Learned MRSL model: {} meta-rules over {} attributes ({} association rules mined)\n",
        model.size(),
        relation.schema().attr_count(),
        model.stats().num_assoc_rules,
    );

    // 3. The MRSL for `age` (the paper's Fig. 2).
    let age = relation.schema().attr_id("age").expect("age attribute");
    let mrsl = model.mrsl(age);
    println!("MRSL for `age` (cf. Fig. 2):");
    for level in 0..=mrsl.max_level() {
        for &id in mrsl.level(level) {
            let rule = mrsl.rule(id);
            let body = if rule.body().is_empty() {
                "P(age)".to_string()
            } else {
                let clauses: Vec<String> = rule
                    .body()
                    .items()
                    .iter()
                    .map(|item| {
                        let attr = relation.schema().attr(item.attr());
                        format!("{}={}", attr.name(), attr.value_label(item.value()))
                    })
                    .collect();
                format!("P(age | {})", clauses.join(" ∧ "))
            };
            let cpd: Vec<String> = rule.cpd().iter().map(|p| format!("{p:.2}")).collect();
            println!("  W={:.2}  {}  = [{}]", rule.weight(), body, cpd.join(", "));
        }
    }
    println!();

    // 4. Single-attribute inference (Algorithm 2) for t1 = ⟨?, HS, 50K, 500K⟩,
    //    the example worked in §I-B.
    let t1 = PartialTuple::from_options(&[None, Some(0), Some(0), Some(1)]);
    println!(
        "Inference for t1 = {}:",
        render_partial(relation.schema(), &t1)
    );
    for voting in VotingConfig::table2_order() {
        let cpd = InferContext::new(&model, voting, 0).vote_single(&t1, age);
        let pretty: Vec<String> = cpd.iter().map(|p| format!("{p:.2}")).collect();
        println!(
            "  {:<14} → P(age) = [{}]",
            voting.label(),
            pretty.join(", ")
        );
    }
    println!();

    // 5. Derive the full probabilistic database (the paper's end product).
    //    On this 8-point toy dataset the `best` voters are nearly
    //    deterministic, so we vote with the full ensemble (`all averaged`)
    //    to keep the block distributions soft, and take more samples.
    let config = DeriveConfig {
        learn,
        voting: VotingConfig::all_averaged(),
        gibbs: mrsl_repro::core::GibbsConfig {
            burn_in: 200,
            samples: 4000,
            voting: VotingConfig::all_averaged(),
        },
        ..DeriveConfig::default()
    };
    let output = derive_probabilistic_db(&relation, &config);
    println!(
        "Derived disjoint-independent database: {} certain tuples, {} blocks, {} alternatives, {} possible worlds",
        output.db.certain().len(),
        output.db.blocks().len(),
        output.db.alternative_count(),
        output.db.world_count(),
    );

    // 6. The Δt12 block (Fig. 1's call-out): t12 = ⟨30, MS, ?, ?⟩ is the
    //    12th tuple of R and the 7th incomplete one (index 6).
    let t12_block = &output.db.blocks()[6];
    println!("\nΔt12 (t12 = ⟨30, MS, ?, ?⟩), cf. Fig. 1 call-out:");
    let schema = relation.schema();
    for (i, alt) in t12_block.alternatives().iter().enumerate() {
        let rendered: Vec<String> = schema
            .iter()
            .map(|(aid, attr)| attr.value_label(alt.tuple.value(aid)).to_string())
            .collect();
        println!(
            "  t12.{}  ⟨{}⟩  prob {:.2}",
            i + 1,
            rendered.join(", "),
            alt.prob
        );
    }
    let total: f64 = t12_block.alternatives().iter().map(|a| a.prob).sum();
    println!("  (probabilities sum to {total:.2})");

    // Attribute ids referenced above, for the curious reader.
    let _ = AttrId(0);
}
