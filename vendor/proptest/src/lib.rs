//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros this workspace's
//! property tests use — ranges, [`Just`], tuples, `Vec<S>`,
//! `prop::collection::{vec, btree_set}`, `prop::option::of`, `prop_map`,
//! `prop_flat_map`, `boxed`, and the `proptest!` / `prop_assert*` /
//! `prop_assume!` macros.
//!
//! The big simplification versus upstream: cases are generated from a
//! deterministic per-test RNG and failures are reported by the plain
//! `assert!` machinery — there is **no shrinking**. A failing case prints
//! its seed context via the assertion message instead.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe strategy core used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// [`Strategy::prop_flat_map`] adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

impl<T: SampleUniform + 'static> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform + 'static> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// One independent strategy per slot (`Vec<S>` generates `Vec<S::Value>`).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Length specifications accepted by the collection strategies.
pub trait SizeRange {
    /// Draws a length.
    fn draw_len(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn draw_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn draw_len(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn draw_len(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// The `prop::` namespace of combinator modules.
pub mod prop {
    pub use super::collection;
    pub use super::option;
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// `Vec` strategy: a length drawn from `size`, elements from `element`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// See [`fn@vec`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.draw_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet` strategy. Duplicates shrink the realized size, like
    /// upstream's best-effort behavior.
    pub fn btree_set<S, R>(element: S, size: R) -> BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: SizeRange,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S, R> Strategy for BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: SizeRange,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.draw_len(rng);
            let mut set = BTreeSet::new();
            for _ in 0..len {
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::*;

    /// Generates `None` half the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_bool(0.5) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Builds the deterministic RNG for one test case.
pub fn new_rng(seed: u64) -> TestRng {
    TestRng::seed_from_u64(seed)
}

/// Deterministic per-test seed derivation (FNV over the test name).
pub fn seed_for(test_name: &str, case: u32) -> u64 {
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        acc = (acc ^ b as u64).wrapping_mul(0x0100_0000_01b3);
    }
    acc ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Everything a test file normally imports.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };
}

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of `#[test] fn name(pat in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($pat:pat_param in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut proptest_rng: $crate::TestRng = $crate::new_rng(
                        $crate::seed_for(concat!(module_path!(), "::", stringify!($name)), case),
                    );
                    $(
                        let $pat = $crate::Strategy::generate(&($strat), &mut proptest_rng);
                    )*
                    // The closure gives `prop_assume!` an early-exit target.
                    #[allow(clippy::redundant_closure_call)]
                    (|| $body)();
                }
            }
        )*
    };
}

/// Boolean assertion inside a property (no shrinking; panics like
/// `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in 1u64..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn combinators_compose(
            (len, v) in (1usize..5).prop_flat_map(|n| {
                (Just(n), prop::collection::vec(0u16..100, n..n + 1))
            }),
            maybe in prop::option::of(0f64..1.0),
        ) {
            prop_assert_eq!(v.len(), len);
            if let Some(x) = maybe {
                prop_assert!((0.0..1.0).contains(&x));
            }
        }

        #[test]
        fn assume_skips_cases(x in 0u32..10) {
            prop_assume!(x < 5);
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn runs_the_generated_tests() {
        ranges_respect_bounds();
        combinators_compose();
        assume_skips_cases();
    }

    #[test]
    fn boxed_and_vec_of_strategies() {
        use crate::Strategy;
        let slots: Vec<BoxedStrategy<Option<u16>>> =
            (0..4).map(|_| prop::option::of(0u16..3).boxed()).collect();
        let strat = slots.prop_map(|opts| opts.len());
        let mut rng = crate::new_rng(1);
        assert_eq!(strat.generate(&mut rng), 4);
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(seed_for("a::b", 0), seed_for("a::b", 0));
        assert_ne!(seed_for("a::b", 0), seed_for("a::b", 1));
        assert_ne!(seed_for("a::b", 0), seed_for("a::c", 0));
    }

    use crate::{prop, seed_for};
}
