//! Offline stand-in for `serde_json`.
//!
//! A thin facade over the value tree, printer and parser in the vendored
//! `serde` shim: [`to_string`], [`to_string_pretty`], [`to_writer_pretty`],
//! [`from_str`], [`to_value`], [`json!`] and [`Value`].

pub use serde::value::{DeError, Number, Value};

use serde::{Deserialize, Serialize};
use std::fmt;
use std::io;

/// Error type covering serialization (IO) and deserialization failures.
#[derive(Debug)]
pub enum Error {
    /// Parse / shape error.
    De(DeError),
    /// Writer error from [`to_writer_pretty`].
    Io(io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::De(e) => write!(f, "{e}"),
            Error::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::De(e)
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

/// Serializes to the value tree (infallible in this shim).
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes `value` as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().render_compact())
}

/// Serializes `value` as two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().render_pretty())
}

/// Writes `value` as pretty JSON into `writer`.
pub fn to_writer_pretty<W: io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    writer.write_all(to_string_pretty(value)?.as_bytes())?;
    Ok(())
}

/// Writes `value` as compact JSON into `writer`.
pub fn to_writer<W: io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    writer.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

/// Parses JSON text into `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = Value::parse(text)?;
    Ok(T::from_value(&value)?)
}

/// Deserializes a value tree into `T`.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

/// Builds a [`Value`] from a JSON-ish literal. Supports `null`, object
/// literals with literal keys, array literals, and arbitrary serializable
/// expressions as values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( ($key.to_string(), $crate::json!($val)) ),*
        ])
    };
    ([ $($el:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::json!($el) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_objects() {
        let id = "fig4".to_string();
        let rows = vec![vec!["a".to_string(), "b".to_string()]];
        let v = json!({
            "id": id,
            "rows": rows,
            "n": 3u64,
            "ok": true,
            "nothing": json!(null),
        });
        assert_eq!(v["id"], "fig4");
        assert_eq!(v["rows"][0][1], "b");
        assert_eq!(v["n"].as_u64(), Some(3));
        assert_eq!(v["ok"].as_bool(), Some(true));
        assert!(v["nothing"].is_null());
    }

    #[test]
    fn string_roundtrip_through_text() {
        let v = json!({"xs": [1.5f64, 2.25f64], "name": "π ≈ 3"});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back_pretty: Value = from_str(&pretty).unwrap();
        assert_eq!(back_pretty, v);
    }

    #[test]
    fn writer_receives_bytes() {
        let mut buf = Vec::new();
        to_writer_pretty(&mut buf, &json!([1u64, 2u64])).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let v: Value = from_str(&text).unwrap();
        assert_eq!(v[1].as_u64(), Some(2));
    }
}
