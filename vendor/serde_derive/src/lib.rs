//! Derive macros for the vendored `serde` shim.
//!
//! Parses the derive input by hand (no `syn`/`quote` — the build
//! environment is offline) and supports exactly the shapes this workspace
//! uses:
//!
//! * structs with named fields (honouring `#[serde(skip)]` and
//!   `#[serde(skip, default = "path")]`);
//! * tuple structs (one field → transparent newtype encoding, several →
//!   array encoding);
//! * enums whose variants are all unit variants (encoded as the variant
//!   name string).
//!
//! Anything else (generics, data-carrying enum variants, other serde
//! attributes) produces a compile error naming the construct, so misuse
//! fails loudly rather than silently mis-encoding.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse_input(input) {
        Ok(item) => {
            let code = match mode {
                Mode::Serialize => gen_serialize(&item),
                Mode::Deserialize => gen_deserialize(&item),
            };
            code.parse().expect("generated code parses")
        }
        Err(message) => format!("compile_error!({message:?});")
            .parse()
            .expect("compile_error parses"),
    }
}

/// A parsed field: name (or tuple index), and serde attributes.
struct Field {
    /// Named-field name, or the index rendered as text for tuple fields.
    name: String,
    skip: bool,
    /// Path of the `default = "..."` function, when given with `skip`.
    default_path: Option<String>,
}

enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    UnitEnum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn parse_input(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes(&tokens, &mut i)?;
    skip_visibility(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive does not support generic type `{name}`"
        ));
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                Ok(Item {
                    name,
                    shape: Shape::Named(fields),
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = parse_tuple_arity(g.stream())?;
                Ok(Item {
                    name,
                    shape: Shape::Tuple(arity),
                })
            }
            other => Err(format!(
                "unsupported struct body for `{name}`: {other:?} (unit structs are not serialized here)"
            )),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_unit_variants(&name, g.stream())?;
                Ok(Item {
                    name,
                    shape: Shape::UnitEnum(variants),
                })
            }
            other => Err(format!("expected enum body for `{name}`, got {other:?}")),
        },
        other => Err(format!("expected `struct` or `enum`, got `{other}`")),
    }
}

/// Skips `#[...]` attribute groups; returns the serde attribute args seen.
fn take_attributes(tokens: &[TokenTree], i: &mut usize) -> Result<(bool, Option<String>), String> {
    let mut skip = false;
    let mut default_path = None;
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        let Some(TokenTree::Group(attr)) = tokens.get(*i + 1) else {
            return Err("dangling `#` in attribute position".to_owned());
        };
        let inner: Vec<TokenTree> = attr.stream().into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                let Some(TokenTree::Group(args)) = inner.get(1) else {
                    return Err("`#[serde]` without arguments".to_owned());
                };
                parse_serde_args(args.stream(), &mut skip, &mut default_path)?;
            }
        }
        *i += 2;
    }
    Ok((skip, default_path))
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) -> Result<(), String> {
    take_attributes(tokens, i).map(|_| ())
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        // `pub(crate)`, `pub(super)`, …
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Parses the contents of `#[serde(...)]`.
fn parse_serde_args(
    args: TokenStream,
    skip: &mut bool,
    default_path: &mut Option<String>,
) -> Result<(), String> {
    let tokens: Vec<TokenTree> = args.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) => {
                let word = id.to_string();
                match word.as_str() {
                    "skip" => {
                        *skip = true;
                        i += 1;
                    }
                    "default" => {
                        i += 1;
                        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=')
                        {
                            i += 1;
                            match tokens.get(i) {
                                Some(TokenTree::Literal(lit)) => {
                                    let text = lit.to_string();
                                    let path = text.trim_matches('"').to_owned();
                                    *default_path = Some(path);
                                    i += 1;
                                }
                                other => {
                                    return Err(format!(
                                        "expected string literal after `default =`, got {other:?}"
                                    ))
                                }
                            }
                        }
                    }
                    other => {
                        return Err(format!(
                            "unsupported serde attribute `{other}` (shim supports skip/default)"
                        ))
                    }
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            other => return Err(format!("unexpected token in serde attribute: {other}")),
        }
    }
    Ok(())
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let (skip, default_path) = take_attributes(&tokens, &mut i)?;
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        skip_type(&tokens, &mut i)?;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        fields.push(Field {
            name,
            skip,
            default_path,
        });
    }
    Ok(fields)
}

/// Advances past one type, stopping at a top-level `,` (angle-bracket
/// aware; parens/brackets arrive as atomic groups).
fn skip_type(tokens: &[TokenTree], i: &mut usize) -> Result<(), String> {
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.get(*i) {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return Ok(()),
            _ => {}
        }
        *i += 1;
    }
    Ok(())
}

fn parse_tuple_arity(body: TokenStream) -> Result<usize, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut arity = 0;
    while i < tokens.len() {
        let (skip, _) = take_attributes(&tokens, &mut i)?;
        if skip {
            return Err("#[serde(skip)] is not supported on tuple fields".to_owned());
        }
        skip_visibility(&tokens, &mut i);
        skip_type(&tokens, &mut i)?;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        arity += 1;
    }
    Ok(arity)
}

fn parse_unit_variants(enum_name: &str, body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i)?;
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                "serde shim derive supports only unit variants; `{enum_name}::{name}` carries data"
            ))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip tokens until `,`.
                i += 1;
                while i < tokens.len()
                    && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
                {
                    i += 1;
                }
            }
            _ => {}
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(name);
    }
    Ok(variants)
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let mut pushes = String::new();
            for field in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "fields.push(({:?}.to_string(), ::serde::Serialize::to_value(&self.{})));\n",
                    field.name, field.name
                ));
            }
            format!(
                "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::value::Value)> = ::std::vec::Vec::new();\n{pushes}::serde::value::Value::Object(fields)"
            )
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Shape::Tuple(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!(
                "::serde::value::Value::Array(::std::vec![{}])",
                items.join(", ")
            )
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::value::Value::String({v:?}.to_string())"))
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n fn to_value(&self) -> ::serde::value::Value {{\n {body}\n }}\n}}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let mut inits = String::new();
            for field in fields {
                if field.skip {
                    let default = field
                        .default_path
                        .clone()
                        .map(|p| format!("{p}()"))
                        .unwrap_or_else(|| "::std::default::Default::default()".to_owned());
                    inits.push_str(&format!("{}: {default},\n", field.name));
                } else {
                    inits.push_str(&format!(
                        "{}: ::serde::Deserialize::from_value(v.field({:?})?)?,\n",
                        field.name, field.name
                    ));
                }
            }
            format!("::std::result::Result::Ok({name} {{\n{inits}}})")
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Tuple(arity) => {
            let gets: Vec<String> = (0..*arity)
                .map(|k| {
                    format!(
                        "::serde::Deserialize::from_value(items.get({k}).unwrap_or(&::serde::value::Value::Null))?"
                    )
                })
                .collect();
            format!(
                "match v {{ ::serde::value::Value::Array(items) if items.len() == {arity} => ::std::result::Result::Ok({name}({})), other => ::std::result::Result::Err(::serde::value::DeError::expected(\"{arity}-element array\", other)) }}",
                gets.join(", ")
            )
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v})"))
                .collect();
            format!(
                "let tag = v.as_str().ok_or_else(|| ::serde::value::DeError::expected(\"string\", v))?;\nmatch tag {{ {}, other => ::std::result::Result::Err(::serde::value::DeError::new(::std::format!(\"unknown {name} variant `{{other}}`\"))) }}",
                arms.join(", ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n fn from_value(v: &::serde::value::Value) -> ::std::result::Result<Self, ::serde::value::DeError> {{\n {body}\n }}\n}}"
    )
}
