//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the workspace's benches use — benchmark
//! groups, `bench_function` / `bench_with_input`, [`BenchmarkId`],
//! [`Throughput`], `sample_size`, and the `criterion_group!` /
//! `criterion_main!` macros — with a deliberately simple measurement
//! strategy: warm up once, then time `sample_size` batches and report the
//! per-iteration mean and min. No statistics, no HTML reports, no
//! comparisons; just enough to keep `cargo bench` runnable offline.
//!
//! Filters work like upstream: `cargo bench -- <substring>` runs only the
//! benchmarks whose id contains the substring. `--bench`, `--test`,
//! `--profile-time` and other harness flags are accepted and ignored
//! (`--test` and `--list` short-circuit like upstream's smoke modes).

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Unit of work reported per iteration, for derived throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name and/or parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// Just the parameter (nested under the group name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    samples: usize,
    smoke_test: bool,
    results: &'a mut Vec<Duration>,
}

impl Bencher<'_> {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke_test {
            black_box(routine());
            return;
        }
        // Warm-up and per-sample measurement, one call per sample: the
        // workspace's benches all run substantial inner workloads.
        black_box(routine());
        self.results.clear();
        self.results.reserve(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.results.push(start.elapsed());
        }
    }

    /// Times `routine` on inputs built by `setup` (setup excluded from the
    /// measurement).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        if self.smoke_test {
            black_box(routine(setup()));
            return;
        }
        black_box(routine(setup()));
        self.results.clear();
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.results.push(start.elapsed());
        }
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`] (ignored by the shim).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs.
    SmallInput,
    /// Large inputs.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-iteration work unit used for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted and ignored (upstream tunes measurement duration).
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Accepted and ignored (upstream tunes warm-up duration).
    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size;
        let throughput = self.throughput;
        self.criterion
            .run_one(&full, sample_size, throughput, |b| f(b));
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size;
        let throughput = self.throughput;
        self.criterion
            .run_one(&full, sample_size, throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    smoke_test: bool,
    list_only: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut smoke_test = false;
        let mut list_only = false;
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" | "--verbose" | "--quiet" | "--noplot" | "--exact" => {}
                "--test" => smoke_test = true,
                "--list" => list_only = true,
                "--profile-time"
                | "--save-baseline"
                | "--baseline"
                | "--load-baseline"
                | "--measurement-time"
                | "--warm-up-time"
                | "--sample-size"
                | "--significance-level"
                | "--output-format"
                | "--format"
                | "--color" => {
                    let _ = args.next();
                }
                other if other.starts_with("--") => {}
                other => filter = Some(other.to_owned()),
            }
        }
        Self {
            filter,
            smoke_test,
            list_only,
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let sample_size = self.default_sample_size;
        self.run_one(id, sample_size, None, |b| f(b));
        self
    }

    fn run_one<F>(&mut self, id: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        if self.list_only {
            println!("{id}: benchmark");
            return;
        }
        let mut results = Vec::new();
        let mut bencher = Bencher {
            samples: sample_size,
            smoke_test: self.smoke_test,
            results: &mut results,
        };
        f(&mut bencher);
        if self.smoke_test {
            println!("{id}: ok (smoke test)");
            return;
        }
        if results.is_empty() {
            println!("{id}: no measurements recorded");
            return;
        }
        let total: Duration = results.iter().sum();
        let mean = total / results.len() as u32;
        let min = results.iter().min().copied().unwrap_or_default();
        match throughput {
            Some(Throughput::Elements(n)) if mean.as_secs_f64() > 0.0 => {
                let rate = n as f64 / mean.as_secs_f64();
                println!(
                    "{id}: mean {mean:?}, min {min:?} ({} samples, {rate:.0} elem/s)",
                    results.len()
                );
            }
            Some(Throughput::Bytes(n)) if mean.as_secs_f64() > 0.0 => {
                let rate = n as f64 / mean.as_secs_f64() / (1024.0 * 1024.0);
                println!(
                    "{id}: mean {mean:?}, min {min:?} ({} samples, {rate:.2} MiB/s)",
                    results.len()
                );
            }
            _ => {
                println!(
                    "{id}: mean {mean:?}, min {min:?} ({} samples)",
                    results.len()
                );
            }
        }
    }

    /// Runs registered group functions (used by `criterion_main!`).
    pub fn final_summary(&self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $function(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_compiles_and_runs() {
        let mut criterion = Criterion {
            filter: None,
            smoke_test: false,
            list_only: false,
            default_sample_size: 3,
        };
        let mut group = criterion.benchmark_group("g");
        group.sample_size(2);
        group.throughput(Throughput::Elements(10));
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(7), &3u64, |b, &x| {
            b.iter(|| {
                runs += 1;
                black_box(x * 2)
            })
        });
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
        assert!(runs >= 2, "bencher executed the routine: {runs}");
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut criterion = Criterion {
            filter: Some("nomatch".to_owned()),
            smoke_test: false,
            list_only: false,
            default_sample_size: 3,
        };
        let mut ran = false;
        criterion.bench_function("something_else", |b| {
            b.iter(|| {
                ran = true;
            })
        });
        assert!(!ran);
    }
}
