//! The parallel-iterator surface: materialize → parallel map → collect.

use crate::par_map_ordered;

/// A materialized parallel iterator over items of type `T`.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps every item through `f` in parallel.
    pub fn map<O, F>(self, f: F) -> ParMap<T, F>
    where
        O: Send,
        F: Fn(T) -> O + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every item in parallel, discarding results.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
        T: Send,
    {
        let _: Vec<()> = par_map_ordered(self.items, f);
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when there are no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A mapped parallel iterator, ready to collect.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, F, O> ParMap<T, F>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    /// Executes the parallel map and collects results **in input order**.
    pub fn collect<C: FromIterator<O>>(self) -> C {
        par_map_ordered(self.items, self.f).into_iter().collect()
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// The item type.
    type Item: Send;

    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// The reference item type.
    type Item: Send + 'a;

    /// A parallel iterator over `&self`'s items.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}
