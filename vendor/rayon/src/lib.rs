//! Offline stand-in for `rayon`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of the rayon API its batch executor uses:
//!
//! * `par_iter()` / `into_par_iter()` on slices and vectors;
//! * `.map(...).collect()` on the resulting parallel iterator;
//! * [`ThreadPoolBuilder`] + [`ThreadPool::install`] to bound worker
//!   counts;
//! * [`current_num_threads`].
//!
//! Work distribution is an atomic index over the materialized items with
//! scoped worker threads — no work stealing, no splitting tree. That is
//! plenty for this workspace's fan-outs (whole evaluation cells or
//! inference chunks per item), and results are returned **in item order**
//! regardless of scheduling, so callers see deterministic output.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod iter;
pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel operations on this thread will use:
/// the installed pool's size, or one per available core.
pub fn current_num_threads() -> usize {
    POOL_THREADS
        .with(|threads| threads.get())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Builder for a bounded [`ThreadPool`].
#[derive(Debug, Clone, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error from [`ThreadPoolBuilder::build`] (infallible in this shim, kept
/// for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool construction failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// A builder with the default thread count (one per core).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; `0` means one per available core.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A bounded scope for parallel operations. Workers are spawned per
/// operation (scoped threads), so the pool itself holds no OS resources.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count governing any parallel
    /// iterators used inside.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        POOL_THREADS.with(|threads| {
            let previous = threads.replace(Some(self.threads));
            let result = op();
            threads.set(previous);
            result
        })
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Ordered parallel map: applies `f` to every item, fanning out over up to
/// [`current_num_threads`] scoped workers, and returns results in input
/// order. Worker panics are re-raised on the caller.
pub(crate) fn par_map_ordered<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = items.len();
    let budget = current_num_threads().max(1);
    let workers = budget.clamp(1, n.max(1));
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Workers split the caller's thread budget so *total* concurrency
    // stays bounded by the installed pool even when `f` itself runs
    // parallel operations (real rayon gets this from work-stealing on a
    // shared pool; the shim gets it by dividing the budget). Spawned
    // threads start with an empty thread-local, so this must be installed
    // explicitly in each worker.
    let nested_budget = (budget / workers).max(1);

    let slots: Vec<Mutex<Option<I>>> = items
        .into_iter()
        .map(|item| Mutex::new(Some(item)))
        .collect();
    let out: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                POOL_THREADS.with(|threads| threads.set(Some(nested_budget)));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = slots[i]
                        .lock()
                        .expect("item slot lock")
                        .take()
                        .expect("each index claimed once");
                    match catch_unwind(AssertUnwindSafe(|| f(item))) {
                        Ok(result) => {
                            *out[i].lock().expect("result slot lock") = Some(result);
                        }
                        Err(payload) => {
                            *panic.lock().expect("panic slot lock") = Some(payload);
                            // Stop claiming further work.
                            next.store(n, Ordering::Relaxed);
                            break;
                        }
                    }
                }
            });
        }
    });

    if let Some(payload) = panic.into_inner().expect("panic slot lock") {
        resume_unwind(payload);
    }
    out.into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot lock")
                .expect("all slots filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_consumes() {
        let xs: Vec<String> = vec!["a".into(), "b".into()];
        let lens: Vec<usize> = xs.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens, vec![1, 1]);
    }

    #[test]
    fn workers_inherit_a_share_of_the_installed_budget() {
        // A 4-thread pool fanning out over 4 items leaves each worker a
        // budget of 1, so nested parallel calls stay sequential and total
        // concurrency respects the installed bound.
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let nested: Vec<usize> = pool.install(|| {
            (0..4usize)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|_| current_num_threads())
                .collect()
        });
        assert_eq!(nested, vec![1, 1, 1, 1]);
        // Two items under a 8-thread pool: each worker inherits 4.
        let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let nested: Vec<usize> = pool.install(|| {
            (0..2usize)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|_| current_num_threads())
                .collect()
        });
        assert_eq!(nested, vec![4, 4]);
    }

    #[test]
    fn pool_bounds_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 2);
        assert_eq!(pool.current_num_threads(), 2);
        // The override is scoped to the install call.
        let pool1 = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let nested = pool.install(|| pool1.install(current_num_threads));
        assert_eq!(nested, 1);
    }

    #[test]
    fn single_thread_matches_parallel() {
        let xs: Vec<u64> = (0..257).collect();
        let seq: Vec<u64> = ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| xs.par_iter().map(|&x| x * x).collect());
        let par: Vec<u64> = ThreadPoolBuilder::new()
            .num_threads(8)
            .build()
            .unwrap()
            .install(|| xs.par_iter().map(|&x| x * x).collect());
        assert_eq!(seq, par);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let xs: Vec<usize> = (0..64).collect();
        let _: Vec<usize> = xs
            .par_iter()
            .map(|&x| {
                if x == 33 {
                    panic!("boom");
                }
                x
            })
            .collect();
    }
}
