//! Concrete generators.

use crate::{splitmix64, RngCore, SeedableRng};

/// The workspace's standard seeded generator: xoshiro256** (Blackman &
/// Vigna). Fast, 256-bit state, passes BigCrush; the stream is stable
/// across platforms, which is what the reproducibility notes rely on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (slot, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *slot = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state is a fixed point of xoshiro; remix defensively.
        if s.iter().all(|&w| w == 0) {
            let mut z: u64 = 0x6a09_e667_f3bc_c909;
            for slot in &mut s {
                z = splitmix64(z.wrapping_add(0x9e37_79b9_7f4a_7c15));
                *slot = z;
            }
        }
        Self { s }
    }
}

/// Alias kept because some call sites name the small generator.
pub type SmallRng = StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_remixed() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn seed_from_u64_differs_by_seed() {
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
