//! Minimal distribution support for [`crate::Rng::gen`].

use crate::Rng;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: uniform over all values for integers,
/// uniform in `[0, 1)` for floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<u64> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u16> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}

impl Distribution<u8> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Distribution<usize> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    /// Uniform in `[0, 1)` with 24 random mantissa bits.
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
