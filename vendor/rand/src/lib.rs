//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small subset of the `rand` 0.8 API it actually uses:
//! [`RngCore`], [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`],
//! [`rngs::StdRng`] and [`seq::SliceRandom::shuffle`].
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64 rather than
//! ChaCha12. Its stream is stable across platforms and releases of this
//! workspace, which is the property the reproducibility guarantees rely
//! on; it is *not* stream-compatible with upstream `rand`.

use std::ops::{Range, RangeInclusive};

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of random `u64`s.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution
    /// (`u64`: uniform over all values; `f64`: uniform in `[0, 1)`).
    #[inline]
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let bytes = splitmix64(state).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 finalizer: expands seeds and decorrelates nearby inputs.
#[inline]
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let (lo_w, hi_w) = (lo as i128, hi as i128);
                let span = if inclusive { hi_w - lo_w + 1 } else { hi_w - lo_w };
                assert!(span > 0, "cannot sample from empty range");
                // Widening-multiply range reduction (Lemire); the bias is
                // below 2^-64 per draw, far under Monte-Carlo noise.
                let reduced = ((rng.next_u64() as u128 * span as u128) >> 64) as i128;
                (lo_w + reduced) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self {
        assert!(if inclusive { lo <= hi } else { lo < hi }, "empty range");
        loop {
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let v = lo + u * (hi - lo);
            // Floating rounding can push v onto hi for exclusive ranges;
            // redraw in that (rare) case.
            if v >= lo && (inclusive || v < hi) {
                return v;
            }
        }
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self {
        f64::sample_between(rng, lo as f64, hi as f64, inclusive) as f32
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = rng.gen_range(0..5usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
        for _ in 0..1_000 {
            let v = rng.gen_range(2..=3usize);
            assert!(v == 2 || v == 3);
        }
        for _ in 0..1_000 {
            let v = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(v > 0.0 && v < 1.0);
        }
    }

    #[test]
    fn unsized_rng_works_through_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            let _ = rng.gen_range(0..10u16);
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }
}
