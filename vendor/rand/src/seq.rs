//! Sequence helpers: shuffling and random element choice.

use crate::{Rng, SampleUniform};

/// Extension trait for slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` when empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = usize::sample_between(rng, 0, i, true);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = usize::sample_between(rng, 0, self.len(), false);
            Some(&self[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to stay sorted");
    }

    #[test]
    fn choose_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let v = [1, 2, 3];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
