//! The JSON value tree, plus a printer and parser.
//!
//! This lives in the `serde` shim (rather than `serde_json`) because the
//! shim's [`crate::Serialize`]/[`crate::Deserialize`] traits are defined in
//! terms of [`Value`]; the `serde_json` facade re-exports everything.

use std::fmt;

/// A JSON number. Integers keep full 64-bit precision (large seeds do not
/// survive a trip through `f64`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A float.
    Float(f64),
}

impl Number {
    /// The number as `f64` (lossy for 64-bit integers above 2^53).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(x) => x,
        }
    }

    /// The number as `u64`, if representable exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(n) => u64::try_from(n).ok(),
            Number::Float(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => {
                Some(x as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// The number as `i64`, if representable exactly.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(x)
                if x.fract() == 0.0 && x >= i64::MIN as f64 && x <= i64::MAX as f64 =>
            {
                Some(x as i64)
            }
            Number::Float(_) => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(n) => write!(f, "{n}"),
            Number::NegInt(n) => write!(f, "{n}"),
            Number::Float(x) => {
                if x.is_finite() {
                    // Rust's float Display prints the shortest string that
                    // parses back to the same value, so round-trips are
                    // exact. Ensure a decimal point / exponent so the value
                    // re-parses as a float.
                    let s = format!("{x}");
                    if s.contains('.') || s.contains('e') || s.contains('E') {
                        f.write_str(&s)
                    } else {
                        write!(f, "{s}.0")
                    }
                } else {
                    // JSON has no NaN/Infinity; mirror serde_json's
                    // permissive printer by emitting null.
                    f.write_str("null")
                }
            }
        }
    }
}

/// An owned JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

static NULL_VALUE: Value = Value::Null;

impl Value {
    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64`, if it is an exactly-representable number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an exactly-representable number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member by key, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Struct-field access used by derived `Deserialize` impls: returns
    /// `null` for a missing key (so `Option` fields read as `None`) and
    /// errors when `self` is not an object.
    pub fn field(&self, key: &str) -> Result<&Value, DeError> {
        match self {
            Value::Object(_) => Ok(self.get(key).unwrap_or(&NULL_VALUE)),
            other => Err(DeError::expected(
                &format!("object with field `{key}`"),
                other,
            )),
        }
    }

    /// Renders as compact JSON.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, None, 0);
        out
    }

    /// Renders as two-space-indented JSON.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, Some(2), 0);
        out
    }

    fn write_into(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => write_json_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write_into(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_json_string(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write_into(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    pub fn parse(text: &str) -> Result<Value, DeError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.parse_value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(DeError::new(format!(
                "trailing characters at byte {}",
                parser.pos
            )));
        }
        Ok(value)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_compact())
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Member access; `null` for missing keys or non-objects (mirrors
    /// `serde_json`).
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL_VALUE)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// Element access; `null` when out of bounds or not an array.
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL_VALUE),
            _ => &NULL_VALUE,
        }
    }
}

impl std::ops::IndexMut<&str> for Value {
    /// Member access for assignment. `null` values auto-vivify into
    /// objects and missing keys are inserted, mirroring `serde_json`.
    ///
    /// # Panics
    /// Panics when `self` is neither `null` nor an object.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if self.is_null() {
            *self = Value::Object(Vec::new());
        }
        match self {
            Value::Object(entries) => {
                if let Some(i) = entries.iter().position(|(k, _)| k == key) {
                    &mut entries[i].1
                } else {
                    entries.push((key.to_owned(), Value::Null));
                    &mut entries.last_mut().expect("just pushed").1
                }
            }
            other => panic!("cannot index {} with a string key", other.kind()),
        }
    }
}

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_owned())
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Number(Number::PosInt(v))
    }
}

/// Deserialization / parse error.
#[derive(Debug, Clone)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// An error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// "expected X, got Y" helper.
    pub fn expected(what: &str, got: &Value) -> Self {
        Self::new(format!("expected {what}, got {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

// -------------------------------------------------------------- the parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), DeError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(DeError::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, DeError> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(DeError::new(format!(
                "unexpected byte `{}` at {}",
                b as char, self.pos
            ))),
            None => Err(DeError::new("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, DeError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(DeError::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, DeError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(DeError::new(format!(
                        "expected `,` or `}}` at {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, DeError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(DeError::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(DeError::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let high = self.parse_hex4()?;
                            let code = if (0xd800..0xdc00).contains(&high) {
                                // Surrogate pair.
                                if !(self.eat_literal("\\u")) {
                                    return Err(DeError::new("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(DeError::new("invalid low surrogate"));
                                }
                                0x10000 + ((high - 0xd800) << 10) + (low - 0xdc00)
                            } else {
                                high
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| DeError::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(DeError::new(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 scalar starting at pos - 1.
                    let start = self.pos - 1;
                    let rest = &self.bytes[start..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| DeError::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, DeError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(DeError::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| DeError::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| DeError::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| DeError::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(n)));
            }
        }
        // `str::parse::<f64>` is correctly rounded, so parse(print(x)) == x.
        text.parse::<f64>()
            .map(|x| Value::Number(Number::Float(x)))
            .map_err(|_| DeError::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) -> Value {
        Value::parse(&v.render_compact()).expect("reparse")
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Number(Number::PosInt(u64::MAX)),
            Value::Number(Number::NegInt(-42)),
            Value::Number(Number::Float(0.1)),
            Value::Number(Number::Float(f64::MIN_POSITIVE)),
            Value::String("he\"llo\n\\ wörld \u{1F600}".to_owned()),
        ] {
            assert_eq!(roundtrip(&v), v, "{v:?}");
        }
    }

    #[test]
    fn float_roundtrip_is_exact() {
        // The printer emits shortest-round-trip decimals and the parser is
        // correctly rounded, so the persistence tests' exactness holds.
        for &x in &[0.1, 1.0 / 3.0, 2.0f64.powi(-52), 1e308, -0.0] {
            let v = Value::Number(Number::Float(x));
            let Value::Number(n) = roundtrip(&v) else {
                panic!("not a number");
            };
            assert_eq!(n.as_f64().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = Value::Object(vec![
            (
                "a".into(),
                Value::Array(vec![Value::Null, Value::Bool(false)]),
            ),
            (
                "b".into(),
                Value::Object(vec![("k".into(), Value::Number(Number::PosInt(7)))]),
            ),
            ("empty_arr".into(), Value::Array(vec![])),
            ("empty_obj".into(), Value::Object(vec![])),
        ]);
        assert_eq!(roundtrip(&v), v);
        assert_eq!(Value::parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn indexing_behaves_like_serde_json() {
        let mut v = Value::Null;
        v["x"] = Value::Number(Number::PosInt(1));
        assert_eq!(v["x"].as_u64(), Some(1));
        assert!(v["missing"].is_null());
        assert!(v["x"][3].is_null());
        let arr = Value::Array(vec![Value::String("a".into())]);
        assert_eq!(arr[0], "a");
        assert!(arr[1].is_null());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("nul").is_err());
        assert!(Value::parse("1 2").is_err());
        assert!(Value::parse("\"\\q\"").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            Value::parse("\"\\u00e9\\ud83d\\ude00\"").unwrap(),
            Value::String("é\u{1F600}".to_owned())
        );
    }
}
