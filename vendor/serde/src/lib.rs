//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal serde replacement. Unlike real serde's visitor architecture,
//! this shim serializes through an owned JSON-like [`value::Value`] tree:
//!
//! * [`Serialize`] — converts `self` into a [`value::Value`];
//! * [`Deserialize`] — reconstructs `Self` from a [`value::Value`];
//! * `#[derive(Serialize, Deserialize)]` — provided by the vendored
//!   `serde_derive` proc-macro, supporting named-field structs, tuple
//!   structs and unit-variant enums, plus the `#[serde(skip)]` and
//!   `#[serde(skip, default = "path")]` attributes this workspace uses.
//!
//! The `serde_json` facade crate builds its `to_string`/`from_str` on the
//! printer/parser in [`value`].

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{DeError, Value};

use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasher, Hash};
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;
use value::Number;

/// Conversion into the JSON-like value tree.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Reconstruction from the JSON-like value tree.
pub trait Deserialize: Sized {
    /// Deserializes `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------- scalars

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::expected("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError::new(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 {
                    Value::Number(Number::PosInt(i as u64))
                } else {
                    Value::Number(Number::NegInt(i))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::expected("integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError::new(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_serde_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.as_f64().ok_or_else(|| DeError::expected("number", v))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("boolean", other)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::expected("string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new(format!(
                "expected single character, got {s:?}"
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            other => Err(DeError::expected("null", other)),
        }
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Rc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Rc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

// `Serialize for Box<[T]>` is covered by the blanket `Box<T: ?Sized>` impl.
impl<T: Deserialize> Deserialize for Box<[T]> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(Vec::into_boxed_slice)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::expected("2-element array", other)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(DeError::expected("3-element array", other)),
        }
    }
}

/// Map keys that can be encoded as JSON object keys.
pub trait SerdeMapKey: Sized {
    /// The key as a JSON object key.
    fn to_key(&self) -> String;
    /// Parses the key back.
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl SerdeMapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_owned())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl SerdeMapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse().map_err(|_| DeError::new(format!(
                    "invalid {} map key: {key:?}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: SerdeMapKey, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: SerdeMapKey + Eq + Hash,
    V: Deserialize,
    S: BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl<K: SerdeMapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: SerdeMapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

// ----------------------------------------------------------------- std etc.

impl Serialize for Duration {
    /// Mirrors real serde's `{secs, nanos}` encoding.
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_owned(), self.as_secs().to_value()),
            ("nanos".to_owned(), self.subsec_nanos().to_value()),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let secs = u64::from_value(v.field("secs")?)?;
        let nanos = u32::from_value(v.field("nanos")?)?;
        Ok(Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for n in [0u64, 1, u64::MAX] {
            assert_eq!(u64::from_value(&n.to_value()).unwrap(), n);
        }
        for n in [i64::MIN, -1, 0, 7] {
            assert_eq!(i64::from_value(&n.to_value()).unwrap(), n);
        }
        for x in [0.0f64, -1.5, f64::MIN_POSITIVE, 1e300] {
            assert_eq!(f64::from_value(&x.to_value()).unwrap(), x);
        }
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hé\"llo".to_string().to_value()).unwrap(),
            "hé\"llo"
        );
    }

    #[test]
    fn container_roundtrips() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let b: Box<[u16]> = vec![4u16, 5].into_boxed_slice();
        assert_eq!(Box::<[u16]>::from_value(&b.to_value()).unwrap(), b);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), None);
        let s = Arc::new("shared".to_string());
        assert_eq!(*Arc::<String>::from_value(&s.to_value()).unwrap(), *s);
        let d = Duration::new(3, 456);
        assert_eq!(Duration::from_value(&d.to_value()).unwrap(), d);
        let pair = (1u8, "x".to_string());
        assert_eq!(<(u8, String)>::from_value(&pair.to_value()).unwrap(), pair);
    }

    #[test]
    fn out_of_range_integers_error() {
        let big = Value::Number(Number::PosInt(300));
        assert!(u8::from_value(&big).is_err());
        let neg = Value::Number(Number::NegInt(-1));
        assert!(u32::from_value(&neg).is_err());
    }
}
