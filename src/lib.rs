//! Facade crate for the MRSL reproduction workspace.
//!
//! Re-exports the public API of every workspace crate under one roof so the
//! examples and integration tests can `use mrsl_repro::...`. See README.md
//! for a tour, the crate map, and how to run the examples, benches and the
//! `repro` experiment binary.

pub use mrsl_bayesnet as bayesnet;
pub use mrsl_core as core;
pub use mrsl_eval as eval;
pub use mrsl_itemset as itemset;
pub use mrsl_learn as learn;
pub use mrsl_probdb as probdb;
pub use mrsl_relation as relation;
pub use mrsl_util as util;
