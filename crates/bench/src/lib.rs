//! Shared fixtures for the Criterion benchmarks.
//!
//! Each bench regenerates one timing-oriented table/figure of the paper
//! (see DESIGN.md §3); these helpers build the datasets and models they
//! share so the benches measure only the operation under test.

use mrsl_bayesnet::catalog::by_name;
use mrsl_bayesnet::BayesianNetwork;
use mrsl_core::{LearnConfig, MrslModel};
use mrsl_relation::{AttrId, CompleteTuple, PartialTuple};
use mrsl_util::{derive_seed, seeded_rng};
use rand::seq::SliceRandom;
use rand::Rng;

/// Instantiates a catalog network deterministically.
pub fn network(name: &str, seed: u64) -> BayesianNetwork {
    let spec = by_name(name)
        .unwrap_or_else(|| panic!("{name} not in catalog"))
        .topology;
    BayesianNetwork::instantiate(&spec, 0.5, seed)
}

/// Samples a training set from a catalog network.
pub fn training_set(name: &str, n: usize, seed: u64) -> (BayesianNetwork, Vec<CompleteTuple>) {
    let bn = network(name, seed);
    let data = mrsl_bayesnet::sampler::sample_dataset(&bn, n, derive_seed(seed, &[1]));
    (bn, data)
}

/// Learns a model from a catalog network at the given θ.
pub fn learned_model(
    name: &str,
    train: usize,
    theta: f64,
    seed: u64,
) -> (BayesianNetwork, MrslModel) {
    let (bn, data) = training_set(name, train, seed);
    let model = MrslModel::learn(
        bn.schema(),
        &data,
        &LearnConfig {
            support_threshold: theta,
            max_itemsets: 1000,
        },
    );
    (bn, model)
}

/// Builds a workload of incomplete tuples with 1..=max_k values hidden
/// uniformly per tuple.
pub fn workload(bn: &BayesianNetwork, size: usize, max_k: usize, seed: u64) -> Vec<PartialTuple> {
    let points = mrsl_bayesnet::sampler::sample_dataset(bn, size, derive_seed(seed, &[2]));
    let arity = bn.schema().attr_count();
    let mut rng = seeded_rng(derive_seed(seed, &[3]));
    points
        .iter()
        .map(|p| {
            let k = rng.gen_range(1..=max_k.min(arity - 1).max(1));
            let mut attrs: Vec<u16> = (0..arity as u16).collect();
            attrs.shuffle(&mut rng);
            let mut t = p.to_partial();
            for &a in &attrs[..k] {
                t = t.without_attr(AttrId(a));
            }
            t
        })
        .collect()
}

/// Builds a wide synthetic probabilistic database directly (no model
/// derivation): `attrs` dictionary-encoded attributes of cardinality
/// `card`, `certain` certain rows and `blocks` blocks of `alts`
/// alternatives each, all uniformly random but deterministic per `seed`.
/// The query benches use this to isolate evaluation cost from derivation.
///
/// # Panics
/// Panics when a block cannot hold `alts` distinct tuples, i.e. when
/// `alts > card^attrs` (the rejection sampler would never terminate).
pub fn wide_synthetic_db(
    attrs: usize,
    card: usize,
    certain: usize,
    blocks: usize,
    alts: usize,
    seed: u64,
) -> mrsl_probdb::ProbDb {
    use mrsl_probdb::{Alternative, Block, ProbDb};
    use mrsl_relation::{CompleteTuple, SchemaBuilder};

    let mut builder = SchemaBuilder::default();
    for a in 0..attrs {
        builder = builder.attribute(format!("a{a}"), (0..card).map(|v| format!("v{v}")));
    }
    let schema = builder.build().expect("valid synthetic schema");
    let domain = (card as u128).saturating_pow(attrs as u32);
    assert!(
        alts as u128 <= domain,
        "cannot draw {alts} distinct tuples from a domain of {domain}"
    );
    let mut rng = seeded_rng(derive_seed(seed, &[0x11db]));
    let random_tuple = |rng: &mut rand::rngs::StdRng| {
        CompleteTuple::from_values((0..attrs).map(|_| rng.gen_range(0..card as u16)).collect())
    };
    let mut db = ProbDb::new(schema);
    for _ in 0..certain {
        let t = random_tuple(&mut rng);
        db.push_certain(t).expect("arity ok");
    }
    for key in 0..blocks {
        let mut tuples: Vec<CompleteTuple> = Vec::with_capacity(alts);
        while tuples.len() < alts {
            let t = random_tuple(&mut rng);
            if !tuples.contains(&t) {
                tuples.push(t);
            }
        }
        let weights: Vec<f64> = (0..alts).map(|_| rng.gen_range(1..100) as f64).collect();
        let alternatives = tuples
            .into_iter()
            .zip(&weights)
            .map(|(tuple, &w)| Alternative { tuple, prob: w })
            .collect();
        db.push_block(Block::normalized(key, alternatives).expect("valid block"))
            .expect("arity ok");
    }
    db
}

/// Builds a two-relation synthetic catalog for the join benches:
/// `sensors(station, kind, calib)` and `readings(station, level, flag)`
/// over a shared `stations`-value dictionary. Every block keeps a fixed
/// station (the join key) and spreads its `alts` alternatives over the
/// other attributes, so hierarchical join queries stay on the exact path.
///
/// # Panics
/// Panics when `alts` distinct non-station combinations cannot exist
/// (`alts > card²` for the fixed per-attribute cardinality of 4).
pub fn synthetic_join_catalog(
    stations: usize,
    certain: usize,
    blocks: usize,
    alts: usize,
    seed: u64,
) -> mrsl_probdb::Catalog {
    use mrsl_probdb::{Alternative, Block, Catalog, ProbDb};
    use mrsl_relation::{CompleteTuple, SchemaBuilder};

    const CARD: usize = 4;
    assert!(alts <= CARD * CARD, "cannot draw {alts} distinct combos");
    let station_labels: Vec<String> = (0..stations).map(|s| format!("s{s}")).collect();
    let schema = |a: &str, b: &str| {
        SchemaBuilder::default()
            .attribute("station", station_labels.clone())
            .attribute(a, (0..CARD).map(|v| format!("{a}{v}")))
            .attribute(b, (0..CARD).map(|v| format!("{b}{v}")))
            .build()
            .expect("valid synthetic schema")
    };
    let mut rng = seeded_rng(derive_seed(seed, &[0x10, 0x1b]));
    let mut build = |schema: std::sync::Arc<mrsl_relation::Schema>| -> ProbDb {
        let mut db = ProbDb::new(schema);
        for _ in 0..certain {
            let t = CompleteTuple::from_values(vec![
                rng.gen_range(0..stations as u16),
                rng.gen_range(0..CARD as u16),
                rng.gen_range(0..CARD as u16),
            ]);
            db.push_certain(t).expect("arity ok");
        }
        for key in 0..blocks {
            let station = rng.gen_range(0..stations as u16);
            let mut combos: Vec<(u16, u16)> = Vec::with_capacity(alts);
            while combos.len() < alts {
                let c = (rng.gen_range(0..CARD as u16), rng.gen_range(0..CARD as u16));
                if !combos.contains(&c) {
                    combos.push(c);
                }
            }
            let alternatives = combos
                .into_iter()
                .map(|(a, b)| Alternative {
                    tuple: CompleteTuple::from_values(vec![station, a, b]),
                    prob: rng.gen_range(1..100) as f64,
                })
                .collect();
            db.push_block(Block::normalized(key, alternatives).expect("valid block"))
                .expect("arity ok");
        }
        db
    };
    let mut catalog = Catalog::new();
    catalog
        .add("sensors", build(schema("kind", "calib")))
        .expect("fresh catalog");
    catalog
        .add("readings", build(schema("level", "flag")))
        .expect("fresh catalog");
    catalog
}

/// Builds the classic non-hierarchical chain `R(x), S(x,y), T(y)` at
/// benchmark scale: `keys` distinct join values per side, `blocks` blocks
/// in `r`/`t` and `2·blocks` in `s`. Every block sits at a fixed join key
/// and is "present" when its trailing `ok` attribute equals `yes`
/// (uniformly random probability per block, deterministic per `seed`), so
/// the shape is unsafe for the exact plan but dissociable — the fixture
/// the bounds-vs-sampling benchmarks run on.
pub fn synthetic_chain_catalog(keys: usize, blocks: usize, seed: u64) -> mrsl_probdb::Catalog {
    use mrsl_probdb::{Alternative, Block, Catalog, ProbDb};
    use mrsl_relation::{CompleteTuple, SchemaBuilder};

    let key_labels: Vec<String> = (0..keys).map(|k| format!("k{k}")).collect();
    let one = |name: &str| {
        SchemaBuilder::default()
            .attribute(name, key_labels.clone())
            .attribute("ok", ["no", "yes"])
            .build()
            .expect("valid chain schema")
    };
    let two = SchemaBuilder::default()
        .attribute("x", key_labels.clone())
        .attribute("y", key_labels.clone())
        .attribute("ok", ["no", "yes"])
        .build()
        .expect("valid chain schema");
    let mut rng = seeded_rng(derive_seed(seed, &[0xc4, 0xa1]));
    let gated = |values: Vec<u16>, key: usize, db: &mut ProbDb, p: f64| {
        let mut absent = values.clone();
        absent.push(0);
        let mut present = values;
        present.push(1);
        let block = Block::new(
            key,
            vec![
                Alternative {
                    tuple: CompleteTuple::from_values(absent),
                    prob: 1.0 - p,
                },
                Alternative {
                    tuple: CompleteTuple::from_values(present),
                    prob: p,
                },
            ],
        )
        .expect("normalized gated block");
        db.push_block(block).expect("arity ok");
    };
    let mut r = ProbDb::new(one("x"));
    let mut t = ProbDb::new(one("y"));
    for key in 0..blocks {
        let k = (key % keys) as u16;
        let p = rng.gen_range(5..95) as f64 / 100.0;
        gated(vec![k], key, &mut r, p);
        let p = rng.gen_range(5..95) as f64 / 100.0;
        gated(vec![(keys - 1 - key % keys) as u16], key, &mut t, p);
    }
    let mut s = ProbDb::new(two);
    for key in 0..2 * blocks {
        let x = rng.gen_range(0..keys as u16);
        let y = rng.gen_range(0..keys as u16);
        let p = rng.gen_range(5..95) as f64 / 100.0;
        gated(vec![x, y], key, &mut s, p);
    }
    let mut catalog = Catalog::new();
    catalog.add("r", r).expect("fresh catalog");
    catalog.add("s", s).expect("fresh catalog");
    catalog.add("t", t).expect("fresh catalog");
    catalog
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        let (_, a) = training_set("BN8", 100, 7);
        let (_, b) = training_set("BN8", 100, 7);
        assert_eq!(a, b);
        let (_, m1) = learned_model("BN8", 500, 0.01, 7);
        let (_, m2) = learned_model("BN8", 500, 0.01, 7);
        assert_eq!(m1.size(), m2.size());
    }

    #[test]
    fn join_catalog_blocks_keep_unique_stations() {
        let catalog = synthetic_join_catalog(8, 50, 30, 3, 7);
        for (_, db) in catalog.iter() {
            for block in db.blocks() {
                let station = block.alternatives()[0].tuple.raw()[0];
                assert!(block
                    .alternatives()
                    .iter()
                    .all(|a| a.tuple.raw()[0] == station));
            }
        }
    }

    #[test]
    fn chain_catalog_is_dissociable() {
        use mrsl_probdb::{CatalogEngine, PlanClass, Predicate, Query, Statistic};
        use mrsl_relation::{AttrId, ValueId};
        let catalog = synthetic_chain_catalog(8, 40, 11);
        let ok2 = Predicate::eq(AttrId(1), ValueId(1));
        let ok3 = Predicate::eq(AttrId(2), ValueId(1));
        let q = Query::scan("r")
            .filter(ok2.clone())
            .join_on(Query::scan("s").filter(ok3), [(AttrId(0), AttrId(0))])
            .join_on_rel("s", Query::scan("t").filter(ok2), [(AttrId(1), AttrId(0))]);
        let engine = CatalogEngine::new(&catalog);
        let (_, plan) = engine.plan(&q, Statistic::Probability).expect("plan");
        assert_eq!(plan, PlanClass::NonHierarchical);
        let (_, plan) = engine.plan(&q, Statistic::ProbabilityBounds).expect("plan");
        assert_eq!(plan, PlanClass::Dissociable);
    }

    #[test]
    fn workload_respects_bounds() {
        let bn = network("BN9", 3);
        for t in workload(&bn, 50, 3, 1) {
            let k = t.missing_mask().count();
            assert!((1..=3).contains(&k));
        }
    }
}
