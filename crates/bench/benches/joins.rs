//! Bench: exact extensional joins vs multi-relation Monte Carlo, and
//! dissociation bounds vs sampling on unsafe shapes.
//!
//! A hierarchical two-relation join (sensors ⨝ readings on the station
//! key, with a selection on each side) is evaluated through the
//! [`CatalogEngine`] on both physical paths: the exact safe plan — key
//! partition with per-block products — and the forced joint-world sampler.
//! The gap is the price of sampling where lifting is possible; the
//! expected-count rows additionally measure the mass-table join that stays
//! exact for every shape.
//!
//! The `dissociation` group runs the non-hierarchical chain
//! `R(x), S(x,y), T(y)`: `bounds_probability` computes the deterministic
//! dissociation bracket on the exact path (no sampling — tolerance 1.0),
//! `mc_probability` is the joint-world sampler the same query takes for
//! the point statistic. The bracket should be exact-path fast while the
//! sampler pays per-world join costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrsl_bench::{synthetic_chain_catalog, synthetic_join_catalog};
use mrsl_probdb::{CatalogEngine, Predicate, Query, QueryEngineConfig, Statistic};
use mrsl_relation::{AttrId, ValueId};

/// σ[kind ∈ {0,1}](sensors) ⨝ σ[level ≥ 2](readings) on the station.
fn join_query() -> Query {
    Query::scan("sensors")
        .filter(Predicate::is_in(AttrId(1), [ValueId(0), ValueId(1)]))
        .join_on(
            Query::scan("readings").filter(Predicate::range(AttrId(1), ValueId(2), ValueId(3))),
            [(AttrId(0), AttrId(0))],
        )
}

fn bench_joins(c: &mut Criterion) {
    let mut group = c.benchmark_group("joins");
    group.sample_size(15);
    for &(stations, certain, blocks) in &[(64usize, 2_000usize, 1_000usize), (256, 10_000, 5_000)] {
        let catalog = synthetic_join_catalog(stations, certain, blocks, 3, 42);
        let query = join_query();
        let size = certain + blocks;
        group.bench_with_input(
            BenchmarkId::new("exact_probability", size),
            &catalog,
            |b, catalog| {
                let engine = CatalogEngine::new(catalog);
                b.iter(|| std::hint::black_box(engine.probability(&query).expect("exact")))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("mc_probability", size),
            &catalog,
            |b, catalog| {
                let engine = CatalogEngine::with_config(
                    catalog,
                    QueryEngineConfig {
                        force_monte_carlo: true,
                        mc_samples: 500,
                        ..QueryEngineConfig::default()
                    },
                );
                b.iter(|| {
                    std::hint::black_box(
                        engine.evaluate(&query, Statistic::Probability).expect("mc"),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("exact_expected_count", size),
            &catalog,
            |b, catalog| {
                let engine = CatalogEngine::new(catalog);
                b.iter(|| std::hint::black_box(engine.expected_count(&query).expect("exact")))
            },
        );
    }
    group.finish();
}

/// `σ[ok] R(x) ⨝ σ[ok] S(x,y) ⨝ σ[ok] T(y)` — unsafe, dissociable.
fn chain_query() -> Query {
    let ok2 = Predicate::eq(AttrId(1), ValueId(1));
    let ok3 = Predicate::eq(AttrId(2), ValueId(1));
    Query::scan("r")
        .filter(ok2.clone())
        .join_on(Query::scan("s").filter(ok3), [(AttrId(0), AttrId(0))])
        .join_on_rel("s", Query::scan("t").filter(ok2), [(AttrId(1), AttrId(0))])
}

fn bench_dissociation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dissociation");
    group.sample_size(15);
    for &(keys, blocks) in &[(16usize, 500usize), (64, 2_500)] {
        let catalog = synthetic_chain_catalog(keys, blocks, 42);
        let query = chain_query();
        let size = 4 * blocks; // r + t + 2·blocks in s
        group.bench_with_input(
            BenchmarkId::new("bounds_probability", size),
            &catalog,
            |b, catalog| {
                // Tolerance 1.0: the bracket is never refined, so this
                // row measures the pure exact-path dissociation cost.
                let engine = CatalogEngine::with_config(
                    catalog,
                    QueryEngineConfig {
                        bounds_tolerance: 1.0,
                        ..QueryEngineConfig::default()
                    },
                );
                b.iter(|| std::hint::black_box(engine.probability_bounds(&query).expect("bounds")))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("mc_probability", size),
            &catalog,
            |b, catalog| {
                let engine = CatalogEngine::with_config(
                    catalog,
                    QueryEngineConfig {
                        mc_samples: 500,
                        ..QueryEngineConfig::default()
                    },
                );
                b.iter(|| {
                    std::hint::black_box(
                        engine.evaluate(&query, Statistic::Probability).expect("mc"),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_joins, bench_dissociation);
criterion_main!(benches);
