//! Bench: exact extensional joins vs multi-relation Monte Carlo, and
//! dissociation bounds vs sampling on unsafe shapes.
//!
//! A hierarchical two-relation join (sensors ⨝ readings on the station
//! key, with a selection on each side) is evaluated through the
//! [`CatalogEngine`] on both physical paths: the exact safe plan — key
//! partition with per-block products — and the forced joint-world sampler.
//! The gap is the price of sampling where lifting is possible; the
//! expected-count rows additionally measure the mass-table join that stays
//! exact for every shape.
//!
//! The `dissociation` group runs the non-hierarchical chain
//! `R(x), S(x,y), T(y)`: `bounds_probability` computes the deterministic
//! dissociation bracket on the exact path (no sampling — tolerance 1.0),
//! `mc_probability` is the joint-world sampler the same query takes for
//! the point statistic. The bracket should be exact-path fast while the
//! sampler pays per-world join costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrsl_bench::{synthetic_chain_catalog, synthetic_join_catalog};
use mrsl_probdb::{Catalog, CatalogEngine, Predicate, Query, QueryEngineConfig, Statistic};
use mrsl_relation::{AttrId, ValueId};
use std::fmt::Write as _;
use std::time::Instant;

/// Interpreter reference configuration: compiled plans off.
fn interp_config() -> QueryEngineConfig {
    QueryEngineConfig {
        compile_plans: false,
        bounds_tolerance: 1.0,
        ..QueryEngineConfig::default()
    }
}

/// VM configuration: compiled plans on (the default), brackets never
/// refined so the bounds rows measure the pure deterministic path.
fn vm_config() -> QueryEngineConfig {
    QueryEngineConfig {
        bounds_tolerance: 1.0,
        ..QueryEngineConfig::default()
    }
}

/// σ[kind ∈ {0,1}](sensors) ⨝ σ[level ≥ 2](readings) on the station.
fn join_query() -> Query {
    Query::scan("sensors")
        .filter(Predicate::is_in(AttrId(1), [ValueId(0), ValueId(1)]))
        .join_on(
            Query::scan("readings").filter(Predicate::range(AttrId(1), ValueId(2), ValueId(3))),
            [(AttrId(0), AttrId(0))],
        )
}

fn bench_joins(c: &mut Criterion) {
    let mut group = c.benchmark_group("joins");
    group.sample_size(15);
    for &(stations, certain, blocks) in &[(64usize, 2_000usize, 1_000usize), (256, 10_000, 5_000)] {
        let catalog = synthetic_join_catalog(stations, certain, blocks, 3, 42);
        let query = join_query();
        let size = certain + blocks;
        // `exact_probability` reuses one engine: the first iteration
        // compiles and caches, the rest are warm VM hits.
        group.bench_with_input(
            BenchmarkId::new("exact_probability", size),
            &catalog,
            |b, catalog| {
                let engine = CatalogEngine::new(catalog);
                b.iter(|| std::hint::black_box(engine.probability(&query).expect("exact")))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("interp_probability", size),
            &catalog,
            |b, catalog| {
                let engine = CatalogEngine::with_config(catalog, interp_config());
                b.iter(|| std::hint::black_box(engine.probability(&query).expect("interp")))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("mc_probability", size),
            &catalog,
            |b, catalog| {
                let engine = CatalogEngine::with_config(
                    catalog,
                    QueryEngineConfig {
                        force_monte_carlo: true,
                        mc_samples: 500,
                        ..QueryEngineConfig::default()
                    },
                );
                b.iter(|| {
                    std::hint::black_box(
                        engine.evaluate(&query, Statistic::Probability).expect("mc"),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("exact_expected_count", size),
            &catalog,
            |b, catalog| {
                let engine = CatalogEngine::new(catalog);
                b.iter(|| std::hint::black_box(engine.expected_count(&query).expect("exact")))
            },
        );
    }
    group.finish();
}

/// `σ[ok] R(x) ⨝ σ[ok] S(x,y) ⨝ σ[ok] T(y)` — unsafe, dissociable.
fn chain_query() -> Query {
    let ok2 = Predicate::eq(AttrId(1), ValueId(1));
    let ok3 = Predicate::eq(AttrId(2), ValueId(1));
    Query::scan("r")
        .filter(ok2.clone())
        .join_on(Query::scan("s").filter(ok3), [(AttrId(0), AttrId(0))])
        .join_on_rel("s", Query::scan("t").filter(ok2), [(AttrId(1), AttrId(0))])
}

fn bench_dissociation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dissociation");
    group.sample_size(15);
    for &(keys, blocks) in &[(16usize, 500usize), (64, 2_500)] {
        let catalog = synthetic_chain_catalog(keys, blocks, 42);
        let query = chain_query();
        let size = 4 * blocks; // r + t + 2·blocks in s
        group.bench_with_input(
            BenchmarkId::new("bounds_probability", size),
            &catalog,
            |b, catalog| {
                // Tolerance 1.0: the bracket is never refined, so this
                // row measures the pure exact-path dissociation cost
                // (warm compiled plans after the first iteration).
                let engine = CatalogEngine::with_config(catalog, vm_config());
                b.iter(|| std::hint::black_box(engine.probability_bounds(&query).expect("bounds")))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("interp_bounds_probability", size),
            &catalog,
            |b, catalog| {
                let engine = CatalogEngine::with_config(catalog, interp_config());
                b.iter(|| std::hint::black_box(engine.probability_bounds(&query).expect("bounds")))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("mc_probability", size),
            &catalog,
            |b, catalog| {
                let engine = CatalogEngine::with_config(
                    catalog,
                    QueryEngineConfig {
                        mc_samples: 500,
                        ..QueryEngineConfig::default()
                    },
                );
                b.iter(|| {
                    std::hint::black_box(
                        engine.evaluate(&query, Statistic::Probability).expect("mc"),
                    )
                })
            },
        );
    }
    group.finish();
}

/// Mean wall-clock nanoseconds per call of `f` over `iters` timed
/// iterations (after one untimed warm-up call).
fn time_ns<F: FnMut()>(iters: u32, mut f: F) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

/// One interpreter-vs-VM comparison row for the JSON report.
struct PlanRow {
    name: &'static str,
    interp_ns: f64,
    vm_ns: f64,
}

fn plan_rows(catalog: &Catalog, query: &Query, stat: Statistic, iters: u32) -> PlanRow {
    let name = match stat {
        Statistic::Probability => "probability",
        Statistic::ExpectedCount => "expected_count",
        Statistic::ProbabilityBounds => "bounds_probability",
        _ => "other",
    };
    let interp = CatalogEngine::with_config(catalog, interp_config());
    let interp_ns = time_ns(iters, || {
        std::hint::black_box(interp.evaluate(query, stat).expect("interp"));
    });
    let vm = CatalogEngine::with_config(catalog, vm_config());
    let vm_ns = time_ns(iters, || {
        std::hint::black_box(vm.evaluate(query, stat).expect("vm"));
    });
    PlanRow {
        name,
        interp_ns,
        vm_ns,
    }
}

fn write_rows(out: &mut String, fixture: &str, rows: &[PlanRow], cold_ns: f64, warm_ns: f64) {
    let _ = writeln!(out, "  \"{fixture}\": {{");
    for row in rows {
        let _ = writeln!(
            out,
            "    \"{}\": {{\"interpreter_ns\": {:.0}, \"vm_ns\": {:.0}, \"speedup\": {:.2}}},",
            row.name,
            row.interp_ns,
            row.vm_ns,
            row.interp_ns / row.vm_ns
        );
    }
    let _ = writeln!(
        out,
        "    \"plan_ns\": {{\"cold\": {cold_ns:.0}, \"warm\": {warm_ns:.0}}}"
    );
    let _ = writeln!(out, "  }},");
}

/// Self-timed interpreter-vs-VM report, written to `BENCH_plan.json` at
/// the repo root. The vendored criterion shim has no programmatic timing
/// hooks, so this measures with [`Instant`] directly: per-statistic
/// interpreter vs warm-VM nanoseconds, the cold-vs-warm planning gap
/// (fresh engine per call vs shared [`PlanCache`] hits), and the cache
/// hit/miss counters from the warm engine.
fn emit_plan_report(_c: &mut Criterion) {
    let mut out = String::from("{\n");

    // Join fixture at ≥2k uncertain blocks: hierarchical, exact path.
    let join_catalog = synthetic_join_catalog(256, 10_000, 5_000, 3, 42);
    let join = join_query();
    let rows = [
        plan_rows(&join_catalog, &join, Statistic::Probability, 12),
        plan_rows(&join_catalog, &join, Statistic::ExpectedCount, 12),
    ];
    // The warm VM reuses memoized mass tables; falling behind the
    // interpreter here is a regression, not noise.
    assert!(
        rows[1].vm_ns < rows[1].interp_ns,
        "expected_count VM regressed vs interpreter: {:.0}ns vs {:.0}ns",
        rows[1].vm_ns,
        rows[1].interp_ns
    );
    let warm_engine = CatalogEngine::new(&join_catalog);
    let warm_ns = time_ns(12, || {
        std::hint::black_box(warm_engine.probability(&join).expect("warm"));
    });
    let cold_ns = time_ns(12, || {
        let engine = CatalogEngine::new(&join_catalog);
        std::hint::black_box(engine.probability(&join).expect("cold"));
    });
    write_rows(&mut out, "join_2k_blocks", &rows, cold_ns, warm_ns);
    let stats = warm_engine.plan_cache().stats();

    // Dissociable chain: both bounds are compiled programs.
    let chain_catalog = synthetic_chain_catalog(64, 2_500, 42);
    let chain = chain_query();
    let rows = [plan_rows(
        &chain_catalog,
        &chain,
        Statistic::ProbabilityBounds,
        12,
    )];
    let warm_engine = CatalogEngine::with_config(&chain_catalog, vm_config());
    let warm_ns = time_ns(12, || {
        std::hint::black_box(warm_engine.probability_bounds(&chain).expect("warm"));
    });
    let cold_ns = time_ns(12, || {
        let engine = CatalogEngine::with_config(&chain_catalog, vm_config());
        std::hint::black_box(engine.probability_bounds(&chain).expect("cold"));
    });
    write_rows(&mut out, "chain_2500_blocks", &rows, cold_ns, warm_ns);
    let chain_stats = warm_engine.plan_cache().stats();

    let _ = writeln!(
        out,
        "  \"cache\": {{\"hits\": {}, \"misses\": {}}}\n}}",
        stats.hits + chain_stats.hits,
        stats.misses + chain_stats.misses
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_plan.json");
    if let Err(err) = std::fs::write(path, &out) {
        eprintln!("BENCH_plan.json not written: {err}");
    } else {
        println!("wrote {path}");
        print!("{out}");
    }
}

criterion_group!(benches, bench_joins, bench_dissociation, emit_plan_report);
criterion_main!(benches);
