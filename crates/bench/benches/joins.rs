//! Bench: exact extensional joins vs multi-relation Monte Carlo.
//!
//! A hierarchical two-relation join (sensors ⨝ readings on the station
//! key, with a selection on each side) is evaluated through the
//! [`CatalogEngine`] on both physical paths: the exact safe plan — key
//! partition with per-block products — and the forced joint-world sampler.
//! The gap is the price of sampling where lifting is possible; the
//! expected-count rows additionally measure the mass-table join that stays
//! exact for every shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrsl_bench::synthetic_join_catalog;
use mrsl_probdb::{CatalogEngine, Predicate, Query, QueryEngineConfig, Statistic};
use mrsl_relation::{AttrId, ValueId};

/// σ[kind ∈ {0,1}](sensors) ⨝ σ[level ≥ 2](readings) on the station.
fn join_query() -> Query {
    Query::scan("sensors")
        .filter(Predicate::is_in(AttrId(1), [ValueId(0), ValueId(1)]))
        .join_on(
            Query::scan("readings").filter(Predicate::range(AttrId(1), ValueId(2), ValueId(3))),
            [(AttrId(0), AttrId(0))],
        )
}

fn bench_joins(c: &mut Criterion) {
    let mut group = c.benchmark_group("joins");
    group.sample_size(15);
    for &(stations, certain, blocks) in &[(64usize, 2_000usize, 1_000usize), (256, 10_000, 5_000)] {
        let catalog = synthetic_join_catalog(stations, certain, blocks, 3, 42);
        let query = join_query();
        let size = certain + blocks;
        group.bench_with_input(
            BenchmarkId::new("exact_probability", size),
            &catalog,
            |b, catalog| {
                let engine = CatalogEngine::new(catalog);
                b.iter(|| std::hint::black_box(engine.probability(&query).expect("exact")))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("mc_probability", size),
            &catalog,
            |b, catalog| {
                let engine = CatalogEngine::with_config(
                    catalog,
                    QueryEngineConfig {
                        force_monte_carlo: true,
                        mc_samples: 500,
                        ..QueryEngineConfig::default()
                    },
                );
                b.iter(|| {
                    std::hint::black_box(
                        engine.evaluate(&query, Statistic::Probability).expect("mc"),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("exact_expected_count", size),
            &catalog,
            |b, catalog| {
                let engine = CatalogEngine::new(catalog);
                b.iter(|| std::hint::black_box(engine.expected_count(&query).expect("exact")))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_joins);
criterion_main!(benches);
