//! Bench: MRSL learning time (regenerates the trends of Fig. 4(a)/(b)).
//!
//! Sweeps the training set size at fixed support (4a) and the support
//! threshold at fixed training size (4b) on a representative network.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mrsl_bench::training_set;
use mrsl_core::{LearnConfig, MrslModel};

fn bench_training_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4a_learning_vs_training_size");
    group.sample_size(10);
    for &n in &[1_000usize, 5_000, 20_000] {
        let (bn, data) = training_set("BN9", n, 42);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| {
                MrslModel::learn(
                    bn.schema(),
                    data,
                    &LearnConfig {
                        support_threshold: 0.02,
                        max_itemsets: 1000,
                    },
                )
            })
        });
    }
    group.finish();
}

fn bench_support(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4b_learning_vs_support");
    group.sample_size(10);
    let (bn, data) = training_set("BN10", 10_000, 42);
    for &theta in &[0.001f64, 0.01, 0.1] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("theta_{theta}")),
            &theta,
            |b, &theta| {
                b.iter(|| {
                    MrslModel::learn(
                        bn.schema(),
                        &data,
                        &LearnConfig {
                            support_threshold: theta,
                            max_itemsets: 1000,
                        },
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_training_size, bench_support);
criterion_main!(benches);
