//! Bench: the Apriori miner in isolation (the dominant cost inside
//! Algorithm 1, supporting the Fig. 4 analysis).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mrsl_bench::training_set;
use mrsl_itemset::{AprioriConfig, FrequentItemsets};

fn bench_mining(c: &mut Criterion) {
    let mut group = c.benchmark_group("apriori_mining");
    group.sample_size(10);
    for name in ["BN8", "BN10", "BN13"] {
        let (bn, data) = training_set(name, 10_000, 7);
        group.throughput(Throughput::Elements(data.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), &data, |b, data| {
            b.iter(|| {
                FrequentItemsets::mine(
                    bn.schema(),
                    data,
                    &AprioriConfig {
                        support_threshold: 0.005,
                        max_itemsets: 1000,
                    },
                )
            })
        });
    }
    group.finish();
}

fn bench_max_itemsets_cap(c: &mut Criterion) {
    // The paper's maxItemsets = 1000 cap "effectively controls
    // model-building time": measure with and without.
    let mut group = c.benchmark_group("apriori_max_itemsets_cap");
    group.sample_size(10);
    let (bn, data) = training_set("BN12", 10_000, 7);
    for &(label, cap) in &[("capped_1000", 1_000usize), ("uncapped", usize::MAX)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &cap, |b, &cap| {
            b.iter(|| {
                FrequentItemsets::mine(
                    bn.schema(),
                    &data,
                    &AprioriConfig {
                        support_threshold: 0.001,
                        max_itemsets: cap,
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mining, bench_max_itemsets_cap);
criterion_main!(benches);
