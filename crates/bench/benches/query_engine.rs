//! Bench: row-wise vs columnar predicate evaluation on a wide synthetic
//! database, plus the planned `CatalogEngine` paths.
//!
//! The database is built directly (no model derivation) so the bench
//! isolates query evaluation: many certain rows, many blocks, compound
//! `Or`/`Range`/`Not` predicates. The columnar path compiles the predicate
//! into per-attribute bitmap scans; `rowwise` is the pre-refactor
//! tuple-at-a-time evaluator kept as the reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrsl_bench::wide_synthetic_db;
use mrsl_probdb::query::{self, rowwise, Predicate};
use mrsl_probdb::{Catalog, CatalogEngine, Query, QueryEngineConfig};
use mrsl_relation::{AttrId, ValueId};

/// A compound predicate touching three attributes:
/// `(a0 ∈ {1,3,5} ∨ 2 ≤ a1 ≤ 5) ∧ ¬(a2 = 0)`.
fn workload_predicate() -> Predicate {
    Predicate::is_in(AttrId(0), [ValueId(1), ValueId(3), ValueId(5)])
        .or(Predicate::range(AttrId(1), ValueId(2), ValueId(5)))
        .and(Predicate::eq(AttrId(2), ValueId(0)).negate())
}

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_engine");
    group.sample_size(20);
    for &(certain, blocks) in &[(20_000usize, 2_000usize), (50_000, 10_000)] {
        let db = wide_synthetic_db(8, 8, certain, blocks, 3, 42);
        let pred = workload_predicate();
        group.bench_with_input(
            BenchmarkId::new("rowwise_expected_count", certain + blocks),
            &db,
            |b, db| b.iter(|| std::hint::black_box(rowwise::expected_count(db, &pred))),
        );
        group.bench_with_input(
            BenchmarkId::new("columnar_expected_count", certain + blocks),
            &db,
            |b, db| b.iter(|| std::hint::black_box(query::expected_count(db, &pred))),
        );
        let mut catalog = Catalog::new();
        catalog.add("db", db).expect("fresh catalog");
        let query = Query::scan("db").filter(pred.clone());
        group.bench_with_input(
            BenchmarkId::new("planned_expected_count", certain + blocks),
            &catalog,
            |b, catalog| {
                let engine = CatalogEngine::new(catalog);
                b.iter(|| std::hint::black_box(engine.expected_count(&query).expect("exact")))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("planned_count_distribution_mc", certain + blocks),
            &catalog,
            |b, catalog| {
                // A DP budget of 0 forces the Monte-Carlo fallback.
                let engine = CatalogEngine::with_config(
                    catalog,
                    QueryEngineConfig {
                        max_exact_dp_blocks: 0,
                        mc_samples: 1_000,
                        ..QueryEngineConfig::default()
                    },
                );
                b.iter(|| std::hint::black_box(engine.count_distribution(&query).expect("mc")))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
