//! Bench: the concurrent serving layer.
//!
//! Self-timed reporter (the vendored criterion shim has no programmatic
//! timing hooks) written to `BENCH_serve.json` at the repo root:
//!
//! - per-request p50/p99 latency and aggregate queries/sec for the warm
//!   hierarchical join probability at 1/2/4/8 client threads hammering
//!   one [`ProbDbServer`] worker pool through cloned handles;
//! - cold request latency (plan + bind through the serving path, plan
//!   cache cleared between samples);
//! - read-while-ingest: the same client ladder while a writer thread
//!   publishes one-block upserts copy-on-write — the snapshot swap plus
//!   the register *patch* (not rebuild) every post-publish request pays;
//! - the server's cumulative [`ServerStats`] so cache warmth, generation
//!   lag and queue depth land next to the latency numbers.
//!
//! `host_cores` records the machine's parallelism: client counts above it
//! time contention honestly rather than projecting speedups. Under
//! `--test` (CI smoke) the fixtures shrink to seconds of work and the
//! JSON is not rewritten.

use criterion::{criterion_group, criterion_main, Criterion};
use mrsl_bench::synthetic_join_catalog;
use mrsl_probdb::serve::{ProbDbServer, ServeConfig};
use mrsl_probdb::{
    Alternative, Block, Predicate, Query, QueryEngineConfig, ServerHandle, ServerStats, Statistic,
};
use mrsl_relation::{AttrId, CompleteTuple, ValueId};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

const CLIENTS: [usize; 4] = [1, 2, 4, 8];
const WORKERS: usize = 4;

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test" || a == "--list")
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        workers: WORKERS,
        engine: QueryEngineConfig {
            bounds_tolerance: 1.0,
            ..QueryEngineConfig::default()
        },
    }
}

/// σ[kind ∈ {0,1}](sensors) ⨝ σ[level ≥ 2](readings) on the station —
/// the same hierarchical join the shard bench times engine-direct.
fn join_query() -> Query {
    Query::scan("sensors")
        .filter(Predicate::is_in(AttrId(1), [ValueId(0), ValueId(1)]))
        .join_on(
            Query::scan("readings").filter(Predicate::range(AttrId(1), ValueId(2), ValueId(3))),
            [(AttrId(0), AttrId(0))],
        )
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// One client thread: `iters` blocking round-trips through the pool,
/// per-request wall-clock nanoseconds.
fn client_latencies(handle: &ServerHandle, query: &Query, iters: usize) -> Vec<f64> {
    (0..iters)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(
                handle
                    .evaluate(query, Statistic::Probability)
                    .expect("served"),
            );
            start.elapsed().as_nanos() as f64
        })
        .collect()
}

/// `clients` threads hammering the pool concurrently; returns the merged
/// sorted per-request samples and the aggregate queries/sec.
fn client_section(
    server: &ProbDbServer,
    query: &Query,
    clients: usize,
    iters: usize,
) -> (Vec<f64>, f64) {
    let start = Instant::now();
    let mut samples: Vec<f64> = std::thread::scope(|s| {
        let threads: Vec<_> = (0..clients)
            .map(|_| {
                let handle = server.handle();
                s.spawn(move || client_latencies(&handle, query, iters))
            })
            .collect();
        threads
            .into_iter()
            .flat_map(|t| t.join().expect("client thread"))
            .collect()
    });
    let wall = start.elapsed().as_secs_f64();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let qps = (clients * iters) as f64 / wall;
    (samples, qps)
}

fn write_section(out: &mut String, key: &str, samples: &[f64], qps: f64, extra: &str, last: bool) {
    let _ = writeln!(
        out,
        "    \"{key}\": {{\"p50_ns\": {:.0}, \"p99_ns\": {:.0}, \"qps\": {qps:.1}{extra}}}{}",
        percentile(samples, 0.5),
        percentile(samples, 0.99),
        if last { "" } else { "," }
    );
}

/// A fresh one-block upsert for the writer: two alternatives on a
/// rotating station, normalized to a valid block.
fn ingest_block(key: usize, stations: usize) -> Block {
    let station = (key % stations) as u16;
    Block::normalized(
        key,
        vec![
            Alternative {
                tuple: CompleteTuple::from_values(vec![station, 0, 0]),
                prob: 1.0,
            },
            Alternative {
                tuple: CompleteTuple::from_values(vec![station, 1, 1]),
                prob: 1.0,
            },
        ],
    )
    .expect("valid block")
}

fn emit_serve_report(_c: &mut Criterion) {
    let smoke = smoke_mode();
    let (stations, certain, blocks) = if smoke {
        (16, 200, 200)
    } else {
        (256, 5_000, 20_000)
    };
    let iters = if smoke { 5 } else { 300 };
    let cold_iters = if smoke { 2 } else { 8 };

    let catalog = synthetic_join_catalog(stations, certain, blocks, 3, 42);
    let query = join_query();

    let mut out = String::from("{\n");
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let _ = writeln!(out, "  \"host_cores\": {cores},");
    let _ = writeln!(out, "  \"workers\": {WORKERS},");
    let _ = writeln!(
        out,
        "  \"fixture\": {{\"stations\": {stations}, \"certain\": {certain}, \
         \"blocks\": {blocks}, \"iters_per_client\": {iters}}},"
    );

    // Cold: plan + bind through the serving path. The pool and snapshot
    // are reused; only the shared plan cache is dropped between samples.
    let server = ProbDbServer::with_config(catalog.clone(), serve_config());
    let handle = server.handle();
    let mut cold: Vec<f64> = (0..cold_iters)
        .map(|_| {
            server.plan_cache().clear();
            let start = Instant::now();
            std::hint::black_box(
                handle
                    .evaluate(&query, Statistic::Probability)
                    .expect("cold serve"),
            );
            start.elapsed().as_nanos() as f64
        })
        .collect();
    cold.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let _ = writeln!(
        out,
        "  \"cold\": {{\"p50_ns\": {:.0}, \"p99_ns\": {:.0}}},",
        percentile(&cold, 0.5),
        percentile(&cold, 0.99)
    );

    // Warm ladder: the plan stays cached and memoized; every request is
    // queue + snapshot pin + cache hit + fold.
    handle
        .evaluate(&query, Statistic::Probability)
        .expect("warm-up");
    let _ = writeln!(out, "  \"warm\": {{");
    for (i, &clients) in CLIENTS.iter().enumerate() {
        let (samples, qps) = client_section(&server, &query, clients, iters);
        write_section(
            &mut out,
            &format!("clients_{clients}"),
            &samples,
            qps,
            "",
            i + 1 == CLIENTS.len(),
        );
    }
    let _ = writeln!(out, "  }},");
    let warm_stats = server.stats();
    server.shutdown();

    // Read-while-ingest: a fresh server per client count (copy-on-write
    // makes the catalog clone cheap), a writer publishing one-block
    // upserts on a fixed cadence while the clients hammer the join.
    let _ = writeln!(out, "  \"read_while_ingest\": {{");
    let mut ingest_stats: Option<ServerStats> = None;
    for (i, &clients) in CLIENTS.iter().enumerate() {
        let server = ProbDbServer::with_config(catalog.clone(), serve_config());
        server
            .handle()
            .evaluate(&query, Statistic::Probability)
            .expect("warm-up");
        let stop = AtomicBool::new(false);
        let next_key = AtomicUsize::new(blocks);
        let (samples, qps) = std::thread::scope(|s| {
            let writer = s.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    let key = next_key.fetch_add(1, Ordering::Relaxed);
                    let block = ingest_block(key, stations);
                    server.update(|catalog| {
                        catalog
                            .get_mut("sensors")
                            .expect("sensors")
                            .push_block(block)
                            .expect("arity ok");
                    });
                    std::thread::sleep(Duration::from_micros(500));
                }
            });
            let section = client_section(&server, &query, clients, iters);
            stop.store(true, Ordering::Relaxed);
            writer.join().expect("writer thread");
            section
        });
        let stats = server.stats();
        write_section(
            &mut out,
            &format!("clients_{clients}"),
            &samples,
            qps,
            &format!(", \"publishes\": {}", stats.publishes),
            i + 1 == CLIENTS.len(),
        );
        if !smoke {
            assert!(
                stats.publishes > 0,
                "read-while-ingest measured no publishes at {clients} clients"
            );
        }
        ingest_stats = Some(stats);
        server.shutdown();
    }
    let _ = writeln!(out, "  }},");

    // Cumulative counters: warm ladder totals, plus the last ingest
    // section's cache and lag shape.
    let ingest = ingest_stats.expect("at least one ingest section ran");
    let _ = writeln!(
        out,
        "  \"totals\": {{\"warm_queries\": {}, \"warm_cache_hits\": {}, \
         \"warm_max_queue_depth\": {}, \"ingest_queries\": {}, \"ingest_cache_hits\": {}, \
         \"ingest_lagged_reads\": {}, \"ingest_max_lag\": {}, \"ingest_reg_patches\": {}, \
         \"ingest_reg_rebinds\": {}, \"errors\": {}}}\n}}",
        warm_stats.queries,
        warm_stats.cache_hits,
        warm_stats.max_queue_depth,
        ingest.queries,
        ingest.cache_hits,
        ingest.lagged_reads,
        ingest.max_lag,
        ingest.plan_cache.reg_patches,
        ingest.plan_cache.reg_rebinds,
        warm_stats.errors + ingest.errors
    );
    assert_eq!(warm_stats.errors + ingest.errors, 0, "served errors");
    if !smoke {
        assert!(
            warm_stats.cache_hits > 0,
            "warm ladder never hit the shared plan cache"
        );
    }

    if smoke {
        println!("serve bench smoke mode: BENCH_serve.json left untouched");
        print!("{out}");
        return;
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    if let Err(err) = std::fs::write(path, &out) {
        eprintln!("BENCH_serve.json not written: {err}");
    } else {
        println!("wrote {path}");
        print!("{out}");
    }
}

criterion_group!(benches, emit_serve_report);
criterion_main!(benches);
