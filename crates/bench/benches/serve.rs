//! Bench: the concurrent serving layer.
//!
//! Self-timed reporter (the vendored criterion shim has no programmatic
//! timing hooks) written to `BENCH_serve.json` at the repo root:
//!
//! - per-request p50/p99 latency and aggregate queries/sec for the warm
//!   hierarchical join probability at 1/2/4/8 client threads hammering
//!   one [`ProbDbServer`] worker pool through cloned handles;
//! - cold request latency (plan + bind through the serving path, plan
//!   cache cleared between samples);
//! - read-while-ingest: the same client ladder while a writer thread
//!   publishes one-block upserts copy-on-write — the snapshot swap plus
//!   the register *patch* (not rebuild) every post-publish request pays;
//! - overload: an identical-shape storm from 8 clients against a small
//!   pool with a bounded queue (every evaluation forced onto the slow
//!   Monte Carlo path), measuring the coalesced share and storm p99,
//!   then deterministic admission rejections against a full queue and
//!   the client-side `wait_timeout` overshoot next to a plain
//!   `thread::sleep` jitter baseline;
//! - the server's cumulative [`ServerStats`] so cache warmth, generation
//!   lag and queue depth land next to the latency numbers.
//!
//! `host_cores` records the machine's parallelism: client counts above it
//! time contention honestly rather than projecting speedups. Under
//! `--test` (CI smoke) the fixtures shrink to seconds of work and the
//! JSON is not rewritten.

use criterion::{criterion_group, criterion_main, Criterion};
use mrsl_bench::synthetic_join_catalog;
use mrsl_probdb::serve::{ProbDbServer, ServeConfig};
use mrsl_probdb::{
    Alternative, Block, Predicate, ProbDbError, Query, QueryEngineConfig, ServerHandle,
    ServerStats, Statistic,
};
use mrsl_relation::{AttrId, CompleteTuple, ValueId};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

const CLIENTS: [usize; 4] = [1, 2, 4, 8];
const WORKERS: usize = 4;

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test" || a == "--list")
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        workers: WORKERS,
        engine: QueryEngineConfig {
            bounds_tolerance: 1.0,
            ..QueryEngineConfig::default()
        },
        ..ServeConfig::default()
    }
}

/// σ[kind ∈ {0,1}](sensors) ⨝ σ[level ≥ 2](readings) on the station —
/// the same hierarchical join the shard bench times engine-direct.
fn join_query() -> Query {
    Query::scan("sensors")
        .filter(Predicate::is_in(AttrId(1), [ValueId(0), ValueId(1)]))
        .join_on(
            Query::scan("readings").filter(Predicate::range(AttrId(1), ValueId(2), ValueId(3))),
            [(AttrId(0), AttrId(0))],
        )
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// One client thread: `iters` blocking round-trips through the pool,
/// per-request wall-clock nanoseconds.
fn client_latencies(handle: &ServerHandle, query: &Query, iters: usize) -> Vec<f64> {
    (0..iters)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(
                handle
                    .evaluate(query, Statistic::Probability)
                    .expect("served"),
            );
            start.elapsed().as_nanos() as f64
        })
        .collect()
}

/// `clients` threads hammering the pool concurrently; returns the merged
/// sorted per-request samples and the aggregate queries/sec.
fn client_section(
    server: &ProbDbServer,
    query: &Query,
    clients: usize,
    iters: usize,
) -> (Vec<f64>, f64) {
    let start = Instant::now();
    let mut samples: Vec<f64> = std::thread::scope(|s| {
        let threads: Vec<_> = (0..clients)
            .map(|_| {
                let handle = server.handle();
                s.spawn(move || client_latencies(&handle, query, iters))
            })
            .collect();
        threads
            .into_iter()
            .flat_map(|t| t.join().expect("client thread"))
            .collect()
    });
    let wall = start.elapsed().as_secs_f64();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let qps = (clients * iters) as f64 / wall;
    (samples, qps)
}

fn write_section(out: &mut String, key: &str, samples: &[f64], qps: f64, extra: &str, last: bool) {
    let _ = writeln!(
        out,
        "    \"{key}\": {{\"p50_ns\": {:.0}, \"p99_ns\": {:.0}, \"qps\": {qps:.1}{extra}}}{}",
        percentile(samples, 0.5),
        percentile(samples, 0.99),
        if last { "" } else { "," }
    );
}

/// A fresh one-block upsert for the writer: two alternatives on a
/// rotating station, normalized to a valid block.
fn ingest_block(key: usize, stations: usize) -> Block {
    let station = (key % stations) as u16;
    Block::normalized(
        key,
        vec![
            Alternative {
                tuple: CompleteTuple::from_values(vec![station, 0, 0]),
                prob: 1.0,
            },
            Alternative {
                tuple: CompleteTuple::from_values(vec![station, 1, 1]),
                prob: 1.0,
            },
        ],
    )
    .expect("valid block")
}

/// Overload scenario: 8 clients, 2 workers, queue bound 4, every
/// evaluation forced onto the Monte Carlo path with enough samples that
/// a request visibly holds a worker. Three deterministic sub-phases on
/// one server (so the emitted counters are cumulative server totals):
///
/// 1. **storm** — identical-shape submit/wait loops from all clients;
///    one evaluation fans out to everyone who attached while it ran.
/// 2. **deadline** — with both workers pinned by slow blockers (two
///    *different* shapes, so neither coalesces with the other), stamped
///    probes time out client-side; the overshoot past the deadline is
///    the measured scheduling jitter, reported next to a plain
///    `thread::sleep` baseline.
/// 3. **admission** — with the queue already holding the abandoned
///    probes, a burst of submits bounces off the bound immediately.
fn overload_section(out: &mut String, smoke: bool) {
    const STORM_CLIENTS: usize = 8;
    const OVERLOAD_WORKERS: usize = 2;
    const QUEUE_BOUND: usize = 4;
    // ~20k samples over this 400-block fixture is already ~1s of Monte
    // Carlo on the 1-core reference host: a request visibly holds a
    // worker without the section taking minutes.
    let (mc_samples, storm_iters, probes) = if smoke {
        (20_000, 2, 2)
    } else {
        (40_000, 6, QUEUE_BOUND)
    };
    let deadline = Duration::from_millis(25);

    let catalog = synthetic_join_catalog(16, 200, 400, 3, 7);
    let query = join_query();
    let server = ProbDbServer::with_config(
        catalog,
        ServeConfig {
            workers: OVERLOAD_WORKERS,
            max_queue_depth: QUEUE_BOUND,
            engine: QueryEngineConfig {
                force_monte_carlo: true,
                mc_samples,
                bounds_tolerance: 1.0,
                ..QueryEngineConfig::default()
            },
            ..ServeConfig::default()
        },
    );

    // Phase 1: the identical-shape storm.
    let storm_start = Instant::now();
    let mut samples: Vec<f64> = std::thread::scope(|s| {
        let threads: Vec<_> = (0..STORM_CLIENTS)
            .map(|_| {
                let handle = server.handle();
                let query = query.clone();
                s.spawn(move || {
                    let mut lat = Vec::with_capacity(storm_iters);
                    let mut done = 0;
                    while done < storm_iters {
                        let start = Instant::now();
                        match handle.submit(query.clone(), Statistic::Probability) {
                            Ok(ticket) => {
                                std::hint::black_box(ticket.wait().expect("storm answer"));
                                lat.push(start.elapsed().as_nanos() as f64);
                                done += 1;
                            }
                            // Bounced at admission: back off and retry.
                            Err(ProbDbError::Overloaded) => {
                                std::thread::sleep(Duration::from_micros(200));
                            }
                            Err(e) => panic!("storm submit: {e}"),
                        }
                    }
                    lat
                })
            })
            .collect();
        threads
            .into_iter()
            .flat_map(|t| t.join().expect("storm client"))
            .collect()
    });
    let storm_wall = storm_start.elapsed().as_secs_f64();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let storm_requests = (STORM_CLIENTS * storm_iters) as u64;
    let storm_stats = server.stats();

    // Phase 2: pin both workers with slow blockers of *different*
    // shapes, then probe the client-side deadline overshoot.
    let handle = server.handle();
    let blockers = [
        handle
            .submit(query.clone(), Statistic::Probability)
            .expect("blocker admitted"),
        handle
            .submit(query.clone(), Statistic::ExpectedCount)
            .expect("blocker admitted"),
    ];
    let pinned = Instant::now();
    while handle.stats().queue_depth > 0 && pinned.elapsed() < Duration::from_secs(30) {
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut overshoots_ms: Vec<f64> = Vec::with_capacity(probes);
    for _ in 0..probes {
        let Ok(ticket) =
            handle.submit_with_deadline(query.clone(), Statistic::Probability, deadline)
        else {
            continue;
        };
        let start = Instant::now();
        // With both workers pinned the probe expires; if a blocker
        // finished early the probe just answers and measures nothing.
        if ticket.wait_timeout(deadline).is_err() {
            let overshoot = start.elapsed().saturating_sub(deadline);
            overshoots_ms.push(overshoot.as_secs_f64() * 1e3);
        }
    }
    overshoots_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    // Jitter baseline: how late a plain sleep of the same length wakes.
    let mut sleep_jitter_ms: f64 = 0.0;
    for _ in 0..probes.max(2) {
        let start = Instant::now();
        std::thread::sleep(deadline);
        let late = start.elapsed().saturating_sub(deadline);
        sleep_jitter_ms = sleep_jitter_ms.max(late.as_secs_f64() * 1e3);
    }

    // Phase 3: the queue still holds the abandoned probes; a burst of
    // submits past the bound is refused immediately.
    let mut admitted = Vec::new();
    let mut burst_rejected = 0u64;
    for _ in 0..STORM_CLIENTS {
        match handle.submit(query.clone(), Statistic::Probability) {
            Ok(ticket) => admitted.push(ticket),
            Err(ProbDbError::Overloaded) => burst_rejected += 1,
            Err(e) => panic!("burst submit: {e}"),
        }
    }
    drop(admitted);
    for blocker in blockers {
        blocker.wait().expect("blocker answers");
    }
    let stats = server.stats();
    server.shutdown();

    let coalesced_share = storm_stats.coalesced as f64 / storm_requests as f64;
    let _ = writeln!(out, "  \"overload\": {{");
    let _ = writeln!(
        out,
        "    \"clients\": {STORM_CLIENTS}, \"workers\": {OVERLOAD_WORKERS}, \
         \"queue_bound\": {QUEUE_BOUND}, \"mc_samples\": {mc_samples},"
    );
    let _ = writeln!(
        out,
        "    \"storm\": {{\"requests\": {storm_requests}, \"p50_ns\": {:.0}, \
         \"p99_ns\": {:.0}, \"qps\": {:.1}, \"coalesced\": {}, \"coalesced_share\": {:.3}}},",
        percentile(&samples, 0.5),
        percentile(&samples, 0.99),
        storm_requests as f64 / storm_wall,
        storm_stats.coalesced,
        coalesced_share
    );
    let _ = writeln!(
        out,
        "    \"admission\": {{\"burst\": {STORM_CLIENTS}, \"burst_rejected\": {burst_rejected}, \
         \"rejected_total\": {}}},",
        stats.rejected
    );
    let _ = writeln!(
        out,
        "    \"deadline\": {{\"deadline_ms\": {:.1}, \"probes_expired\": {}, \
         \"overshoot_p99_ms\": {:.3}, \"sleep_jitter_ms\": {:.3}}},",
        deadline.as_secs_f64() * 1e3,
        overshoots_ms.len(),
        if overshoots_ms.is_empty() {
            0.0
        } else {
            percentile(&overshoots_ms, 0.99)
        },
        sleep_jitter_ms
    );
    let _ = writeln!(
        out,
        "    \"totals\": {{\"queries\": {}, \"expired\": {}, \"abandoned\": {}, \"errors\": {}}}",
        stats.queries, stats.expired, stats.abandoned, stats.errors
    );
    let _ = writeln!(out, "  }},");
    if !smoke {
        assert!(
            stats.rejected >= 1,
            "overload scenario produced no admission rejections"
        );
        assert!(
            coalesced_share > 0.0,
            "identical-shape storm never coalesced"
        );
    }
}

fn emit_serve_report(_c: &mut Criterion) {
    let smoke = smoke_mode();
    let (stations, certain, blocks) = if smoke {
        (16, 200, 200)
    } else {
        (256, 5_000, 20_000)
    };
    let iters = if smoke { 5 } else { 300 };
    let cold_iters = if smoke { 2 } else { 8 };

    let catalog = synthetic_join_catalog(stations, certain, blocks, 3, 42);
    let query = join_query();

    let mut out = String::from("{\n");
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let _ = writeln!(out, "  \"host_cores\": {cores},");
    let _ = writeln!(out, "  \"workers\": {WORKERS},");
    let _ = writeln!(
        out,
        "  \"fixture\": {{\"stations\": {stations}, \"certain\": {certain}, \
         \"blocks\": {blocks}, \"iters_per_client\": {iters}}},"
    );

    // Cold: plan + bind through the serving path. The pool and snapshot
    // are reused; only the shared plan cache is dropped between samples.
    let server = ProbDbServer::with_config(catalog.clone(), serve_config());
    let handle = server.handle();
    let mut cold: Vec<f64> = (0..cold_iters)
        .map(|_| {
            server.plan_cache().clear();
            let start = Instant::now();
            std::hint::black_box(
                handle
                    .evaluate(&query, Statistic::Probability)
                    .expect("cold serve"),
            );
            start.elapsed().as_nanos() as f64
        })
        .collect();
    cold.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let _ = writeln!(
        out,
        "  \"cold\": {{\"p50_ns\": {:.0}, \"p99_ns\": {:.0}}},",
        percentile(&cold, 0.5),
        percentile(&cold, 0.99)
    );

    // Warm ladder: the plan stays cached and memoized; every request is
    // queue + snapshot pin + cache hit + fold.
    handle
        .evaluate(&query, Statistic::Probability)
        .expect("warm-up");
    let _ = writeln!(out, "  \"warm\": {{");
    for (i, &clients) in CLIENTS.iter().enumerate() {
        let (samples, qps) = client_section(&server, &query, clients, iters);
        write_section(
            &mut out,
            &format!("clients_{clients}"),
            &samples,
            qps,
            "",
            i + 1 == CLIENTS.len(),
        );
    }
    let _ = writeln!(out, "  }},");
    let warm_stats = server.stats();
    server.shutdown();

    // Read-while-ingest: a fresh server per client count (copy-on-write
    // makes the catalog clone cheap), a writer publishing one-block
    // upserts on a fixed cadence while the clients hammer the join.
    let _ = writeln!(out, "  \"read_while_ingest\": {{");
    let mut ingest_stats: Option<ServerStats> = None;
    for (i, &clients) in CLIENTS.iter().enumerate() {
        let server = ProbDbServer::with_config(catalog.clone(), serve_config());
        server
            .handle()
            .evaluate(&query, Statistic::Probability)
            .expect("warm-up");
        let stop = AtomicBool::new(false);
        let next_key = AtomicUsize::new(blocks);
        let (samples, qps) = std::thread::scope(|s| {
            let writer = s.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    let key = next_key.fetch_add(1, Ordering::Relaxed);
                    let block = ingest_block(key, stations);
                    server.update(|catalog| {
                        catalog
                            .get_mut("sensors")
                            .expect("sensors")
                            .push_block(block)
                            .expect("arity ok");
                    });
                    std::thread::sleep(Duration::from_micros(500));
                }
            });
            let section = client_section(&server, &query, clients, iters);
            stop.store(true, Ordering::Relaxed);
            writer.join().expect("writer thread");
            section
        });
        let stats = server.stats();
        write_section(
            &mut out,
            &format!("clients_{clients}"),
            &samples,
            qps,
            &format!(", \"publishes\": {}", stats.publishes),
            i + 1 == CLIENTS.len(),
        );
        if !smoke {
            assert!(
                stats.publishes > 0,
                "read-while-ingest measured no publishes at {clients} clients"
            );
        }
        ingest_stats = Some(stats);
        server.shutdown();
    }
    let _ = writeln!(out, "  }},");

    overload_section(&mut out, smoke);

    // Cumulative counters: warm ladder totals, plus the last ingest
    // section's cache and lag shape.
    let ingest = ingest_stats.expect("at least one ingest section ran");
    let _ = writeln!(
        out,
        "  \"totals\": {{\"warm_queries\": {}, \"warm_cache_hits\": {}, \"warm_hot_hits\": {}, \
         \"warm_coalesced\": {}, \"warm_max_queue_depth\": {}, \"ingest_queries\": {}, \
         \"ingest_cache_hits\": {}, \
         \"ingest_lagged_reads\": {}, \"ingest_max_lag\": {}, \"ingest_reg_patches\": {}, \
         \"ingest_reg_rebinds\": {}, \"errors\": {}}}\n}}",
        warm_stats.queries,
        warm_stats.cache_hits,
        warm_stats.hot_hits,
        warm_stats.coalesced,
        warm_stats.max_queue_depth,
        ingest.queries,
        ingest.cache_hits,
        ingest.lagged_reads,
        ingest.max_lag,
        ingest.plan_cache.reg_patches,
        ingest.plan_cache.reg_rebinds,
        warm_stats.errors + ingest.errors
    );
    assert_eq!(warm_stats.errors + ingest.errors, 0, "served errors");
    if !smoke {
        assert!(
            warm_stats.cache_hits > 0,
            "warm ladder never hit the shared plan cache"
        );
    }

    if smoke {
        println!("serve bench smoke mode: BENCH_serve.json left untouched");
        print!("{out}");
        return;
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    if let Err(err) = std::fs::write(path, &out) {
        eprintln!("BENCH_serve.json not written: {err}");
    } else {
        println!("wrote {path}");
        print!("{out}");
    }
}

criterion_group!(benches, emit_serve_report);
criterion_main!(benches);
