//! Bench: the learning subsystem.
//!
//! Self-timed reporter (the vendored criterion shim has no programmatic
//! timing hooks) written to `BENCH_learn.json` at the repo root:
//!
//! - **weight fit**: wall time of [`fit_ensemble_weights`] (EM over the
//!   four paper engines) on attribute-masked held-out tuples, with the
//!   instance count so the per-instance cost is recoverable;
//! - **gradient pass**: `probability_with_gradient` versus the
//!   forward-only `probability` on the same fresh engine, for a
//!   single-relation selection and a hierarchical join — the reverse
//!   sweep must stay within a small constant factor of the forward
//!   evaluation it mirrors (floored in `.github/bench-baselines.json`);
//! - **mass fit**: per-epoch wall time of [`fit_block_masses`] on a
//!   labeled training set.
//!
//! Under `--test` (CI smoke) the fixtures shrink to seconds of work and
//! the JSON is not rewritten.

use criterion::{criterion_group, criterion_main, Criterion};
use mrsl_bench::{learned_model, synthetic_join_catalog};
use mrsl_core::{GibbsConfig, VotingConfig};
use mrsl_learn::{
    fit_block_masses, fit_ensemble_weights, standard_members, LabeledQuery, MassFitConfig,
    WeightStrategy,
};
use mrsl_probdb::{Catalog, CatalogEngine, Predicate, Query};
use mrsl_relation::{AttrId, ValueId};
use mrsl_util::derive_seed;
use std::fmt::Write as _;
use std::time::Instant;

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test" || a == "--list")
}

/// Sorted per-iteration wall-clock nanoseconds of `f` (after one untimed
/// warm-up call).
fn sample_ns<F: FnMut()>(iters: usize, mut f: F) -> Vec<f64> {
    f();
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// σ[kind ∈ {0,1}](sensors) ⨝ σ[level ≥ 2](readings) — liftable, so the
/// gradient pass covers the lifted multi-term product too.
fn join_query() -> Query {
    Query::scan("sensors")
        .filter(Predicate::is_in(AttrId(1), [ValueId(0), ValueId(1)]))
        .join_on(
            Query::scan("readings").filter(Predicate::range(AttrId(1), ValueId(2), ValueId(3))),
            [(AttrId(0), AttrId(0))],
        )
}

/// Forward-vs-gradient latencies on a fresh engine per call (the gradient
/// path plans from scratch; so must its baseline for an honest ratio).
fn gradient_section(
    out: &mut String,
    name: &str,
    catalog: &Catalog,
    q: &Query,
    iters: usize,
) -> f64 {
    let forward = sample_ns(iters, || {
        let engine = CatalogEngine::new(catalog);
        std::hint::black_box(engine.probability(q).expect("forward"));
    });
    let gradient = sample_ns(iters, || {
        let engine = CatalogEngine::new(catalog);
        std::hint::black_box(engine.probability_with_gradient(q).expect("gradient"));
    });
    let forward_p50 = percentile(&forward, 0.5);
    let gradient_p50 = percentile(&gradient, 0.5);
    let overhead = gradient_p50 / forward_p50;
    let _ = writeln!(
        out,
        "  \"{name}\": {{\"forward_p50_ns\": {forward_p50:.0}, \
         \"gradient_p50_ns\": {gradient_p50:.0}, \"overhead\": {overhead:.2}}},"
    );
    overhead
}

fn emit_learn_report(_c: &mut Criterion) {
    let smoke = smoke_mode();
    let (train_n, holdout_n, fit_iters) = if smoke { (300, 6, 1) } else { (4_000, 60, 5) };
    let (stations, certain, blocks, grad_iters) = if smoke {
        (8, 40, 60, 2)
    } else {
        (64, 2_000, 4_000, 20)
    };
    let (epochs, epoch_iters) = if smoke { (3, 1) } else { (20, 5) };

    let mut out = String::from("{\n");
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let _ = writeln!(out, "  \"host_cores\": {cores},");
    let _ = writeln!(
        out,
        "  \"fixture\": {{\"train\": {train_n}, \"holdout\": {holdout_n}, \
         \"blocks\": {blocks}, \"mass_fit_epochs\": {epochs}}},"
    );

    // --- Weight fitting wall time. ------------------------------------
    let (bn, model) = learned_model("BN9", train_n, 0.005, 42);
    let holdout = mrsl_bayesnet::sampler::sample_dataset(&bn, holdout_n, derive_seed(42, &[2]));
    let gibbs = GibbsConfig {
        burn_in: 30,
        samples: 300,
        voting: VotingConfig::best_averaged(),
    };
    let mut instances = 0;
    let mut em_iterations = 0;
    let fit_times = sample_ns(fit_iters, || {
        let (_, report) = fit_ensemble_weights(
            &model,
            &holdout,
            VotingConfig::best_averaged(),
            standard_members(&gibbs),
            WeightStrategy::Em {
                max_iters: 100,
                tol: 1e-9,
            },
            9,
        )
        .expect("holdout non-empty");
        instances = report.instances;
        em_iterations = report.em_iterations;
    });
    let _ = writeln!(
        out,
        "  \"weight_fit\": {{\"fit_ms_p50\": {:.2}, \"instances\": {instances}, \
         \"members\": 4, \"em_iterations\": {em_iterations}}},",
        percentile(&fit_times, 0.5) / 1e6
    );

    // --- Gradient-pass overhead vs forward-only evaluation. -----------
    let catalog = synthetic_join_catalog(stations, certain, blocks, 3, 42);
    let selection = Query::scan("sensors").filter(Predicate::eq(AttrId(1), ValueId(0)));
    let sel_overhead = gradient_section(
        &mut out,
        "gradient_selection",
        &catalog,
        &selection,
        grad_iters,
    );
    let join_overhead = gradient_section(
        &mut out,
        "gradient_join",
        &catalog,
        &join_query(),
        grad_iters,
    );

    // --- Mass-fit epoch wall time. ------------------------------------
    let labeled: Vec<LabeledQuery> = (0..3u16)
        .map(|v| {
            let q = Query::scan("sensors").filter(Predicate::eq(AttrId(1), ValueId(v)));
            let target = CatalogEngine::new(&catalog)
                .probability(&q)
                .expect("liftable")
                .0;
            LabeledQuery::new(q, (target - 0.05).max(0.01))
        })
        .collect();
    let epoch_times = sample_ns(epoch_iters, || {
        let mut fit_catalog = catalog.clone();
        let report = fit_block_masses(
            &mut fit_catalog,
            &labeled,
            &[],
            &MassFitConfig {
                epochs,
                learning_rate: 0.02,
                ..MassFitConfig::default()
            },
        )
        .expect("selections are liftable");
        std::hint::black_box(report.final_train_loss());
    });
    let _ = writeln!(
        out,
        "  \"mass_fit\": {{\"epoch_ms_p50\": {:.2}, \"train_queries\": {}, \"epochs\": {epochs}}}\n}}",
        percentile(&epoch_times, 0.5) / 1e6 / epochs as f64,
        labeled.len()
    );

    println!(
        "gradient overhead: selection {sel_overhead:.2}x, join {join_overhead:.2}x (vs forward-only)"
    );
    if smoke {
        println!("learn bench smoke mode: BENCH_learn.json left untouched");
        print!("{out}");
        return;
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_learn.json");
    if let Err(err) = std::fs::write(path, &out) {
        eprintln!("BENCH_learn.json not written: {err}");
    } else {
        println!("wrote {path}");
        print!("{out}");
    }
}

criterion_group!(benches, emit_learn_report);
criterion_main!(benches);
