//! Bench: tuple-DAG vs tuple-at-a-time workload sampling (Fig. 11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mrsl_bench::{learned_model, workload};
use mrsl_core::{
    infer_batch, workload_engine, GibbsConfig, TupleDag, VotingConfig, WorkloadStrategy,
};

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_workload_strategies");
    group.sample_size(10);
    let (bn, model) = learned_model("BN9", 6_000, 0.005, 9);
    let config = GibbsConfig {
        burn_in: 100,
        samples: 500,
        voting: VotingConfig::best_averaged(),
    };
    for &size in &[100usize, 300] {
        let tuples = workload(&bn, size, 5, 17);
        group.throughput(Throughput::Elements(size as u64));
        for strategy in [WorkloadStrategy::TupleAtATime, WorkloadStrategy::TupleDag] {
            let label = match strategy {
                WorkloadStrategy::TupleAtATime => format!("tuple_at_a_time_{size}"),
                WorkloadStrategy::TupleDag => format!("tuple_dag_{size}"),
            };
            let engine = workload_engine(strategy, &config);
            group.bench_with_input(BenchmarkId::from_parameter(label), &tuples, |b, tuples| {
                b.iter(|| {
                    std::hint::black_box(infer_batch(
                        &model,
                        tuples,
                        engine.as_ref(),
                        config.voting,
                        3,
                    ))
                })
            });
        }
    }
    group.finish();
}

fn bench_dag_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("tuple_dag_construction");
    group.sample_size(20);
    let (bn, _model) = learned_model("BN18", 1_000, 0.05, 9);
    for &size in &[200usize, 1_000] {
        let tuples = workload(&bn, size, 9, 23);
        group.throughput(Throughput::Elements(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &tuples, |b, tuples| {
            b.iter(|| std::hint::black_box(TupleDag::build(tuples)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies, bench_dag_construction);
criterion_main!(benches);
