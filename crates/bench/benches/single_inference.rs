//! Bench: single-attribute inference (regenerates the Fig. 9 trend —
//! per-tuple inference time as a function of model size — and ablates the
//! voter choice / voting scheme, which the paper found to have "no
//! measurable effect" on inference time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mrsl_bench::{learned_model, workload};
use mrsl_core::{InferContext, VotingConfig};

fn bench_vs_model_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_inference_vs_model_size");
    group.sample_size(20);
    // Networks of increasing model size at θ = 0.002.
    for name in ["BN8", "BN9", "BN14", "BN17"] {
        let (bn, model) = learned_model(name, 10_000, 0.002, 11);
        let tuples = workload(&bn, 500, 1, 3);
        group.throughput(Throughput::Elements(tuples.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{name}_size_{}", model.size())),
            &tuples,
            |b, tuples| {
                let mut ctx = InferContext::new(&model, VotingConfig::best_averaged(), 0);
                b.iter(|| {
                    for t in tuples {
                        let attr = t.missing_mask().iter().next().expect("one missing");
                        std::hint::black_box(ctx.vote_single(t, attr));
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_voting_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("voting_method_ablation");
    group.sample_size(20);
    let (bn, model) = learned_model("BN9", 10_000, 0.002, 11);
    let tuples = workload(&bn, 500, 1, 3);
    for voting in VotingConfig::table2_order() {
        group.bench_with_input(
            BenchmarkId::from_parameter(voting.label().replace(' ', "_")),
            &voting,
            |b, voting| {
                let mut ctx = InferContext::new(&model, *voting, 0);
                b.iter(|| {
                    for t in &tuples {
                        let attr = t.missing_mask().iter().next().expect("one missing");
                        std::hint::black_box(ctx.vote_single(t, attr));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_vs_model_size, bench_voting_methods);
criterion_main!(benches);
