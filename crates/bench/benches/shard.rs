//! Bench: sharded parallel plan execution.
//!
//! Self-timed reporter (the vendored criterion shim has no programmatic
//! timing hooks) written to `BENCH_shard.json` at the repo root:
//!
//! - warm/cold p50/p99 latency and warm queries/sec for the hierarchical
//!   join probability at 1/2/4/8 rayon threads on a 100k-block catalog,
//!   plus a pure-sequential row (`shards = 1`, no pool) so the
//!   sequential-vs-1-thread-rayon sharding overhead is visible;
//! - the dissociation bracket on a 100k-block chain at the same thread
//!   counts;
//! - warm expected_count versus the interpreter's mass join (the memoized
//!   mass tables must keep the VM ahead — asserted, satellite of the
//!   `join_2k_blocks` 0.98x regression fix);
//! - incremental maintenance: warm latency after a single-block upsert
//!   (register patch) versus a cold bind, with the cache's
//!   `reg_patches`/`reg_rebinds` counters.
//!
//! `host_cores` records the machine's parallelism: thread counts above it
//! time the scheduling overhead honestly rather than projecting speedups.
//! Under `--test` (CI smoke) the fixtures shrink to seconds of work and
//! the JSON is not rewritten.

use criterion::{criterion_group, criterion_main, Criterion};
use mrsl_bench::{synthetic_chain_catalog, synthetic_join_catalog};
use mrsl_probdb::{Catalog, CatalogEngine, Predicate, Query, QueryEngineConfig, Statistic};
use mrsl_relation::{AttrId, ValueId};
use std::fmt::Write as _;
use std::time::Instant;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test" || a == "--list")
}

fn vm_config(shards: usize) -> QueryEngineConfig {
    QueryEngineConfig {
        bounds_tolerance: 1.0,
        shards,
        ..QueryEngineConfig::default()
    }
}

fn interp_config() -> QueryEngineConfig {
    QueryEngineConfig {
        compile_plans: false,
        bounds_tolerance: 1.0,
        ..QueryEngineConfig::default()
    }
}

/// σ[kind ∈ {0,1}](sensors) ⨝ σ[level ≥ 2](readings) on the station.
fn join_query() -> Query {
    Query::scan("sensors")
        .filter(Predicate::is_in(AttrId(1), [ValueId(0), ValueId(1)]))
        .join_on(
            Query::scan("readings").filter(Predicate::range(AttrId(1), ValueId(2), ValueId(3))),
            [(AttrId(0), AttrId(0))],
        )
}

/// `σ[ok] R(x) ⨝ σ[ok] S(x,y) ⨝ σ[ok] T(y)` — unsafe, dissociable.
fn chain_query() -> Query {
    let ok2 = Predicate::eq(AttrId(1), ValueId(1));
    let ok3 = Predicate::eq(AttrId(2), ValueId(1));
    Query::scan("r")
        .filter(ok2.clone())
        .join_on(Query::scan("s").filter(ok3), [(AttrId(0), AttrId(0))])
        .join_on_rel("s", Query::scan("t").filter(ok2), [(AttrId(1), AttrId(0))])
}

/// Sorted per-iteration wall-clock nanoseconds of `f` (after one untimed
/// warm-up call).
fn sample_ns<F: FnMut()>(iters: usize, mut f: F) -> Vec<f64> {
    f();
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

struct LatencyRow {
    cold_p50_ns: f64,
    cold_p99_ns: f64,
    warm_p50_ns: f64,
    warm_p99_ns: f64,
    warm_qps: f64,
}

/// Times one (catalog, query, statistic) pair: cold = fresh engine per
/// call (plan + bind + fold), warm = shared engine cache hits.
fn latency_row(
    catalog: &Catalog,
    query: &Query,
    stat: Statistic,
    config: QueryEngineConfig,
    warm_iters: usize,
    cold_iters: usize,
) -> LatencyRow {
    let warm_engine = CatalogEngine::with_config(catalog, config);
    let warm = sample_ns(warm_iters, || {
        std::hint::black_box(warm_engine.evaluate(query, stat).expect("warm"));
    });
    let cold = sample_ns(cold_iters, || {
        let engine = CatalogEngine::with_config(catalog, config);
        std::hint::black_box(engine.evaluate(query, stat).expect("cold"));
    });
    let warm_mean = warm.iter().sum::<f64>() / warm.len() as f64;
    LatencyRow {
        cold_p50_ns: percentile(&cold, 0.5),
        cold_p99_ns: percentile(&cold, 0.99),
        warm_p50_ns: percentile(&warm, 0.5),
        warm_p99_ns: percentile(&warm, 0.99),
        warm_qps: 1e9 / warm_mean,
    }
}

fn write_row(out: &mut String, key: &str, row: &LatencyRow, last: bool) {
    let _ = writeln!(
        out,
        "    \"{key}\": {{\"cold_p50_ns\": {:.0}, \"cold_p99_ns\": {:.0}, \
         \"warm_p50_ns\": {:.0}, \"warm_p99_ns\": {:.0}, \"warm_qps\": {:.1}}}{}",
        row.cold_p50_ns,
        row.cold_p99_ns,
        row.warm_p50_ns,
        row.warm_p99_ns,
        row.warm_qps,
        if last { "" } else { "," }
    );
}

fn in_pool<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool builds")
        .install(f)
}

/// Per-thread-count latency section: a pure-sequential baseline
/// (`shards = 1`, no pool) and the sharded fold at each pool size.
fn thread_section(
    out: &mut String,
    name: &str,
    catalog: &Catalog,
    query: &Query,
    stat: Statistic,
    warm_iters: usize,
    cold_iters: usize,
) {
    let _ = writeln!(out, "  \"{name}\": {{");
    let seq = latency_row(catalog, query, stat, vm_config(1), warm_iters, cold_iters);
    write_row(out, "sequential", &seq, false);
    for (i, &threads) in THREADS.iter().enumerate() {
        let row = in_pool(threads, || {
            latency_row(catalog, query, stat, vm_config(16), warm_iters, cold_iters)
        });
        write_row(
            out,
            &format!("threads_{threads}"),
            &row,
            i + 1 == THREADS.len(),
        );
    }
    let _ = writeln!(out, "  }},");
}

fn emit_shard_report(_c: &mut Criterion) {
    let smoke = smoke_mode();
    // 100k uncertain blocks (3 alternatives each) plus certain rows in
    // the join catalog; the chain splits 100k blocks over r/s/t.
    let (stations, certain, blocks) = if smoke {
        (16, 500, 300)
    } else {
        (512, 20_000, 100_000)
    };
    let (chain_keys, chain_blocks) = if smoke { (16, 200) } else { (256, 25_000) };
    let (warm_iters, cold_iters) = if smoke { (2, 1) } else { (30, 8) };

    let join_catalog = synthetic_join_catalog(stations, certain, blocks, 3, 42);
    let join = join_query();
    let chain_catalog = synthetic_chain_catalog(chain_keys, chain_blocks, 42);
    let chain = chain_query();

    let mut out = String::from("{\n");
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let _ = writeln!(out, "  \"host_cores\": {cores},");
    let _ = writeln!(
        out,
        "  \"fixture\": {{\"stations\": {stations}, \"certain\": {certain}, \
         \"blocks\": {blocks}, \"chain_blocks\": {}}},",
        4 * chain_blocks
    );

    thread_section(
        &mut out,
        "join_probability",
        &join_catalog,
        &join,
        Statistic::Probability,
        warm_iters,
        cold_iters,
    );
    thread_section(
        &mut out,
        "chain_bounds",
        &chain_catalog,
        &chain,
        Statistic::ProbabilityBounds,
        warm_iters,
        cold_iters,
    );

    // Warm expected_count: the memoized mass tables must beat the
    // interpreter's per-call mass join (the join_2k_blocks regression).
    let interp = CatalogEngine::with_config(&join_catalog, interp_config());
    let interp_ec = sample_ns(warm_iters, || {
        std::hint::black_box(
            interp
                .evaluate(&join, Statistic::ExpectedCount)
                .expect("interp"),
        );
    });
    let vm = CatalogEngine::with_config(&join_catalog, vm_config(0));
    let vm_ec = sample_ns(warm_iters, || {
        std::hint::black_box(vm.evaluate(&join, Statistic::ExpectedCount).expect("vm"));
    });
    let interp_p50 = percentile(&interp_ec, 0.5);
    let vm_p50 = percentile(&vm_ec, 0.5);
    let speedup = interp_p50 / vm_p50;
    let _ = writeln!(
        out,
        "  \"expected_count\": {{\"interpreter_p50_ns\": {interp_p50:.0}, \
         \"vm_p50_ns\": {vm_p50:.0}, \"speedup\": {speedup:.2}}},"
    );
    if !smoke {
        assert!(
            speedup > 1.0,
            "warm expected_count regressed vs the interpreter: {speedup:.2}x"
        );
    }

    // Auto-shard heuristic on a sub-threshold binding: `shards = 0` must
    // stay sequential inside a wide pool instead of paying the fan-out
    // (the 1.4µs → 393µs regression this section guards). Measured on a
    // dedicated small catalog so the binding sits under the auto-shard
    // row threshold.
    let (small_stations, small_certain, small_blocks) =
        if smoke { (8, 50, 60) } else { (64, 500, 1_000) };
    let small_catalog = synthetic_join_catalog(small_stations, small_certain, small_blocks, 3, 42);
    let small_seq = latency_row(
        &small_catalog,
        &join,
        Statistic::Probability,
        vm_config(1),
        warm_iters,
        cold_iters,
    );
    let (small_auto, small_forced) = in_pool(8, || {
        (
            latency_row(
                &small_catalog,
                &join,
                Statistic::Probability,
                vm_config(0),
                warm_iters,
                cold_iters,
            ),
            latency_row(
                &small_catalog,
                &join,
                Statistic::Probability,
                vm_config(16),
                warm_iters,
                cold_iters,
            ),
        )
    });
    let _ = writeln!(out, "  \"auto_small_binding\": {{");
    write_row(&mut out, "sequential", &small_seq, false);
    write_row(&mut out, "auto_8_threads", &small_auto, false);
    write_row(&mut out, "forced_16_shards_8_threads", &small_forced, true);
    let _ = writeln!(out, "  }},");
    if !smoke {
        // Generous margin: auto must track the sequential fold, not the
        // forced fan-out (historically ~300x slower here).
        assert!(
            small_auto.warm_p50_ns <= small_seq.warm_p50_ns * 20.0,
            "auto sharding regressed on a small binding: auto {:.0}ns vs sequential {:.0}ns",
            small_auto.warm_p50_ns,
            small_seq.warm_p50_ns
        );
    }

    // Incremental maintenance: a one-block upsert patches one shard of
    // one term; a cold engine re-binds everything from scratch.
    let mut patched_catalog = synthetic_join_catalog(stations, certain, blocks, 3, 42);
    let engine = CatalogEngine::with_config(&patched_catalog, vm_config(16));
    engine.probability(&join).expect("cold");
    engine.probability(&join).expect("memoizing warm hit");
    let cache = engine.plan_cache().clone();
    drop(engine);
    let mut next_key = blocks;
    let patched = sample_ns(warm_iters.min(10), || {
        use mrsl_probdb::{Alternative, Block};
        use mrsl_relation::CompleteTuple;
        let station = (next_key % stations) as u16;
        let block = Block::normalized(
            next_key,
            vec![
                Alternative {
                    tuple: CompleteTuple::from_values(vec![station, 0, 0]),
                    prob: 1.0,
                },
                Alternative {
                    tuple: CompleteTuple::from_values(vec![station, 1, 1]),
                    prob: 1.0,
                },
            ],
        )
        .expect("valid block");
        next_key += 1;
        patched_catalog
            .get_mut("sensors")
            .expect("sensors")
            .push_block(block)
            .expect("arity ok");
        let warm = CatalogEngine::with_plan_cache(&patched_catalog, vm_config(16), cache.clone());
        std::hint::black_box(warm.probability(&join).expect("patched warm"));
    });
    let cold_bind = sample_ns(warm_iters.min(10), || {
        let engine = CatalogEngine::with_config(&patched_catalog, vm_config(16));
        std::hint::black_box(engine.probability(&join).expect("cold bind"));
    });
    let stats = cache.stats();
    let _ = writeln!(
        out,
        "  \"incremental\": {{\"patched_warm_p50_ns\": {:.0}, \"cold_bind_p50_ns\": {:.0}, \
         \"reg_patches\": {}, \"reg_rebinds\": {}}}\n}}",
        percentile(&patched, 0.5),
        percentile(&cold_bind, 0.5),
        stats.reg_patches,
        stats.reg_rebinds
    );

    if smoke {
        println!("shard bench smoke mode: BENCH_shard.json left untouched");
        print!("{out}");
        return;
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard.json");
    if let Err(err) = std::fs::write(path, &out) {
        eprintln!("BENCH_shard.json not written: {err}");
    } else {
        println!("wrote {path}");
        print!("{out}");
    }
}

criterion_group!(benches, emit_shard_report);
criterion_main!(benches);
