//! Bench: multi-attribute Gibbs inference per tuple (supports Fig. 10's
//! cost axis — sampling cost grows linearly in samples per tuple — and
//! ablates the number of missing attributes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mrsl_bench::{learned_model, workload};
use mrsl_core::{GibbsSampler, InferContext, InferenceEngine, VotingConfig};

fn bench_samples_per_tuple(c: &mut Criterion) {
    let mut group = c.benchmark_group("gibbs_samples_per_tuple");
    group.sample_size(10);
    let (bn, model) = learned_model("BN9", 8_000, 0.005, 5);
    let tuples = workload(&bn, 8, 3, 1);
    for &n in &[100usize, 500, 2_000] {
        let engine = GibbsSampler {
            burn_in: 100,
            samples: n,
        };
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &engine, |b, engine| {
            let mut ctx = InferContext::new(&model, VotingConfig::best_averaged(), 0);
            b.iter(|| {
                for (i, t) in tuples.iter().enumerate() {
                    ctx.set_seed(i as u64);
                    std::hint::black_box(engine.estimate(&mut ctx, t));
                }
            })
        });
    }
    group.finish();
}

fn bench_missing_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("gibbs_vs_missing_attrs");
    group.sample_size(10);
    let (bn, model) = learned_model("BN18", 8_000, 0.005, 5);
    let engine = GibbsSampler {
        burn_in: 100,
        samples: 500,
    };
    for &k in &[2usize, 4, 6] {
        // Build tuples with exactly k missing attributes.
        let tuples: Vec<_> = workload(&bn, 200, k, k as u64)
            .into_iter()
            .filter(|t| t.missing_mask().count() == k)
            .take(5)
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(k), &tuples, |b, tuples| {
            let mut ctx = InferContext::new(&model, VotingConfig::best_averaged(), 0);
            b.iter(|| {
                for (i, t) in tuples.iter().enumerate() {
                    ctx.set_seed(i as u64);
                    std::hint::black_box(engine.estimate(&mut ctx, t));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_samples_per_tuple, bench_missing_count);
criterion_main!(benches);
