//! Bench: multi-attribute Gibbs inference per tuple (supports Fig. 10's
//! cost axis — sampling cost grows linearly in samples per tuple — and
//! ablates the number of missing attributes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mrsl_bench::{learned_model, workload};
use mrsl_core::{infer_joint, GibbsConfig, VotingConfig};

fn bench_samples_per_tuple(c: &mut Criterion) {
    let mut group = c.benchmark_group("gibbs_samples_per_tuple");
    group.sample_size(10);
    let (bn, model) = learned_model("BN9", 8_000, 0.005, 5);
    let tuples = workload(&bn, 8, 3, 1);
    for &n in &[100usize, 500, 2_000] {
        let config = GibbsConfig {
            burn_in: 100,
            samples: n,
            voting: VotingConfig::best_averaged(),
        };
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &config, |b, config| {
            b.iter(|| {
                for (i, t) in tuples.iter().enumerate() {
                    std::hint::black_box(infer_joint(&model, t, config, i as u64));
                }
            })
        });
    }
    group.finish();
}

fn bench_missing_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("gibbs_vs_missing_attrs");
    group.sample_size(10);
    let (bn, model) = learned_model("BN18", 8_000, 0.005, 5);
    let config = GibbsConfig {
        burn_in: 100,
        samples: 500,
        voting: VotingConfig::best_averaged(),
    };
    for &k in &[2usize, 4, 6] {
        // Build tuples with exactly k missing attributes.
        let tuples: Vec<_> = workload(&bn, 200, k, k as u64)
            .into_iter()
            .filter(|t| t.missing_mask().count() == k)
            .take(5)
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(k), &tuples, |b, tuples| {
            b.iter(|| {
                for (i, t) in tuples.iter().enumerate() {
                    std::hint::black_box(infer_joint(&model, t, &config, i as u64));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_samples_per_tuple, bench_missing_count);
criterion_main!(benches);
