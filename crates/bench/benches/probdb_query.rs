//! Bench: query evaluation on the derived probabilistic database —
//! exact BID evaluation vs Monte-Carlo world sampling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrsl_bench::{network, workload};
use mrsl_core::{derive_probabilistic_db, DeriveConfig, GibbsConfig, LearnConfig};
use mrsl_probdb::montecarlo::mc_expected_count;
use mrsl_probdb::query::{count_distribution, expected_count, Predicate};
use mrsl_probdb::ProbDb;
use mrsl_relation::{AttrId, Relation, ValueId};

fn derived_db(blocks: usize) -> ProbDb {
    let bn = network("BN9", 5);
    let mut rel = Relation::new(bn.schema().clone());
    for p in mrsl_bayesnet::sampler::sample_dataset(&bn, 2_000, 1) {
        rel.push_complete(p).expect("arity ok");
    }
    for t in workload(&bn, blocks, 2, 3) {
        rel.push(t).expect("arity ok");
    }
    let config = DeriveConfig {
        learn: LearnConfig {
            support_threshold: 0.01,
            max_itemsets: 1000,
        },
        gibbs: GibbsConfig {
            burn_in: 50,
            samples: 300,
            ..GibbsConfig::default()
        },
        ..DeriveConfig::default()
    };
    derive_probabilistic_db(&rel, &config).db
}

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("probdb_queries");
    group.sample_size(20);
    let db = derived_db(500);
    let pred = Predicate::any().and_eq(AttrId(0), ValueId(1));

    group.bench_function("exact_expected_count", |b| {
        b.iter(|| std::hint::black_box(expected_count(&db, &pred)))
    });
    group.bench_function("exact_count_distribution", |b| {
        b.iter(|| std::hint::black_box(count_distribution(&db, &pred)))
    });
    for &samples in &[1_000usize, 10_000] {
        group.bench_with_input(
            BenchmarkId::new("monte_carlo_expected_count", samples),
            &samples,
            |b, &samples| {
                b.iter(|| {
                    std::hint::black_box(mc_expected_count(&db, &pred, samples, 3).expect("n > 0"))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
