//! Gamma and Dirichlet sampling for random CPT instantiation.
//!
//! The experimental framework "instantiates network parameters by randomly
//! populating conditional probability distributions" (paper §VI-A). We make
//! that precise by drawing each CPT row from a symmetric Dirichlet(α):
//!
//! * α = 1 is the uniform distribution over the probability simplex;
//! * α < 1 produces skewed rows (a clear most-probable value), which makes
//!   top-1 accuracy meaningful;
//! * α > 1 produces near-uniform rows.
//!
//! Dirichlet sampling reduces to normalizing independent Gamma(α, 1) draws.
//! The Gamma sampler is Marsaglia & Tsang (2000) with the standard α < 1
//! boost, implemented here to stay within the approved dependency set.

use rand::Rng;

/// Draws one sample from Gamma(shape α, scale 1).
///
/// # Panics
/// Panics if `alpha` is not finite and positive.
pub fn sample_gamma<R: Rng + ?Sized>(rng: &mut R, alpha: f64) -> f64 {
    assert!(
        alpha.is_finite() && alpha > 0.0,
        "gamma shape must be positive, got {alpha}"
    );
    if alpha < 1.0 {
        // Boost: Gamma(α) = Gamma(α + 1) * U^(1/α).
        let boost: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0f64).powf(1.0 / alpha);
        return sample_gamma(rng, alpha + 1.0) * boost;
    }
    // Marsaglia & Tsang squeeze method for α >= 1.
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // One standard normal via Box-Muller (kept local; only needed here).
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen();
        let x = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();

        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Draws a probability vector of length `k` from a symmetric Dirichlet(α).
///
/// The result is strictly positive and sums to 1 (up to floating error,
/// which the caller may renormalize away).
///
/// # Panics
/// Panics if `k == 0` or `alpha` is not finite and positive.
pub fn sample_dirichlet<R: Rng + ?Sized>(rng: &mut R, alpha: f64, k: usize) -> Vec<f64> {
    assert!(k > 0, "dirichlet dimension must be positive");
    let mut draws: Vec<f64> = (0..k).map(|_| sample_gamma(rng, alpha)).collect();
    let mut total: f64 = draws.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        // Astronomically unlikely (all draws underflowed); fall back to uniform.
        draws.iter_mut().for_each(|d| *d = 1.0);
        total = k as f64;
    }
    draws.iter_mut().for_each(|d| *d /= total);
    // Guard against exact zeros from underflow so downstream logs stay finite.
    let floor = 1e-12;
    if draws.iter().any(|&d| d < floor) {
        let mut sum = 0.0;
        for d in draws.iter_mut() {
            *d = d.max(floor);
            sum += *d;
        }
        draws.iter_mut().for_each(|d| *d /= sum);
    }
    draws
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn gamma_mean_matches_shape() {
        // E[Gamma(α, 1)] = α. Check within Monte-Carlo error.
        let mut rng = seeded_rng(11);
        for &alpha in &[0.35, 1.0, 2.5, 9.0] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| sample_gamma(&mut rng, alpha)).sum::<f64>() / n as f64;
            assert!(
                (mean - alpha).abs() < 0.12 * alpha.max(1.0),
                "alpha={alpha} mean={mean}"
            );
        }
    }

    #[test]
    fn gamma_is_positive() {
        let mut rng = seeded_rng(12);
        for _ in 0..5_000 {
            assert!(sample_gamma(&mut rng, 0.5) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "gamma shape must be positive")]
    fn gamma_rejects_nonpositive_shape() {
        let mut rng = seeded_rng(0);
        sample_gamma(&mut rng, 0.0);
    }

    #[test]
    fn dirichlet_sums_to_one_and_is_positive() {
        let mut rng = seeded_rng(13);
        for &alpha in &[0.35, 1.0, 5.0] {
            for &k in &[2usize, 3, 8, 10] {
                let p = sample_dirichlet(&mut rng, alpha, k);
                assert_eq!(p.len(), k);
                let sum: f64 = p.iter().sum();
                assert!((sum - 1.0).abs() < 1e-9, "sum={sum}");
                assert!(p.iter().all(|&x| x > 0.0));
            }
        }
    }

    #[test]
    fn dirichlet_alpha_controls_skew() {
        // Lower α should concentrate mass: the max component is larger on
        // average for α = 0.2 than for α = 5.
        let mut rng = seeded_rng(14);
        let trials = 2_000;
        let avg_max = |rng: &mut rand::rngs::StdRng, alpha: f64| {
            (0..trials)
                .map(|_| {
                    sample_dirichlet(rng, alpha, 4)
                        .into_iter()
                        .fold(0.0f64, f64::max)
                })
                .sum::<f64>()
                / trials as f64
        };
        let skewed = avg_max(&mut rng, 0.2);
        let flat = avg_max(&mut rng, 5.0);
        assert!(skewed > flat + 0.15, "skewed={skewed:.3} flat={flat:.3}");
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn dirichlet_rejects_zero_dimension() {
        let mut rng = seeded_rng(0);
        sample_dirichlet(&mut rng, 1.0, 0);
    }
}
