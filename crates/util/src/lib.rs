//! Shared utilities for the MRSL reproduction workspace.
//!
//! This crate deliberately has no dependency on the domain crates; it hosts
//! the small, generic building blocks the rest of the workspace relies on:
//!
//! * [`hash`] — an FxHash-based hasher and `FxHashMap`/`FxHashSet` aliases.
//!   Keys throughout the workspace are small integers or short integer
//!   slices, for which SipHash (the std default) is measurably slower.
//! * [`rng`] — seeded RNG construction and seed-derivation helpers so every
//!   stochastic component in the workspace is reproducible from one `u64`.
//! * [`dirichlet`] — Gamma/Dirichlet sampling used to instantiate random
//!   conditional probability tables.
//! * [`stats`] — streaming mean/variance and simple linear regression used
//!   by the experiment harness.
//! * [`table`] — a minimal ASCII table renderer for paper-style output.
//! * [`timer`] — a tiny wall-clock stopwatch.

pub mod dirichlet;
pub mod hash;
pub mod rng;
pub mod stats;
pub mod table;
pub mod timer;

pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use rng::{derive_seed, seeded_rng};
pub use stats::{linear_fit, OnlineStats};
pub use table::Table;
pub use timer::Stopwatch;
