//! Seeded RNG construction and deterministic seed derivation.
//!
//! Every stochastic component in the workspace (CPT instantiation, forward
//! sampling, train/test splitting, missing-value injection, Gibbs sampling)
//! takes an explicit `u64` seed. Sub-components derive child seeds with
//! [`derive_seed`] so that e.g. instance 2 of network 7 always sees the same
//! randomness regardless of which other experiments ran before it.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a [`StdRng`] from a 64-bit seed.
///
/// `StdRng` (ChaCha12) is used instead of `SmallRng` because its stream is
/// stable across platforms and `rand` point releases, which matters for the
/// reproducibility guarantees in EXPERIMENTS.md.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream of labels.
///
/// Uses the SplitMix64 finalizer, which is a bijective avalanche mix — child
/// seeds for different labels are decorrelated even when labels are small
/// consecutive integers.
///
/// ```
/// use mrsl_util::derive_seed;
/// let a = derive_seed(42, &[1, 0]);
/// let b = derive_seed(42, &[1, 1]);
/// assert_ne!(a, b);
/// assert_eq!(a, derive_seed(42, &[1, 0]));
/// ```
pub fn derive_seed(parent: u64, labels: &[u64]) -> u64 {
    let mut state = parent ^ 0x9e37_79b9_7f4a_7c15;
    for &label in labels {
        state = splitmix64(
            state
                .wrapping_add(label)
                .wrapping_add(0x9e37_79b9_7f4a_7c15),
        );
    }
    splitmix64(state)
}

/// SplitMix64 finalizer (Steele, Lea, Flood 2014).
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded_rng(7);
        let mut b = seeded_rng(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = seeded_rng(7);
        let mut b = seeded_rng(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derive_seed_depends_on_every_label() {
        let base = derive_seed(1, &[2, 3, 4]);
        assert_ne!(base, derive_seed(1, &[2, 3, 5]));
        assert_ne!(base, derive_seed(1, &[2, 4, 4]));
        assert_ne!(base, derive_seed(0, &[2, 3, 4]));
        assert_ne!(base, derive_seed(1, &[2, 3]));
    }

    #[test]
    fn derive_seed_label_order_matters() {
        assert_ne!(derive_seed(9, &[1, 2]), derive_seed(9, &[2, 1]));
    }

    #[test]
    fn derive_seed_avalanches_consecutive_labels() {
        // Child seeds of consecutive labels should differ in ~half the bits.
        let a = derive_seed(0, &[100]);
        let b = derive_seed(0, &[101]);
        let differing = (a ^ b).count_ones();
        assert!(
            (16..=48).contains(&differing),
            "only {differing} bits differ"
        );
    }
}
