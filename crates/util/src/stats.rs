//! Summary statistics used by the experiment harness.

use serde::{Deserialize, Serialize};

/// Streaming mean / variance accumulator (Welford's algorithm).
///
/// The experiment runner averages a metric over `instances × splits` cells;
/// this keeps the running mean numerically stable without storing samples.
#[derive(Debug, Default, Clone, Copy, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one observation into the accumulator.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance; 0.0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
    }
}

/// Ordinary least-squares fit `y ≈ slope * x + intercept`.
///
/// Returns `(slope, intercept)`. Used by the Fig. 9 reproduction to report
/// the regression lines the paper draws over inference-time scatter plots.
///
/// # Panics
/// Panics if `xs` and `ys` have different lengths or fewer than 2 points,
/// or if all `xs` are identical (vertical line).
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len(), "mismatched input lengths");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
    }
    assert!(sxx > 0.0, "all x values identical");
    let slope = sxy / sxx;
    (slope, mean_y - slope * mean_x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_sequence() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4.0; sample variance = 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        xs.iter().for_each(|&x| whole.push(x));

        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        xs[..37].iter().for_each(|&x| left.push(x));
        xs[37..].iter().for_each(|&x| right.push(x));
        left.merge(&right);

        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(3.0);
        a.push(5.0);
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&OnlineStats::new());
        assert_eq!(before, (a.count(), a.mean(), a.variance()));
    }

    #[test]
    fn linear_fit_exact_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.0, 5.0, 7.0, 9.0];
        let (m, b) = linear_fit(&xs, &ys);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((b - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_noisy_line_recovers_slope() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| 0.5 * x + 2.0 + if i % 2 == 0 { 0.1 } else { -0.1 })
            .collect();
        let (m, b) = linear_fit(&xs, &ys);
        assert!((m - 0.5).abs() < 0.01);
        assert!((b - 2.0).abs() < 0.15);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn linear_fit_rejects_single_point() {
        linear_fit(&[1.0], &[1.0]);
    }
}
