//! Minimal ASCII table renderer for paper-style console output.
//!
//! The `repro` harness prints each reproduced table/figure as rows of text;
//! this keeps the formatting in one place and out of the experiment logic.

use std::fmt::Write as _;

/// A left-aligned ASCII table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row. Rows shorter than the header are right-padded with
    /// empty cells; longer rows extend the effective width.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        self.rows.push(row.into_iter().map(Into::into).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// The header cells.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with column-width alignment and a separator rule.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut Vec<usize>, row: &[String]| {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        };
        measure(&mut widths, &self.header);
        for row in &self.rows {
            measure(&mut widths, row);
        }

        let mut out = String::new();
        let write_row = |out: &mut String, row: &[String]| {
            for (i, width) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                if i + 1 == widths.len() {
                    let _ = write!(out, "{cell}");
                } else {
                    let _ = write!(out, "{cell:<width$}  ");
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let rule: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a float with `digits` fractional digits, trimming `-0.000` to `0.000`.
pub fn fmt_f(x: f64, digits: usize) -> String {
    let s = format!("{x:.digits$}");
    if s.starts_with('-') && s[1..].chars().all(|c| c == '0' || c == '.') {
        s[1..].to_string()
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["net", "KL"]);
        t.push_row(["BN1", "0.03"]);
        t.push_row(["BN17", "0.08"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("net"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Column 2 starts at the same offset in every row.
        let off = lines[2].find("0.03").unwrap();
        assert_eq!(lines[3].find("0.08").unwrap(), off);
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = Table::new(["a"]);
        t.push_row(["1", "2", "3"]);
        t.push_row(["x"]);
        let s = t.render();
        assert!(s.contains('3'));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(["one", "two"]);
        assert!(t.is_empty());
        let s = t.render();
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn fmt_f_trims_negative_zero() {
        assert_eq!(fmt_f(-0.000001, 3), "0.000");
        assert_eq!(fmt_f(0.1234, 2), "0.12");
        assert_eq!(fmt_f(-1.5, 1), "-1.5");
    }
}
