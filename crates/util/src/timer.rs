//! Wall-clock stopwatch used for the timing experiments.

use std::time::{Duration, Instant};

/// A simple stopwatch. The experiments report wall-clock time like the
/// paper's prototype did; this wrapper keeps call sites terse and gives the
/// tests one place to fake elapsed time via [`Stopwatch::elapsed`].
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Time since start, in fractional seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Time since start, in fractional milliseconds.
    pub fn elapsed_millis(&self) -> f64 {
        self.elapsed().as_secs_f64() * 1e3
    }

    /// Restarts the stopwatch and returns the time elapsed until the restart.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let lap = now - self.start;
        self.start = now;
        lap
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
        assert!(sw.elapsed_secs() >= 0.0);
        assert!(sw.elapsed_millis() >= 0.0);
    }

    #[test]
    fn lap_resets_start() {
        // No sleeps: wall-clock assertions are flaky on loaded CI
        // machines, so assert only monotonic relationships.
        let mut sw = Stopwatch::start();
        let observed = sw.elapsed();
        let lap = sw.lap();
        // The lap covers at least the span observed before it.
        assert!(lap >= observed, "lap {lap:?} < observed {observed:?}");
        // After the lap the stopwatch restarted: successive readings are
        // still monotone from the new start.
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
        // A second lap covers at least what the restarted watch showed.
        let lap2 = sw.lap();
        assert!(lap2 >= b, "lap2 {lap2:?} < prior reading {b:?}");
    }
}
