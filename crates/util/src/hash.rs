//! A minimal re-implementation of the FxHash algorithm used by rustc.
//!
//! The workspace hashes small integer keys (packed attribute/value ids,
//! tuple encodings) inside hot loops — Apriori candidate lookup and the
//! Gibbs CPD cache. SipHash's per-hash setup cost dominates for such keys;
//! FxHash is a single multiply-xor round per word. Hand-rolling the ~40
//! lines keeps the dependency set to the approved list (see DESIGN.md §7).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc FxHash implementation
/// (64-bit variant): a randomly chosen odd number close to the golden ratio.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash state: one `u64`, folded with multiply-rotate-xor per word.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with FxHash. Drop-in for `std::collections::HashMap`.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with FxHash. Drop-in for `std::collections::HashSet`.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    fn hash_of(bytes: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(b"abcdefgh"), hash_of(b"abcdefgh"));
        assert_eq!(hash_of(b""), hash_of(b""));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_of(b"abcdefgh"), hash_of(b"abcdefgi"));
        assert_ne!(hash_of(&[0, 0, 0, 1]), hash_of(&[0, 0, 1, 0]));
    }

    #[test]
    fn empty_input_hashes_to_zero_state() {
        // FxHash folds nothing for empty input: state stays at default.
        assert_eq!(hash_of(b""), 0);
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        for k in 0..1000u64 {
            m.insert(k, "v");
        }
        assert_eq!(m.len(), 1000);
        assert!(m.contains_key(&999));
        assert!(!m.contains_key(&1000));
    }

    #[test]
    fn set_deduplicates() {
        let mut s: FxHashSet<(u16, u16)> = FxHashSet::default();
        s.insert((1, 2));
        s.insert((1, 2));
        s.insert((2, 1));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn build_hasher_produces_fresh_state() {
        let bh = FxBuildHasher::default();
        let mut a = bh.build_hasher();
        let mut b = bh.build_hasher();
        a.write_u64(42);
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn integer_writes_consistent_with_word_fold() {
        let mut a = FxHasher::default();
        a.write_u64(7);
        let mut b = FxHasher::default();
        b.write_u32(7);
        // u32 and u64 writes of the same small value fold identically
        // because both are widened to one u64 word.
        assert_eq!(a.finish(), b.finish());
    }
}
