//! Forward sampling of complete tuples from a Bayesian network.
//!
//! The "BN Sampler" of the paper's framework (§VI-A), standard ancestral /
//! forward sampling (Koller & Friedman §12.1): visit nodes in topological
//! order, sampling each from its CPT row selected by the already-sampled
//! parents.

use crate::network::BayesianNetwork;
use mrsl_relation::CompleteTuple;
use mrsl_util::{derive_seed, seeded_rng};
use rand::Rng;

/// Samples one complete tuple.
pub fn forward_sample<R: Rng + ?Sized>(bn: &BayesianNetwork, rng: &mut R) -> CompleteTuple {
    let n = bn.spec().num_attrs();
    let mut values = vec![0u16; n];
    for &node in bn.spec().topo_order() {
        let cpt = bn.cpt(node);
        let row = cpt.row(cpt.config_index(&values));
        values[node] = sample_categorical(row, rng);
    }
    CompleteTuple::from_values(values)
}

/// Samples a dataset of `n` tuples, deterministically from `seed`.
pub fn sample_dataset(bn: &BayesianNetwork, n: usize, seed: u64) -> Vec<CompleteTuple> {
    let mut rng = seeded_rng(derive_seed(seed, &[0x5a4d]));
    (0..n).map(|_| forward_sample(bn, &mut rng)).collect()
}

/// Samples an index from an unnormalized non-negative weight row.
///
/// Exposed for reuse by the Gibbs sampler in `mrsl-core`.
#[inline]
pub fn sample_categorical<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> u16 {
    debug_assert!(!weights.is_empty());
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0, "weights must have positive mass");
    let mut u: f64 = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i as u16;
        }
        u -= w;
    }
    // Floating-point edge: return the last value with positive weight.
    weights
        .iter()
        .rposition(|&w| w > 0.0)
        .expect("positive total implies a positive weight") as u16
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{chain, crown};
    use crate::network::BayesianNetwork;
    use mrsl_util::seeded_rng;

    #[test]
    fn sample_categorical_respects_weights() {
        let mut rng = seeded_rng(1);
        let weights = [0.0, 0.7, 0.3];
        let n = 20_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[sample_categorical(&weights, &mut rng) as usize] += 1;
        }
        assert_eq!(counts[0], 0);
        let f1 = counts[1] as f64 / n as f64;
        assert!((f1 - 0.7).abs() < 0.02, "f1 = {f1}");
    }

    #[test]
    fn sample_categorical_handles_point_mass() {
        let mut rng = seeded_rng(2);
        for _ in 0..100 {
            assert_eq!(sample_categorical(&[0.0, 1.0, 0.0], &mut rng), 1);
        }
    }

    #[test]
    fn dataset_is_deterministic_per_seed() {
        let spec = crown("c", &[2, 3, 2, 3]);
        let bn = BayesianNetwork::instantiate(&spec, 1.0, 5);
        let a = sample_dataset(&bn, 50, 11);
        let b = sample_dataset(&bn, 50, 11);
        let c = sample_dataset(&bn, 50, 12);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 50);
    }

    #[test]
    fn empirical_marginals_match_cpts_for_roots() {
        // For a root node, the empirical frequency must approach its CPT row.
        let spec = chain("c", &[3, 2]);
        let bn = BayesianNetwork::instantiate(&spec, 1.0, 21);
        let data = sample_dataset(&bn, 40_000, 1);
        let mut counts = [0usize; 3];
        for t in &data {
            counts[t.raw()[0] as usize] += 1;
        }
        let root_row = bn.cpt(0).row(0);
        for v in 0..3 {
            let f = counts[v] as f64 / data.len() as f64;
            assert!(
                (f - root_row[v]).abs() < 0.015,
                "v={v}: {f} vs {}",
                root_row[v]
            );
        }
    }

    #[test]
    fn empirical_conditional_matches_cpt_for_child() {
        let spec = chain("c", &[2, 2]);
        let bn = BayesianNetwork::instantiate(&spec, 1.0, 33);
        let data = sample_dataset(&bn, 60_000, 2);
        // P̂(x1 = 1 | x0 = 0) ≈ CPT row for config x0=0.
        let (mut n0, mut n01) = (0usize, 0usize);
        for t in &data {
            if t.raw()[0] == 0 {
                n0 += 1;
                if t.raw()[1] == 1 {
                    n01 += 1;
                }
            }
        }
        assert!(n0 > 1000, "degenerate instance");
        let expected = bn.cpt(1).row(0)[1];
        let got = n01 as f64 / n0 as f64;
        assert!((got - expected).abs() < 0.02, "{got} vs {expected}");
    }

    #[test]
    fn sampled_values_are_in_domain() {
        let spec = crown("c", &[4, 3, 5, 2]);
        let bn = BayesianNetwork::instantiate(&spec, 0.5, 9);
        for t in sample_dataset(&bn, 500, 3) {
            for (i, node) in spec.nodes().iter().enumerate() {
                assert!((t.raw()[i] as usize) < node.cardinality);
            }
        }
    }
}
