//! Bayesian-network substrate for the experimental framework (paper §VI-A).
//!
//! The paper evaluates MRSL on synthetic data generated from Bayesian
//! networks: "our framework takes as input the description of the topology
//! of a Bayesian network … the BN Instance Generator instantiates network
//! parameters by randomly populating conditional probability distributions
//! … the BN Sampler uses forward sampling to generate a dataset". The
//! inferred distributions are scored against the **true** conditionals of
//! the generating network, which requires exact inference.
//!
//! * [`topology`] — DAG structure: nodes, cardinalities, parents, depth.
//! * [`builders`] — the topology families of Fig. 7: independent, chain
//!   (line-shaped), crown-shaped, and layered DAGs.
//! * [`catalog`] — the 20 concrete networks of Table I.
//! * [`network`] — instantiated networks: CPTs, joint probability, random
//!   (Dirichlet) instantiation.
//! * [`sampler`] — forward sampling of complete tuples.
//! * [`factor`] / [`infer`] — factors, variable elimination and full-joint
//!   enumeration for exact conditional queries `P(targets | evidence)`.

pub mod builders;
pub mod catalog;
pub mod factor;
pub mod infer;
pub mod network;
pub mod sampler;
pub mod topology;

pub use catalog::{paper_networks, PaperNetwork};
pub use factor::Factor;
pub use infer::{conditional, conditional_brute_force};
pub use network::{BayesianNetwork, Cpt};
pub use topology::{NodeSpec, TopologyError, TopologySpec};
