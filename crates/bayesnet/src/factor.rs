//! Discrete factors for exact inference.
//!
//! A factor is a non-negative table over a set of variables. Variables are
//! kept in **ascending index order** and values are stored row-major with
//! the **last variable least significant** — the same convention as
//! [`mrsl_relation::JointIndexer`], so a final factor over the query targets
//! can be returned as-is.

/// A factor over a subset of network variables.
#[derive(Debug, Clone, PartialEq)]
pub struct Factor {
    vars: Vec<usize>,
    cards: Vec<usize>,
    values: Vec<f64>,
}

impl Factor {
    /// Builds a factor; `vars` must be strictly ascending and `values.len()`
    /// must equal the product of `cards`.
    ///
    /// # Panics
    /// Panics when the invariants are violated.
    pub fn new(vars: Vec<usize>, cards: Vec<usize>, values: Vec<f64>) -> Self {
        assert_eq!(vars.len(), cards.len(), "vars/cards length mismatch");
        assert!(
            vars.windows(2).all(|w| w[0] < w[1]),
            "vars must be strictly ascending"
        );
        let size: usize = cards.iter().product();
        assert_eq!(values.len(), size, "values length mismatch");
        Self {
            vars,
            cards,
            values,
        }
    }

    /// A scalar factor (no variables).
    pub fn scalar(value: f64) -> Self {
        Self {
            vars: vec![],
            cards: vec![],
            values: vec![value],
        }
    }

    /// The variables, ascending.
    pub fn vars(&self) -> &[usize] {
        &self.vars
    }

    /// Cardinalities aligned with [`Factor::vars`].
    pub fn cards(&self) -> &[usize] {
        &self.cards
    }

    /// The underlying table.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of table entries.
    pub fn size(&self) -> usize {
        self.values.len()
    }

    /// True when the factor mentions `var`.
    pub fn contains_var(&self, var: usize) -> bool {
        self.vars.binary_search(&var).is_ok()
    }

    /// Strides aligned with `vars` (last var has stride 1).
    fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.vars.len()];
        for i in (0..self.vars.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.cards[i + 1];
        }
        strides
    }

    /// Pointwise product; the result ranges over the union of variables.
    pub fn product(&self, other: &Factor) -> Factor {
        // Merge variable lists.
        let mut vars = Vec::with_capacity(self.vars.len() + other.vars.len());
        let mut cards = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.vars.len() || j < other.vars.len() {
            let take_self = match (self.vars.get(i), other.vars.get(j)) {
                (Some(&a), Some(&b)) => {
                    if a == b {
                        assert_eq!(
                            self.cards[i], other.cards[j],
                            "cardinality mismatch on shared var {a}"
                        );
                        vars.push(a);
                        cards.push(self.cards[i]);
                        i += 1;
                        j += 1;
                        continue;
                    }
                    a < b
                }
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => unreachable!(),
            };
            if take_self {
                vars.push(self.vars[i]);
                cards.push(self.cards[i]);
                i += 1;
            } else {
                vars.push(other.vars[j]);
                cards.push(other.cards[j]);
                j += 1;
            }
        }

        let size: usize = cards.iter().product();
        // Map each result variable position to positions in the operands.
        let pos_in = |f: &Factor, var: usize| f.vars.binary_search(&var).ok();
        let self_strides = self.strides();
        let other_strides = other.strides();
        let mut self_map = vec![0usize; vars.len()]; // stride contribution per result var
        let mut other_map = vec![0usize; vars.len()];
        for (k, &v) in vars.iter().enumerate() {
            if let Some(p) = pos_in(self, v) {
                self_map[k] = self_strides[p];
            }
            if let Some(p) = pos_in(other, v) {
                other_map[k] = other_strides[p];
            }
        }

        // Odometer walk over the result assignment.
        let mut assignment = vec![0usize; vars.len()];
        let mut self_idx = 0usize;
        let mut other_idx = 0usize;
        let mut values = Vec::with_capacity(size);
        for _ in 0..size {
            values.push(self.values[self_idx] * other.values[other_idx]);
            // Increment the mixed-radix counter from the least significant end.
            for k in (0..vars.len()).rev() {
                assignment[k] += 1;
                self_idx += self_map[k];
                other_idx += other_map[k];
                if assignment[k] < cards[k] {
                    break;
                }
                self_idx -= self_map[k] * cards[k];
                other_idx -= other_map[k] * cards[k];
                assignment[k] = 0;
            }
        }
        Factor {
            vars,
            cards,
            values,
        }
    }

    /// Sums out `var`.
    ///
    /// # Panics
    /// Panics if `var` is not in the factor.
    pub fn marginalize(&self, var: usize) -> Factor {
        let pos = self
            .vars
            .binary_search(&var)
            .expect("marginalized var must be present");
        let card = self.cards[pos];
        let strides = self.strides();
        let stride = strides[pos];

        let mut vars = self.vars.clone();
        let mut cards = self.cards.clone();
        vars.remove(pos);
        cards.remove(pos);
        let out_size: usize = cards.iter().product();
        let mut values = vec![0.0f64; out_size];

        // outer runs over variables before `pos`, inner over those after.
        let inner = stride;
        let outer = self.values.len() / (inner * card);
        let mut out_idx = 0;
        for o in 0..outer {
            let base = o * inner * card;
            for r in 0..inner {
                let mut sum = 0.0;
                let mut idx = base + r;
                for _ in 0..card {
                    sum += self.values[idx];
                    idx += inner;
                }
                values[out_idx] = sum;
                out_idx += 1;
            }
        }
        Factor {
            vars,
            cards,
            values,
        }
    }

    /// Fixes `var = value`, dropping the variable.
    ///
    /// # Panics
    /// Panics if `var` is not present or `value` out of range.
    pub fn reduce(&self, var: usize, value: usize) -> Factor {
        let pos = self
            .vars
            .binary_search(&var)
            .expect("reduced var must be present");
        assert!(value < self.cards[pos], "value out of range");
        let strides = self.strides();
        let stride = strides[pos];
        let card = self.cards[pos];

        let mut vars = self.vars.clone();
        let mut cards = self.cards.clone();
        vars.remove(pos);
        cards.remove(pos);
        let out_size: usize = cards.iter().product();
        let mut values = Vec::with_capacity(out_size);

        let inner = stride;
        let outer = self.values.len() / (inner * card);
        for o in 0..outer {
            let base = o * inner * card + value * inner;
            values.extend_from_slice(&self.values[base..base + inner]);
        }
        Factor {
            vars,
            cards,
            values,
        }
    }

    /// Normalizes the table to sum 1. Returns `None` when the total mass is
    /// zero or not finite (impossible evidence).
    pub fn normalized(&self) -> Option<Factor> {
        let total: f64 = self.values.iter().sum();
        if total <= 0.0 || !total.is_finite() {
            return None;
        }
        Some(Factor {
            vars: self.vars.clone(),
            cards: self.cards.clone(),
            values: self.values.iter().map(|v| v / total).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f_ab() -> Factor {
        // vars 0 (card 2), 1 (card 3); values [a][b].
        Factor::new(vec![0, 1], vec![2, 3], vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6])
    }

    #[test]
    fn scalar_product_scales() {
        let f = f_ab();
        let g = Factor::scalar(2.0);
        let p = f.product(&g);
        assert_eq!(p.vars(), &[0, 1]);
        assert!((p.values()[3] - 0.8).abs() < 1e-12);
        // Commutes.
        let q = g.product(&f);
        assert_eq!(p, q);
    }

    #[test]
    fn product_over_shared_var() {
        let f = f_ab();
        // g over var 1 (card 3).
        let g = Factor::new(vec![1], vec![3], vec![2.0, 3.0, 4.0]);
        let p = f.product(&g);
        assert_eq!(p.vars(), &[0, 1]);
        // entry (a=1, b=2) = 0.6 * 4.
        assert!((p.values()[5] - 2.4).abs() < 1e-12);
        // entry (a=0, b=1) = 0.2 * 3.
        assert!((p.values()[1] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn product_over_disjoint_vars() {
        let f = Factor::new(vec![0], vec![2], vec![0.5, 1.5]);
        let g = Factor::new(vec![2], vec![2], vec![2.0, 4.0]);
        let p = f.product(&g);
        assert_eq!(p.vars(), &[0, 2]);
        assert_eq!(p.values(), &[1.0, 2.0, 3.0, 6.0]);
    }

    #[test]
    fn product_interleaved_vars() {
        // f over {0, 2}, g over {1}: result over {0, 1, 2}.
        let f = Factor::new(vec![0, 2], vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let g = Factor::new(vec![1], vec![2], vec![10.0, 100.0]);
        let p = f.product(&g);
        assert_eq!(p.vars(), &[0, 1, 2]);
        // (a,b,c) index = a*4 + b*2 + c; value = f[a][c] * g[b].
        assert_eq!(p.values()[0], 1.0 * 10.0); // 0,0,0
        assert_eq!(p.values()[3], 2.0 * 100.0); // 0,1,1
        assert_eq!(p.values()[6], 3.0 * 100.0); // 1,1,0
    }

    #[test]
    fn marginalize_sums_out() {
        let f = f_ab();
        let m = f.marginalize(0);
        assert_eq!(m.vars(), &[1]);
        assert!((m.values()[0] - 0.5).abs() < 1e-12);
        assert!((m.values()[2] - 0.9).abs() < 1e-12);
        let m2 = f.marginalize(1);
        assert_eq!(m2.vars(), &[0]);
        assert!((m2.values()[0] - 0.6).abs() < 1e-12);
        assert!((m2.values()[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn marginalize_to_scalar() {
        let f = Factor::new(vec![3], vec![2], vec![0.25, 0.75]);
        let s = f.marginalize(3);
        assert!(s.vars().is_empty());
        assert!((s.values()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reduce_fixes_value() {
        let f = f_ab();
        let r = f.reduce(1, 2);
        assert_eq!(r.vars(), &[0]);
        assert_eq!(r.values(), &[0.3, 0.6]);
        let r2 = f.reduce(0, 0);
        assert_eq!(r2.vars(), &[1]);
        assert_eq!(r2.values(), &[0.1, 0.2, 0.3]);
    }

    #[test]
    fn normalized_sums_to_one() {
        let f = Factor::new(vec![0], vec![2], vec![1.0, 3.0]);
        let n = f.normalized().unwrap();
        assert_eq!(n.values(), &[0.25, 0.75]);
        assert!(Factor::new(vec![0], vec![2], vec![0.0, 0.0])
            .normalized()
            .is_none());
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn rejects_unsorted_vars() {
        Factor::new(vec![1, 0], vec![2, 2], vec![0.0; 4]);
    }

    #[test]
    fn marginalize_then_reduce_commute_on_distinct_vars() {
        let f = f_ab();
        let a = f.marginalize(0).reduce(1, 1);
        let b = f.reduce(1, 1).marginalize(0);
        assert_eq!(a.values(), b.values());
    }
}
