//! Exact conditional queries `P(targets | evidence)` over a network.
//!
//! The experimental framework scores MRSL estimates against the *true*
//! probability distribution of the generating network (paper §VI-A). For
//! that we need `P(missing attributes | observed attributes)` exactly:
//!
//! * [`conditional`] — variable elimination over [`crate::factor::Factor`]s
//!   with a greedy min-weight elimination order; handles every network in
//!   the Table I catalog in well under a millisecond.
//! * [`conditional_brute_force`] — full-joint enumeration; quadratically
//!   slower, kept as a cross-check oracle for the tests.
//!
//! Both return the distribution indexed per
//! [`mrsl_relation::JointIndexer`] over the target attributes (ascending,
//! row-major), or `None` when the evidence has probability zero.

use crate::factor::Factor;
use crate::network::BayesianNetwork;
use mrsl_relation::{AttrMask, CompleteTuple, JointIndexer, PartialTuple};

/// Exact `P(targets | evidence)` by variable elimination.
///
/// `evidence` is a partial tuple whose complete portion is the evidence set;
/// `targets` must be disjoint from it. Returns `None` when the evidence has
/// zero probability under the network.
///
/// # Panics
/// Panics if `targets` is empty or overlaps the evidence.
pub fn conditional(
    bn: &BayesianNetwork,
    targets: AttrMask,
    evidence: &PartialTuple,
) -> Option<Vec<f64>> {
    let n = bn.spec().num_attrs();
    assert!(!targets.is_empty(), "targets must be non-empty");
    assert!(
        targets.intersect(evidence.mask()).is_empty(),
        "targets overlap evidence"
    );

    // CPT → factor, reduced by evidence.
    let mut factors: Vec<Factor> = Vec::with_capacity(n);
    for node in 0..n {
        let mut f = cpt_factor(bn, node);
        for a in evidence.mask().iter() {
            if f.contains_var(a.index()) {
                f = f.reduce(a.index(), evidence.value_unchecked(a).index());
            }
        }
        factors.push(f);
    }

    // Eliminate everything that is neither target nor evidence.
    let mut to_eliminate: Vec<usize> = (0..n)
        .filter(|&v| {
            !targets.contains(mrsl_relation::AttrId(v as u16))
                && !evidence.mask().contains(mrsl_relation::AttrId(v as u16))
        })
        .collect();

    while !to_eliminate.is_empty() {
        // Greedy: pick the variable whose elimination builds the smallest
        // intermediate factor.
        let (pick_pos, _) = to_eliminate
            .iter()
            .enumerate()
            .map(|(pos, &v)| (pos, elimination_cost(&factors, v, bn)))
            .min_by(|a, b| a.1.cmp(&b.1))
            .expect("non-empty");
        let var = to_eliminate.swap_remove(pick_pos);

        let (touching, rest): (Vec<Factor>, Vec<Factor>) =
            factors.into_iter().partition(|f| f.contains_var(var));
        factors = rest;
        let product = touching
            .into_iter()
            .reduce(|a, b| a.product(&b))
            .unwrap_or_else(|| Factor::scalar(1.0));
        factors.push(if product.contains_var(var) {
            product.marginalize(var)
        } else {
            product
        });
    }

    let result = factors
        .into_iter()
        .reduce(|a, b| a.product(&b))
        .unwrap_or_else(|| Factor::scalar(1.0));
    let normalized = result.normalized()?;

    // The remaining factor ranges exactly over the targets (ascending),
    // matching the JointIndexer convention.
    debug_assert_eq!(
        normalized.vars(),
        targets.iter().map(|a| a.index()).collect::<Vec<_>>()
    );
    Some(normalized.values().to_vec())
}

/// Exact `P(targets | evidence)` by summing the full joint. Exponential in
/// the attribute count; test oracle only.
pub fn conditional_brute_force(
    bn: &BayesianNetwork,
    targets: AttrMask,
    evidence: &PartialTuple,
) -> Option<Vec<f64>> {
    let schema = bn.schema();
    let n = bn.spec().num_attrs();
    assert!(!targets.is_empty(), "targets must be non-empty");
    let target_ix = JointIndexer::new(schema, targets);
    let all_ix = JointIndexer::new(schema, AttrMask::full(n));
    let mut probs = vec![0.0f64; target_ix.size()];
    for idx in 0..all_ix.size() {
        let combo = all_ix.decode(idx);
        let values: Vec<u16> = combo.iter().map(|&(_, v)| v.0).collect();
        let point = CompleteTuple::from_values(values);
        if !evidence.matches_point(&point) {
            continue;
        }
        probs[target_ix.index_of_point(&point)] += bn.joint_prob(&point);
    }
    let total: f64 = probs.iter().sum();
    if total <= 0.0 {
        return None;
    }
    probs.iter_mut().for_each(|p| *p /= total);
    Some(probs)
}

/// Converts node `i`'s CPT into a factor over `{parents(i)} ∪ {i}`.
fn cpt_factor(bn: &BayesianNetwork, node: usize) -> Factor {
    let cpt = bn.cpt(node);
    let mut vars: Vec<usize> = cpt.parents().to_vec();
    vars.push(node);
    vars.sort_unstable();
    let cards: Vec<usize> = vars
        .iter()
        .map(|&v| bn.spec().nodes()[v].cardinality)
        .collect();
    let size: usize = cards.iter().product();

    // Walk the factor indices with an odometer over `vars`, maintaining the
    // full assignment vector to query the CPT.
    let n = bn.spec().num_attrs();
    let mut assignment_full = vec![0u16; n];
    let mut assignment = vec![0usize; vars.len()];
    let mut values = Vec::with_capacity(size);
    for _ in 0..size {
        for (k, &v) in vars.iter().enumerate() {
            assignment_full[v] = assignment[k] as u16;
        }
        values.push(cpt.prob(&assignment_full, assignment_full[node]));
        for k in (0..vars.len()).rev() {
            assignment[k] += 1;
            if assignment[k] < cards[k] {
                break;
            }
            assignment[k] = 0;
        }
    }
    Factor::new(vars, cards, values)
}

/// Size of the factor that eliminating `var` would create.
fn elimination_cost(factors: &[Factor], var: usize, bn: &BayesianNetwork) -> usize {
    let mut union: Vec<usize> = Vec::new();
    for f in factors.iter().filter(|f| f.contains_var(var)) {
        for &v in f.vars() {
            if v != var && !union.contains(&v) {
                union.push(v);
            }
        }
    }
    union
        .iter()
        .map(|&v| bn.spec().nodes()[v].cardinality)
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{chain, crown, independent, layered};
    use crate::network::BayesianNetwork;
    use mrsl_relation::AttrId;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matches_brute_force_on_chain() {
        let spec = chain("c", &[2, 3, 2, 2]);
        let bn = BayesianNetwork::instantiate(&spec, 0.8, 42);
        let targets = AttrMask::from_attrs([AttrId(1), AttrId(3)]);
        let evidence = PartialTuple::from_options(&[Some(1), None, Some(0), None]);
        let ve = conditional(&bn, targets, &evidence).unwrap();
        let bf = conditional_brute_force(&bn, targets, &evidence).unwrap();
        assert_close(&ve, &bf, 1e-10);
        assert!((ve.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn matches_brute_force_on_crown() {
        let spec = crown("cr", &[2, 3, 2, 3, 2, 2]);
        let bn = BayesianNetwork::instantiate(&spec, 1.0, 7);
        let targets = AttrMask::from_attrs([AttrId(0), AttrId(4), AttrId(5)]);
        let evidence = PartialTuple::from_options(&[None, Some(2), Some(1), None, None, None]);
        let ve = conditional(&bn, targets, &evidence).unwrap();
        let bf = conditional_brute_force(&bn, targets, &evidence).unwrap();
        assert_close(&ve, &bf, 1e-10);
    }

    #[test]
    fn matches_brute_force_on_layered() {
        let spec = layered("l", &[2, 2, 3, 2, 2], &[2, 2, 1]);
        let bn = BayesianNetwork::instantiate(&spec, 0.5, 13);
        let targets = AttrMask::from_attrs([AttrId(2)]);
        let evidence = PartialTuple::from_options(&[Some(0), None, None, Some(1), None]);
        let ve = conditional(&bn, targets, &evidence).unwrap();
        let bf = conditional_brute_force(&bn, targets, &evidence).unwrap();
        assert_close(&ve, &bf, 1e-10);
    }

    #[test]
    fn no_evidence_gives_marginal() {
        let spec = independent("i", &[2, 4]);
        let bn = BayesianNetwork::instantiate(&spec, 1.0, 3);
        let marg = conditional(
            &bn,
            AttrMask::single(AttrId(1)),
            &PartialTuple::all_missing(2),
        )
        .unwrap();
        // Independent root: marginal is the CPT row itself.
        assert_close(&marg, bn.cpt(1).row(0), 1e-12);
    }

    #[test]
    fn independent_evidence_does_not_move_target() {
        let spec = independent("i", &[2, 3]);
        let bn = BayesianNetwork::instantiate(&spec, 1.0, 4);
        let with_ev = conditional(
            &bn,
            AttrMask::single(AttrId(1)),
            &PartialTuple::from_options(&[Some(1), None]),
        )
        .unwrap();
        assert_close(&with_ev, bn.cpt(1).row(0), 1e-12);
    }

    #[test]
    fn chain_evidence_selects_cpt_row() {
        // P(x1 | x0 = v) in a chain is exactly the CPT row for config v.
        let spec = chain("c", &[3, 4]);
        let bn = BayesianNetwork::instantiate(&spec, 0.7, 9);
        for v in 0..3u16 {
            let got = conditional(
                &bn,
                AttrMask::single(AttrId(1)),
                &PartialTuple::from_options(&[Some(v), None]),
            )
            .unwrap();
            assert_close(&got, bn.cpt(1).row(v as usize), 1e-12);
        }
    }

    #[test]
    fn impossible_evidence_returns_none() {
        // Hand-build a network where x1 = 1 never happens given x0 = 0:
        // P(x0) = [1, 0] makes x0 = 1 impossible.
        use crate::network::Cpt;
        let spec = chain("c", &[2, 2]);
        let cpts = vec![
            Cpt::new(vec![], vec![], 2, vec![1.0, 0.0]),
            Cpt::new(vec![0], vec![2], 2, vec![0.5, 0.5, 0.5, 0.5]),
        ];
        let bn = BayesianNetwork::from_cpts(&spec, cpts);
        let ev = PartialTuple::from_options(&[Some(1), None]); // x0 = 1: impossible
        assert!(conditional(&bn, AttrMask::single(AttrId(1)), &ev).is_none());
        assert!(conditional_brute_force(&bn, AttrMask::single(AttrId(1)), &ev).is_none());
    }

    #[test]
    #[should_panic(expected = "targets overlap evidence")]
    fn rejects_overlapping_targets() {
        let spec = chain("c", &[2, 2]);
        let bn = BayesianNetwork::uniform(&spec);
        let ev = PartialTuple::from_options(&[Some(0), None]);
        conditional(&bn, AttrMask::single(AttrId(0)), &ev);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn all_attrs_as_targets_matches_joint() {
        let spec = crown("cr", &[2, 2, 2, 2]);
        let bn = BayesianNetwork::instantiate(&spec, 1.0, 17);
        let targets = AttrMask::full(4);
        let probs = conditional(&bn, targets, &PartialTuple::all_missing(4)).unwrap();
        let ix = JointIndexer::new(bn.schema(), targets);
        for idx in 0..ix.size() {
            let combo = ix.decode(idx);
            let point = CompleteTuple::from_values(combo.iter().map(|&(_, v)| v.0).collect());
            assert!((probs[idx] - bn.joint_prob(&point)).abs() < 1e-10);
        }
    }
}
