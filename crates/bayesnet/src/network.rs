//! Instantiated Bayesian networks: topology + conditional probability tables.

use crate::topology::TopologySpec;
use mrsl_relation::{AttrId, CompleteTuple, Schema};
use mrsl_util::dirichlet::sample_dirichlet;
use mrsl_util::{derive_seed, seeded_rng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A conditional probability table `P(X | parents(X))`.
///
/// Rows are laid out per parent configuration (mixed radix over the parent
/// list in declaration order, last parent least significant), each row a
/// distribution over the node's values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cpt {
    parents: Vec<usize>,
    parent_cards: Vec<usize>,
    cardinality: usize,
    rows: Vec<f64>,
}

impl Cpt {
    /// Builds a CPT; `rows` holds `parent_configs * cardinality` values,
    /// each row summing to 1.
    ///
    /// # Panics
    /// Panics on shape mismatch or a row that is not a distribution.
    pub fn new(
        parents: Vec<usize>,
        parent_cards: Vec<usize>,
        cardinality: usize,
        rows: Vec<f64>,
    ) -> Self {
        assert_eq!(parents.len(), parent_cards.len());
        let configs: usize = parent_cards.iter().product();
        assert_eq!(rows.len(), configs * cardinality, "CPT shape mismatch");
        for (c, row) in rows.chunks(cardinality).enumerate() {
            let sum: f64 = row.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-6 && row.iter().all(|&p| p >= 0.0),
                "row {c} is not a distribution (sum {sum})"
            );
        }
        Self {
            parents,
            parent_cards,
            cardinality,
            rows,
        }
    }

    /// Parent node indices.
    pub fn parents(&self) -> &[usize] {
        &self.parents
    }

    /// Node cardinality.
    pub fn cardinality(&self) -> usize {
        self.cardinality
    }

    /// Number of parent configurations.
    pub fn parent_configs(&self) -> usize {
        self.parent_cards.iter().product()
    }

    /// Index of the parent configuration given the values of *all* nodes.
    #[inline]
    pub fn config_index(&self, all_values: &[u16]) -> usize {
        let mut idx = 0usize;
        for (p, &card) in self.parents.iter().zip(&self.parent_cards) {
            idx = idx * card + all_values[*p] as usize;
        }
        idx
    }

    /// The distribution row for a parent configuration.
    #[inline]
    pub fn row(&self, config: usize) -> &[f64] {
        &self.rows[config * self.cardinality..(config + 1) * self.cardinality]
    }

    /// `P(X = value | parents)` for the configuration taken from
    /// `all_values`.
    #[inline]
    pub fn prob(&self, all_values: &[u16], value: u16) -> f64 {
        self.row(self.config_index(all_values))[value as usize]
    }

    /// All rows, for conversion into a factor.
    pub fn raw_rows(&self) -> &[f64] {
        &self.rows
    }
}

/// A Bayesian network instance: a topology with concrete CPTs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BayesianNetwork {
    spec: TopologySpec,
    #[serde(skip, default = "empty_schema")]
    schema: Arc<Schema>,
    cpts: Vec<Cpt>,
}

fn empty_schema() -> Arc<Schema> {
    mrsl_relation::Schema::builder()
        .build()
        .expect("empty schema")
}

impl BayesianNetwork {
    /// Randomly instantiates a topology: every CPT row is an independent
    /// draw from a symmetric Dirichlet(α) (paper §VI-A "randomly selecting
    /// probability distributions … in accordance with the topology").
    pub fn instantiate(spec: &TopologySpec, alpha: f64, seed: u64) -> Self {
        let mut cpts = Vec::with_capacity(spec.num_attrs());
        for (i, node) in spec.nodes().iter().enumerate() {
            let parent_cards: Vec<usize> = node
                .parents
                .iter()
                .map(|&p| spec.nodes()[p].cardinality)
                .collect();
            let configs: usize = parent_cards.iter().product();
            let mut rows = Vec::with_capacity(configs * node.cardinality);
            let mut rng = seeded_rng(derive_seed(seed, &[i as u64]));
            for _ in 0..configs {
                rows.extend(sample_dirichlet(&mut rng, alpha, node.cardinality));
            }
            cpts.push(Cpt::new(
                node.parents.clone(),
                parent_cards,
                node.cardinality,
                rows,
            ));
        }
        Self {
            schema: spec.to_schema(),
            spec: spec.clone(),
            cpts,
        }
    }

    /// Instantiates with uniform CPTs (every row uniform); useful as a
    /// degenerate baseline in tests.
    pub fn uniform(spec: &TopologySpec) -> Self {
        let mut cpts = Vec::with_capacity(spec.num_attrs());
        for node in spec.nodes() {
            let parent_cards: Vec<usize> = node
                .parents
                .iter()
                .map(|&p| spec.nodes()[p].cardinality)
                .collect();
            let configs: usize = parent_cards.iter().product();
            let row = vec![1.0 / node.cardinality as f64; node.cardinality];
            let rows = row.repeat(configs);
            cpts.push(Cpt::new(
                node.parents.clone(),
                parent_cards,
                node.cardinality,
                rows,
            ));
        }
        Self {
            schema: spec.to_schema(),
            spec: spec.clone(),
            cpts,
        }
    }

    /// Builds a network from explicit CPTs (validated against the topology).
    ///
    /// # Panics
    /// Panics when a CPT's shape disagrees with the topology.
    pub fn from_cpts(spec: &TopologySpec, cpts: Vec<Cpt>) -> Self {
        assert_eq!(cpts.len(), spec.num_attrs(), "one CPT per node required");
        for (i, (node, cpt)) in spec.nodes().iter().zip(&cpts).enumerate() {
            assert_eq!(cpt.parents(), node.parents.as_slice(), "node {i} parents");
            assert_eq!(cpt.cardinality(), node.cardinality, "node {i} cardinality");
        }
        Self {
            schema: spec.to_schema(),
            spec: spec.clone(),
            cpts,
        }
    }

    /// The topology.
    pub fn spec(&self) -> &TopologySpec {
        &self.spec
    }

    /// The relational schema of generated data.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The CPT of node `i`.
    pub fn cpt(&self, i: usize) -> &Cpt {
        &self.cpts[i]
    }

    /// All CPTs in node order.
    pub fn cpts(&self) -> &[Cpt] {
        &self.cpts
    }

    /// Joint probability of a complete tuple: `∏ᵢ P(xᵢ | parents(xᵢ))`.
    pub fn joint_prob(&self, point: &CompleteTuple) -> f64 {
        debug_assert_eq!(point.arity(), self.spec.num_attrs());
        let values = point.raw();
        self.cpts
            .iter()
            .enumerate()
            .map(|(i, cpt)| cpt.prob(values, values[i]))
            .product()
    }

    /// Exact marginal `P(Xᵢ = v)` computed by eliminating everything else;
    /// convenience wrapper over [`crate::infer::conditional`].
    pub fn marginal(&self, attr: AttrId) -> Vec<f64> {
        crate::infer::conditional(
            self,
            mrsl_relation::AttrMask::single(attr),
            &mrsl_relation::PartialTuple::all_missing(self.spec.num_attrs()),
        )
        .expect("unconditioned marginal always exists")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{chain, independent};

    #[test]
    fn cpt_indexing_is_mixed_radix() {
        // Node 2 with parents [0, 1] of cards [2, 3].
        let rows: Vec<f64> = (0..6).flat_map(|_| [0.25, 0.75]).collect();
        let cpt = Cpt::new(vec![0, 1], vec![2, 3], 2, rows);
        assert_eq!(cpt.parent_configs(), 6);
        // all_values: node0=1, node1=2, node2=0 → config = 1*3 + 2 = 5.
        assert_eq!(cpt.config_index(&[1, 2, 0]), 5);
        assert_eq!(cpt.prob(&[1, 2, 0], 1), 0.75);
    }

    #[test]
    #[should_panic(expected = "not a distribution")]
    fn cpt_rejects_unnormalized_rows() {
        Cpt::new(vec![], vec![], 2, vec![0.5, 0.6]);
    }

    #[test]
    fn instantiate_is_deterministic_per_seed() {
        let spec = chain("c", &[2, 3, 2]);
        let a = BayesianNetwork::instantiate(&spec, 1.0, 99);
        let b = BayesianNetwork::instantiate(&spec, 1.0, 99);
        let c = BayesianNetwork::instantiate(&spec, 1.0, 100);
        for i in 0..3 {
            assert_eq!(a.cpt(i).raw_rows(), b.cpt(i).raw_rows());
        }
        assert_ne!(a.cpt(0).raw_rows(), c.cpt(0).raw_rows());
    }

    #[test]
    fn joint_prob_factorizes_for_independent_nodes() {
        let spec = independent("i", &[2, 2]);
        let bn = BayesianNetwork::instantiate(&spec, 1.0, 7);
        let p00 = bn.joint_prob(&CompleteTuple::from_values(vec![0, 0]));
        let p0 = bn.cpt(0).row(0)[0];
        let q0 = bn.cpt(1).row(0)[0];
        assert!((p00 - p0 * q0).abs() < 1e-12);
    }

    #[test]
    fn joint_probs_sum_to_one() {
        let spec = chain("c", &[2, 3, 2]);
        let bn = BayesianNetwork::instantiate(&spec, 0.8, 3);
        let mut total = 0.0;
        for a in 0..2u16 {
            for b in 0..3u16 {
                for c in 0..2u16 {
                    total += bn.joint_prob(&CompleteTuple::from_values(vec![a, b, c]));
                }
            }
        }
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn uniform_network_has_uniform_joint() {
        let spec = chain("c", &[2, 2]);
        let bn = BayesianNetwork::uniform(&spec);
        for a in 0..2u16 {
            for b in 0..2u16 {
                let p = bn.joint_prob(&CompleteTuple::from_values(vec![a, b]));
                assert!((p - 0.25).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "one CPT per node")]
    fn from_cpts_checks_count() {
        let spec = independent("i", &[2, 2]);
        BayesianNetwork::from_cpts(&spec, vec![]);
    }

    #[test]
    fn schema_matches_spec() {
        let spec = chain("c", &[2, 5]);
        let bn = BayesianNetwork::instantiate(&spec, 1.0, 0);
        assert_eq!(bn.schema().attr_count(), 2);
        assert_eq!(bn.schema().cardinality(AttrId(1)), 5);
    }
}
