//! The 20 Bayesian networks of Table I.
//!
//! The paper publishes, per network, the attribute count, average
//! cardinality, joint domain size and depth, plus shape sketches in Fig. 7
//! (crown-shaped: BN8/9/17/18; line-shaped: BN13–16). The concrete DAGs are
//! not published; we reconstruct them to match Table I exactly on attribute
//! count and domain size, and on depth under the node-count convention (see
//! `TopologySpec::depth`). Cardinality vectors for the irregular networks
//! are chosen to hit the published domain sizes exactly; the resulting
//! average cardinality deviates by ≤ 0.25 for BN1/BN2 (documented in
//! DESIGN.md §4).

use crate::builders::{chain, crown, independent, layered};
use crate::topology::TopologySpec;

/// One row of Table I: the topology plus the figures the paper reports.
#[derive(Debug, Clone)]
pub struct PaperNetwork {
    /// The reconstructed topology.
    pub topology: TopologySpec,
    /// "avg card" as printed in Table I.
    pub paper_avg_card: f64,
    /// "dom. size" as printed in Table I.
    pub paper_domain_size: u128,
    /// "depth" as printed in Table I.
    pub paper_depth: usize,
}

impl PaperNetwork {
    fn new(
        topology: TopologySpec,
        paper_avg_card: f64,
        paper_domain_size: u128,
        paper_depth: usize,
    ) -> Self {
        Self {
            topology,
            paper_avg_card,
            paper_domain_size,
            paper_depth,
        }
    }

    /// Network name (`BN1` … `BN20`).
    pub fn name(&self) -> &str {
        self.topology.name()
    }
}

/// Builds all 20 networks in Table I order.
pub fn paper_networks() -> Vec<PaperNetwork> {
    vec![
        // BN1: 4 attrs, avg card 4, dom 300, depth 2.
        PaperNetwork::new(layered("BN1", &[3, 4, 5, 5], &[2, 2]), 4.0, 300, 2),
        // BN2: 5 attrs, avg card 4.4, dom 1400, depth 3.
        PaperNetwork::new(layered("BN2", &[2, 4, 5, 5, 7], &[2, 2, 1]), 4.4, 1400, 3),
        // BN3: 5 attrs, avg card 5.2, dom 2400, depth 3.
        PaperNetwork::new(layered("BN3", &[2, 5, 5, 6, 8], &[2, 2, 1]), 5.2, 2400, 3),
        // BN4: same profile, independent (depth 0).
        PaperNetwork::new(independent("BN4", &[2, 5, 5, 6, 8]), 5.2, 2400, 0),
        // BN5: same profile, depth 2.
        PaperNetwork::new(layered("BN5", &[2, 5, 5, 6, 8], &[3, 2]), 5.2, 2400, 2),
        // BN6: 10 binary attrs, dom 1024, depth 4.
        PaperNetwork::new(layered("BN6", &[2; 10], &[3, 3, 2, 2]), 2.0, 1024, 4),
        // BN7: 10 attrs, avg card 4, dom 518,400, depth 4.
        PaperNetwork::new(
            layered("BN7", &[2, 2, 3, 3, 4, 4, 5, 5, 6, 6], &[3, 3, 2, 2]),
            4.0,
            518_400,
            4,
        ),
        // BN8–BN12, BN17, BN18: crown-shaped, depth 2.
        PaperNetwork::new(crown("BN8", &[2; 4]), 2.0, 16, 2),
        PaperNetwork::new(crown("BN9", &[2; 6]), 2.0, 64, 2),
        PaperNetwork::new(crown("BN10", &[4; 6]), 4.0, 4096, 2),
        PaperNetwork::new(crown("BN11", &[6; 6]), 6.0, 46_656, 2),
        PaperNetwork::new(crown("BN12", &[8; 6]), 8.0, 262_144, 2),
        // BN13–BN16: line-shaped 6-node chains, depth 6.
        PaperNetwork::new(chain("BN13", &[2; 6]), 2.0, 64, 6),
        PaperNetwork::new(chain("BN14", &[4; 6]), 4.0, 4096, 6),
        PaperNetwork::new(chain("BN15", &[6; 6]), 6.0, 46_656, 6),
        PaperNetwork::new(chain("BN16", &[8; 6]), 8.0, 262_144, 6),
        PaperNetwork::new(crown("BN17", &[2; 8]), 2.0, 256, 2),
        PaperNetwork::new(crown("BN18", &[2; 10]), 2.0, 1024, 2),
        // BN19, BN20: 10 binary attrs at depths 3 and 5.
        PaperNetwork::new(layered("BN19", &[2; 10], &[4, 3, 3]), 2.0, 1024, 3),
        PaperNetwork::new(layered("BN20", &[2; 10], &[2, 2, 2, 2, 2]), 2.0, 1024, 5),
    ]
}

/// Looks up one of the paper networks by name (`"BN8"` etc.).
pub fn by_name(name: &str) -> Option<PaperNetwork> {
    paper_networks().into_iter().find(|n| n.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_networks_in_order() {
        let nets = paper_networks();
        assert_eq!(nets.len(), 20);
        for (i, net) in nets.iter().enumerate() {
            assert_eq!(net.name(), format!("BN{}", i + 1));
        }
    }

    #[test]
    fn domain_sizes_match_table_1_exactly() {
        for net in paper_networks() {
            assert_eq!(
                net.topology.domain_size(),
                net.paper_domain_size,
                "{} domain size",
                net.name()
            );
        }
    }

    #[test]
    fn depths_match_table_1_exactly() {
        for net in paper_networks() {
            assert_eq!(
                net.topology.depth(),
                net.paper_depth,
                "{} depth",
                net.name()
            );
        }
    }

    #[test]
    fn attr_counts_match_table_1() {
        let expected = [
            4, 5, 5, 5, 5, 10, 10, 4, 6, 6, 6, 6, 6, 6, 6, 6, 8, 10, 10, 10,
        ];
        for (net, &exp) in paper_networks().iter().zip(&expected) {
            assert_eq!(net.topology.num_attrs(), exp, "{}", net.name());
        }
    }

    #[test]
    fn avg_card_close_to_table_1() {
        for net in paper_networks() {
            let dev = (net.topology.avg_cardinality() - net.paper_avg_card).abs();
            assert!(
                dev <= 0.25 + 1e-9,
                "{}: avg card {} vs paper {}",
                net.name(),
                net.topology.avg_cardinality(),
                net.paper_avg_card
            );
        }
    }

    #[test]
    fn crown_networks_are_crowns() {
        for name in ["BN8", "BN9", "BN17", "BN18"] {
            let net = by_name(name).unwrap();
            assert_eq!(net.topology.depth(), 2, "{name}");
            let with_parents = net
                .topology
                .nodes()
                .iter()
                .filter(|n| !n.parents.is_empty())
                .count();
            assert_eq!(with_parents, net.topology.num_attrs() / 2, "{name}");
        }
    }

    #[test]
    fn by_name_roundtrip_and_miss() {
        assert_eq!(by_name("BN13").unwrap().topology.depth(), 6);
        assert!(by_name("BN99").is_none());
    }
}
