//! Bayesian network topology: a DAG over discrete variables.

use mrsl_relation::{Schema, SchemaBuilder};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// One random variable: name, domain cardinality, parent node indices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Variable name (doubles as the attribute name of generated data).
    pub name: String,
    /// Domain cardinality (≥ 2 for a meaningful variable).
    pub cardinality: usize,
    /// Indices of parent nodes within the topology.
    pub parents: Vec<usize>,
}

/// Errors detected while validating a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A node references a parent index outside the node list.
    ParentOutOfRange { node: usize, parent: usize },
    /// A node lists the same parent twice.
    DuplicateParent { node: usize, parent: usize },
    /// The parent relation has a directed cycle.
    Cyclic,
    /// A node has cardinality < 2.
    DegenerateCardinality { node: usize },
    /// Two nodes share a name.
    DuplicateName(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ParentOutOfRange { node, parent } => {
                write!(f, "node {node} references out-of-range parent {parent}")
            }
            Self::DuplicateParent { node, parent } => {
                write!(f, "node {node} lists parent {parent} twice")
            }
            Self::Cyclic => write!(f, "parent relation contains a cycle"),
            Self::DegenerateCardinality { node } => {
                write!(f, "node {node} has cardinality < 2")
            }
            Self::DuplicateName(n) => write!(f, "duplicate node name `{n}`"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// A validated Bayesian network topology.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopologySpec {
    name: String,
    nodes: Vec<NodeSpec>,
    topo_order: Vec<usize>,
}

impl TopologySpec {
    /// Validates and freezes a topology.
    pub fn new(name: impl Into<String>, nodes: Vec<NodeSpec>) -> Result<Self, TopologyError> {
        let n = nodes.len();
        let mut seen_names = std::collections::HashSet::new();
        for (i, node) in nodes.iter().enumerate() {
            if node.cardinality < 2 {
                return Err(TopologyError::DegenerateCardinality { node: i });
            }
            if !seen_names.insert(node.name.clone()) {
                return Err(TopologyError::DuplicateName(node.name.clone()));
            }
            let mut seen = std::collections::HashSet::new();
            for &p in &node.parents {
                if p >= n {
                    return Err(TopologyError::ParentOutOfRange { node: i, parent: p });
                }
                if !seen.insert(p) {
                    return Err(TopologyError::DuplicateParent { node: i, parent: p });
                }
            }
        }
        let topo_order = topo_sort(&nodes).ok_or(TopologyError::Cyclic)?;
        Ok(Self {
            name: name.into(),
            nodes,
            topo_order,
        })
    }

    /// Topology name (e.g. `BN8`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node specs.
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// Number of variables ("num. attrs" in Table I).
    pub fn num_attrs(&self) -> usize {
        self.nodes.len()
    }

    /// Average cardinality ("avg card" in Table I).
    pub fn avg_cardinality(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes.iter().map(|n| n.cardinality as f64).sum::<f64>() / self.nodes.len() as f64
    }

    /// Product of cardinalities ("dom. size" in Table I).
    pub fn domain_size(&self) -> u128 {
        self.nodes.iter().map(|n| n.cardinality as u128).product()
    }

    /// A topological order of the nodes (parents before children).
    pub fn topo_order(&self) -> &[usize] {
        &self.topo_order
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.nodes.iter().map(|n| n.parents.len()).sum()
    }

    /// Depth: the number of nodes on the longest directed path, with 0 for
    /// an edgeless network.
    ///
    /// This is the only convention consistent with Table I, where
    /// "line-shaped" 6-node chains have depth 6, two-layer crowns have depth
    /// 2, and fully independent attributes have depth 0 (see DESIGN.md §4).
    pub fn depth(&self) -> usize {
        if self.num_edges() == 0 {
            return 0;
        }
        // Longest path in node count via DP over the topological order.
        let mut longest = vec![1usize; self.nodes.len()];
        for &v in &self.topo_order {
            for &p in &self.nodes[v].parents {
                longest[v] = longest[v].max(longest[p] + 1);
            }
        }
        longest.into_iter().max().unwrap_or(0)
    }

    /// Children lists (inverse of the parent relation).
    pub fn children(&self) -> Vec<Vec<usize>> {
        let mut ch = vec![Vec::new(); self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            for &p in &node.parents {
                ch[p].push(i);
            }
        }
        ch
    }

    /// Builds the relational schema generated data will use: one attribute
    /// per variable (same order), with value labels `v0..v{k-1}`.
    pub fn to_schema(&self) -> Arc<Schema> {
        let mut b = SchemaBuilder::default();
        for node in &self.nodes {
            b = b.attribute(
                node.name.clone(),
                (0..node.cardinality).map(|v| format!("v{v}")),
            );
        }
        b.build()
            .expect("validated topology produces a valid schema")
    }

    /// An ASCII sketch of the DAG: one line per node listing its parents.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(
            out,
            "{}: {} attrs, avg card {:.1}, dom size {}, depth {}",
            self.name,
            self.num_attrs(),
            self.avg_cardinality(),
            self.domain_size(),
            self.depth()
        );
        for node in &self.nodes {
            let parents: Vec<&str> = node
                .parents
                .iter()
                .map(|&p| self.nodes[p].name.as_str())
                .collect();
            let _ = writeln!(
                out,
                "  {} (card {}){}",
                node.name,
                node.cardinality,
                if parents.is_empty() {
                    String::new()
                } else {
                    format!(" <- {}", parents.join(", "))
                }
            );
        }
        out
    }
}

/// Kahn's algorithm; `None` on a cycle.
fn topo_sort(nodes: &[NodeSpec]) -> Option<Vec<usize>> {
    let n = nodes.len();
    let mut indegree = vec![0usize; n];
    let mut children = vec![Vec::new(); n];
    for (i, node) in nodes.iter().enumerate() {
        indegree[i] = node.parents.len();
        for &p in &node.parents {
            children[p].push(i);
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    // Deterministic order: process smallest index first.
    queue.sort_unstable_by(|a, b| b.cmp(a));
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop() {
        order.push(v);
        for &c in &children[v] {
            indegree[c] -= 1;
            if indegree[c] == 0 {
                queue.push(c);
                queue.sort_unstable_by(|a, b| b.cmp(a));
            }
        }
    }
    (order.len() == n).then_some(order)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(name: &str, card: usize, parents: Vec<usize>) -> NodeSpec {
        NodeSpec {
            name: name.into(),
            cardinality: card,
            parents,
        }
    }

    #[test]
    fn builds_valid_chain() {
        let t = TopologySpec::new(
            "chain3",
            vec![
                node("a", 2, vec![]),
                node("b", 3, vec![0]),
                node("c", 2, vec![1]),
            ],
        )
        .unwrap();
        assert_eq!(t.num_attrs(), 3);
        assert_eq!(t.domain_size(), 12);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.num_edges(), 2);
        assert_eq!(t.topo_order(), &[0, 1, 2]);
    }

    #[test]
    fn depth_zero_for_independent() {
        let t = TopologySpec::new("ind", vec![node("a", 2, vec![]), node("b", 2, vec![])]).unwrap();
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn depth_two_for_single_edge() {
        let t = TopologySpec::new(
            "one-edge",
            vec![node("a", 2, vec![]), node("b", 2, vec![0])],
        )
        .unwrap();
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn rejects_cycle() {
        let r = TopologySpec::new("cyc", vec![node("a", 2, vec![1]), node("b", 2, vec![0])]);
        assert_eq!(r.unwrap_err(), TopologyError::Cyclic);
    }

    #[test]
    fn rejects_self_loop() {
        let r = TopologySpec::new("selfloop", vec![node("a", 2, vec![0])]);
        assert_eq!(r.unwrap_err(), TopologyError::Cyclic);
    }

    #[test]
    fn rejects_bad_parent_index() {
        let r = TopologySpec::new("bad", vec![node("a", 2, vec![5])]);
        assert!(matches!(r, Err(TopologyError::ParentOutOfRange { .. })));
    }

    #[test]
    fn rejects_duplicate_parent() {
        let r = TopologySpec::new("dup", vec![node("a", 2, vec![]), node("b", 2, vec![0, 0])]);
        assert!(matches!(r, Err(TopologyError::DuplicateParent { .. })));
    }

    #[test]
    fn rejects_cardinality_one() {
        let r = TopologySpec::new("deg", vec![node("a", 1, vec![])]);
        assert!(matches!(
            r,
            Err(TopologyError::DegenerateCardinality { .. })
        ));
    }

    #[test]
    fn rejects_duplicate_names() {
        let r = TopologySpec::new("dupname", vec![node("x", 2, vec![]), node("x", 2, vec![])]);
        assert!(matches!(r, Err(TopologyError::DuplicateName(_))));
    }

    #[test]
    fn topo_order_respects_parents() {
        let t = TopologySpec::new(
            "diamond",
            vec![
                node("d", 2, vec![1, 2]), // listed first but depends on 1, 2
                node("b", 2, vec![3]),
                node("c", 2, vec![3]),
                node("a", 2, vec![]),
            ],
        )
        .unwrap();
        let pos: Vec<usize> = {
            let mut pos = vec![0; 4];
            for (ord, &v) in t.topo_order().iter().enumerate() {
                pos[v] = ord;
            }
            pos
        };
        assert!(pos[3] < pos[1] && pos[3] < pos[2]);
        assert!(pos[1] < pos[0] && pos[2] < pos[0]);
        assert_eq!(t.depth(), 3);
    }

    #[test]
    fn schema_mirrors_topology() {
        let t =
            TopologySpec::new("s", vec![node("age", 3, vec![]), node("inc", 2, vec![0])]).unwrap();
        let s = t.to_schema();
        assert_eq!(s.attr_count(), 2);
        assert_eq!(s.cardinality(mrsl_relation::AttrId(0)), 3);
        assert_eq!(s.attr(mrsl_relation::AttrId(1)).name(), "inc");
    }

    #[test]
    fn describe_mentions_every_node() {
        let t = TopologySpec::new("d", vec![node("x", 2, vec![]), node("y", 2, vec![0])]).unwrap();
        let d = t.describe();
        assert!(d.contains("x") && d.contains("y") && d.contains("<- x"));
    }
}
