//! Topology families used by the paper's benchmark (Fig. 7).
//!
//! * **independent** — no edges (BN4); depth 0.
//! * **chain** ("line-shaped") — `x0 → x1 → … → x{n-1}` (BN13–BN16);
//!   depth = n.
//! * **crown** — a two-layer band: roots `r0..r{k-1}` on top, children
//!   `c0..c{k-1}` below, child `ci` drawing from roots `ri` and
//!   `r((i+1) mod k)` (BN8, BN9, BN10–BN12, BN17, BN18); depth 2.
//! * **layered** — nodes split into layers; every node below the top layer
//!   takes up to two parents from the previous layer (BN1–BN3, BN5–BN7,
//!   BN19, BN20); depth = number of layers.

use crate::topology::{NodeSpec, TopologySpec};

/// Fully independent attributes (depth 0).
///
/// # Panics
/// Panics when `cards` is empty or any cardinality is < 2.
pub fn independent(name: &str, cards: &[usize]) -> TopologySpec {
    let nodes = cards
        .iter()
        .enumerate()
        .map(|(i, &c)| NodeSpec {
            name: format!("x{i}"),
            cardinality: c,
            parents: vec![],
        })
        .collect();
    TopologySpec::new(name, nodes).expect("independent topology is always valid")
}

/// A chain `x0 → x1 → … → x{n-1}` ("line-shaped", depth = n).
pub fn chain(name: &str, cards: &[usize]) -> TopologySpec {
    let nodes = cards
        .iter()
        .enumerate()
        .map(|(i, &c)| NodeSpec {
            name: format!("x{i}"),
            cardinality: c,
            parents: if i == 0 { vec![] } else { vec![i - 1] },
        })
        .collect();
    TopologySpec::new(name, nodes).expect("chain topology is always valid")
}

/// A crown: ⌈n/2⌉ roots, ⌊n/2⌋ children, child `i` with parents
/// `root i` and `root (i+1) mod k` (deduplicated when k = 1). Depth 2.
///
/// # Panics
/// Panics when `cards.len() < 2`.
pub fn crown(name: &str, cards: &[usize]) -> TopologySpec {
    let n = cards.len();
    assert!(n >= 2, "crown needs at least two nodes");
    let k_roots = n.div_ceil(2);
    let mut nodes: Vec<NodeSpec> = Vec::with_capacity(n);
    for (i, &c) in cards.iter().enumerate().take(k_roots) {
        nodes.push(NodeSpec {
            name: format!("r{i}"),
            cardinality: c,
            parents: vec![],
        });
    }
    for (j, &c) in cards.iter().enumerate().skip(k_roots) {
        let i = j - k_roots;
        let mut parents = vec![i % k_roots, (i + 1) % k_roots];
        parents.dedup();
        nodes.push(NodeSpec {
            name: format!("c{i}"),
            cardinality: c,
            parents,
        });
    }
    TopologySpec::new(name, nodes).expect("crown topology is always valid")
}

/// A layered DAG: `layers[l]` nodes in layer `l`; each node below the top
/// layer takes up to two parents from the previous layer (indices
/// `i mod prev` and `(i+1) mod prev`, deduplicated). Depth = `layers.len()`.
///
/// # Panics
/// Panics when layer sizes do not sum to `cards.len()` or any layer is empty.
pub fn layered(name: &str, cards: &[usize], layers: &[usize]) -> TopologySpec {
    assert_eq!(
        layers.iter().sum::<usize>(),
        cards.len(),
        "layer sizes must sum to the node count"
    );
    assert!(layers.iter().all(|&l| l > 0), "layers must be non-empty");
    let mut nodes: Vec<NodeSpec> = Vec::with_capacity(cards.len());
    let mut layer_start = 0usize;
    let mut prev_range: Option<(usize, usize)> = None;
    for (l, &size) in layers.iter().enumerate() {
        for i in 0..size {
            let idx = layer_start + i;
            let parents = match prev_range {
                None => vec![],
                Some((start, len)) => {
                    let mut ps = vec![start + (i % len), start + ((i + 1) % len)];
                    ps.sort_unstable();
                    ps.dedup();
                    ps
                }
            };
            nodes.push(NodeSpec {
                name: format!("l{l}n{i}"),
                cardinality: cards[idx],
                parents,
            });
        }
        prev_range = Some((layer_start, size));
        layer_start += size;
    }
    TopologySpec::new(name, nodes).expect("layered topology is always valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_has_depth_zero() {
        let t = independent("i", &[2, 3, 4]);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.num_edges(), 0);
        assert_eq!(t.domain_size(), 24);
    }

    #[test]
    fn chain_depth_equals_length() {
        for n in 2..=6 {
            let cards = vec![2; n];
            let t = chain("c", &cards);
            assert_eq!(t.depth(), n, "chain of {n}");
            assert_eq!(t.num_edges(), n - 1);
        }
    }

    #[test]
    fn crown_has_depth_two_and_double_parents() {
        let t = crown("cr", &[2, 2, 2, 2, 2, 2]);
        assert_eq!(t.depth(), 2);
        // 3 roots with no parents, 3 children with 2 parents each.
        let roots = t.nodes().iter().filter(|n| n.parents.is_empty()).count();
        assert_eq!(roots, 3);
        assert!(t
            .nodes()
            .iter()
            .filter(|n| !n.parents.is_empty())
            .all(|n| n.parents.len() == 2));
    }

    #[test]
    fn smallest_crown_dedupes_parents() {
        let t = crown("cr2", &[2, 2]);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.nodes()[1].parents, vec![0]);
    }

    #[test]
    fn odd_crown_keeps_extra_root() {
        let t = crown("cr5", &[2, 2, 2, 2, 2]);
        let roots = t.nodes().iter().filter(|n| n.parents.is_empty()).count();
        assert_eq!(roots, 3);
        assert_eq!(t.num_attrs(), 5);
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn layered_depth_equals_layer_count() {
        let t = layered("l", &[2; 10], &[3, 3, 2, 2]);
        assert_eq!(t.depth(), 4);
        assert_eq!(t.num_attrs(), 10);
        // Top layer has no parents; all others have 1-2 parents from the
        // immediately preceding layer.
        for (i, node) in t.nodes().iter().enumerate() {
            if i < 3 {
                assert!(node.parents.is_empty());
            } else {
                assert!(!node.parents.is_empty() && node.parents.len() <= 2);
            }
        }
    }

    #[test]
    fn layered_single_node_layers_form_chain() {
        let t = layered("l1", &[2, 2, 2], &[1, 1, 1]);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.nodes()[1].parents, vec![0]);
        assert_eq!(t.nodes()[2].parents, vec![1]);
    }

    #[test]
    #[should_panic(expected = "sum to the node count")]
    fn layered_rejects_mismatched_sizes() {
        layered("bad", &[2, 2], &[1, 2]);
    }
}
