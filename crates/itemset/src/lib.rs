//! Frequent itemset mining substrate (paper §III, first step of Alg. 1).
//!
//! The MRSL learning algorithm mines *frequent itemsets of attribute-value
//! pairs* from the complete part of the relation with Apriori, modified with
//! a second termination condition: stop after round `k` when either no new
//! frequent itemsets are found or more than `max_itemsets` are found at that
//! round (the paper uses `max_itemsets = 1000`).
//!
//! * [`item`] — packed `(attribute, value)` items and sorted [`Itemset`]s.
//!   An itemset here is the complete part of a tuple (footnote 1 of the
//!   paper): at most one value per attribute.
//! * [`tidset`] — transaction-id bitsets; candidate support is the popcount
//!   of the AND of the joined parents' tidsets.
//! * [`apriori`] — the level-wise miner and the [`FrequentItemsets`]
//!   collection it produces.

pub mod apriori;
pub mod item;
pub mod tidset;

pub use apriori::{AprioriConfig, FrequentItemset, FrequentItemsets, ItemsetId, MiningStats};
pub use item::{Item, Itemset};
pub use tidset::TidSet;
