//! Items and itemsets of attribute-value pairs.

use mrsl_relation::{Assignment, AttrId, AttrMask, PartialTuple, ValueId};
use serde::{Deserialize, Serialize};

/// One attribute-value pair, packed into 32 bits (attribute in the high
/// half). The packing makes item comparison a single integer compare and
/// keeps itemsets cache-friendly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Item(u32);

impl Item {
    /// Packs `(attr, value)`.
    #[inline]
    pub fn new(attr: AttrId, value: ValueId) -> Self {
        Item(((attr.0 as u32) << 16) | value.0 as u32)
    }

    /// The attribute half.
    #[inline]
    pub fn attr(self) -> AttrId {
        AttrId((self.0 >> 16) as u16)
    }

    /// The value half.
    #[inline]
    pub fn value(self) -> ValueId {
        ValueId((self.0 & 0xffff) as u16)
    }

    /// As an [`Assignment`].
    #[inline]
    pub fn assignment(self) -> Assignment {
        Assignment::new(self.attr(), self.value())
    }
}

impl From<Assignment> for Item {
    fn from(a: Assignment) -> Self {
        Item::new(a.attr, a.value)
    }
}

/// A set of items, sorted by attribute, with at most one value per attribute.
///
/// Corresponds to "the complete part of a tuple" (paper footnote 1). The
/// empty itemset is valid and has support 1 by definition.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Itemset {
    items: Box<[Item]>,
}

impl Itemset {
    /// The empty itemset.
    pub fn empty() -> Self {
        Itemset {
            items: Box::new([]),
        }
    }

    /// Builds an itemset from items; sorts and enforces the one-value-per-
    /// attribute invariant.
    ///
    /// # Panics
    /// Panics if two items share an attribute.
    pub fn new(mut items: Vec<Item>) -> Self {
        items.sort_unstable();
        for w in items.windows(2) {
            assert!(
                w[0].attr() != w[1].attr(),
                "itemset assigns attribute {:?} twice",
                w[0].attr()
            );
        }
        Itemset {
            items: items.into_boxed_slice(),
        }
    }

    /// Builds from the complete portion of a tuple.
    pub fn from_tuple(t: &PartialTuple) -> Self {
        Itemset {
            items: t.assignments().map(Item::from).collect(),
        }
    }

    /// Number of items.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True for the empty itemset.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The sorted items.
    #[inline]
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// The attributes covered by this itemset.
    pub fn attr_mask(&self) -> AttrMask {
        AttrMask::from_attrs(self.items.iter().map(|i| i.attr()))
    }

    /// The value assigned to `attr`, if present.
    pub fn value_of(&self, attr: AttrId) -> Option<ValueId> {
        self.items
            .binary_search_by_key(&attr, |i| i.attr())
            .ok()
            .map(|idx| self.items[idx].value())
    }

    /// True when `self ⊆ other` (every item of `self` appears in `other`).
    pub fn is_subset(&self, other: &Itemset) -> bool {
        if self.len() > other.len() {
            return false;
        }
        // Both sorted: linear merge scan.
        let mut oi = other.items.iter();
        'outer: for item in self.items.iter() {
            for candidate in oi.by_ref() {
                match candidate.cmp(item) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// True when every assignment of `self` is present in the tuple `t`.
    pub fn matches_tuple(&self, t: &PartialTuple) -> bool {
        self.items
            .iter()
            .all(|i| t.get(i.attr()) == Some(i.value()))
    }

    /// This itemset with `item` added (replacing nothing; `item.attr()` must
    /// not already be assigned).
    ///
    /// # Panics
    /// Panics if the attribute is already assigned.
    #[must_use]
    pub fn with_item(&self, item: Item) -> Itemset {
        let mut items = self.items.to_vec();
        items.push(item);
        Itemset::new(items)
    }

    /// This itemset with the item for `attr` removed (no-op if absent).
    #[must_use]
    pub fn without_attr(&self, attr: AttrId) -> Itemset {
        Itemset {
            items: self
                .items
                .iter()
                .copied()
                .filter(|i| i.attr() != attr)
                .collect(),
        }
    }

    /// Converts to a [`PartialTuple`] over a schema of `arity` attributes.
    pub fn to_tuple(&self, arity: usize) -> PartialTuple {
        let assignments: Vec<Assignment> = self.items.iter().map(|i| i.assignment()).collect();
        PartialTuple::from_assignments(arity, &assignments)
    }
}

impl FromIterator<Item> for Itemset {
    fn from_iter<T: IntoIterator<Item = Item>>(iter: T) -> Self {
        Itemset::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(a: u16, v: u16) -> Item {
        Item::new(AttrId(a), ValueId(v))
    }

    #[test]
    fn item_packs_and_unpacks() {
        let i = item(3, 7);
        assert_eq!(i.attr(), AttrId(3));
        assert_eq!(i.value(), ValueId(7));
        assert_eq!(i.assignment(), Assignment::new(AttrId(3), ValueId(7)));
    }

    #[test]
    fn item_order_is_attr_major() {
        assert!(item(0, 9) < item(1, 0));
        assert!(item(1, 0) < item(1, 1));
    }

    #[test]
    fn itemset_sorts_on_construction() {
        let s = Itemset::new(vec![item(2, 0), item(0, 1)]);
        assert_eq!(s.items()[0].attr(), AttrId(0));
        assert_eq!(s.items()[1].attr(), AttrId(2));
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn itemset_rejects_duplicate_attr() {
        Itemset::new(vec![item(1, 0), item(1, 1)]);
    }

    #[test]
    fn subset_checks() {
        let small = Itemset::new(vec![item(0, 1)]);
        let big = Itemset::new(vec![item(0, 1), item(2, 3)]);
        let other = Itemset::new(vec![item(0, 2), item(2, 3)]);
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
        assert!(Itemset::empty().is_subset(&small));
        assert!(small.is_subset(&small));
        assert!(!small.is_subset(&other)); // same attr, different value
    }

    #[test]
    fn value_of_finds_by_attr() {
        let s = Itemset::new(vec![item(0, 1), item(5, 2)]);
        assert_eq!(s.value_of(AttrId(5)), Some(ValueId(2)));
        assert_eq!(s.value_of(AttrId(1)), None);
    }

    #[test]
    fn matches_tuple_checks_values() {
        let s = Itemset::new(vec![item(0, 1), item(2, 0)]);
        let t_ok = PartialTuple::from_options(&[Some(1), Some(5), Some(0), None]);
        let t_missing = PartialTuple::from_options(&[Some(1), None, None, None]);
        let t_wrong = PartialTuple::from_options(&[Some(1), None, Some(1), None]);
        assert!(s.matches_tuple(&t_ok));
        assert!(!s.matches_tuple(&t_missing));
        assert!(!s.matches_tuple(&t_wrong));
        assert!(Itemset::empty().matches_tuple(&t_missing));
    }

    #[test]
    fn with_and_without() {
        let s = Itemset::new(vec![item(1, 1)]);
        let s2 = s.with_item(item(0, 0));
        assert_eq!(s2.len(), 2);
        assert_eq!(s2.items()[0], item(0, 0));
        let s3 = s2.without_attr(AttrId(1));
        assert_eq!(s3.len(), 1);
        assert_eq!(s3.value_of(AttrId(0)), Some(ValueId(0)));
        // Removing an absent attribute is a no-op.
        assert_eq!(s3.without_attr(AttrId(9)), s3);
    }

    #[test]
    fn tuple_roundtrip() {
        let s = Itemset::new(vec![item(0, 1), item(3, 1)]);
        let t = s.to_tuple(4);
        assert_eq!(Itemset::from_tuple(&t), s);
        assert_eq!(t.mask().count(), 2);
    }

    #[test]
    fn attr_mask_covers_items() {
        let s = Itemset::new(vec![item(0, 1), item(3, 1)]);
        assert!(s.attr_mask().contains(AttrId(0)));
        assert!(s.attr_mask().contains(AttrId(3)));
        assert!(!s.attr_mask().contains(AttrId(1)));
    }
}
