//! Transaction-id bitsets for support counting.
//!
//! Apriori's dominant cost is support counting. Instead of re-scanning the
//! relation per candidate, each frequent itemset carries the bitset of the
//! point ids it matches; a candidate's tidset is the AND of its two join
//! parents' tidsets (the candidate is their union, so its matchers are the
//! intersection). Counting is then one popcount pass over `u64` blocks.

use serde::{Deserialize, Serialize};

/// A fixed-universe bitset over transaction (point) ids `0..universe`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TidSet {
    blocks: Box<[u64]>,
    universe: usize,
}

impl TidSet {
    /// An empty set over `universe` transactions.
    pub fn new(universe: usize) -> Self {
        TidSet {
            blocks: vec![0u64; universe.div_ceil(64)].into_boxed_slice(),
            universe,
        }
    }

    /// A set containing all of `0..universe`.
    pub fn full(universe: usize) -> Self {
        let mut s = Self::new(universe);
        for (i, block) in s.blocks.iter_mut().enumerate() {
            let bits_here = (universe - i * 64).min(64);
            *block = if bits_here == 64 {
                u64::MAX
            } else {
                (1u64 << bits_here) - 1
            };
        }
        s
    }

    /// The universe size this set was created with.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Adds transaction `tid`.
    ///
    /// # Panics
    /// Panics if `tid` is outside the universe.
    #[inline]
    pub fn insert(&mut self, tid: usize) {
        assert!(
            tid < self.universe,
            "tid {tid} out of universe {}",
            self.universe
        );
        self.blocks[tid / 64] |= 1u64 << (tid % 64);
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, tid: usize) -> bool {
        tid < self.universe && self.blocks[tid / 64] & (1u64 << (tid % 64)) != 0
    }

    /// Number of transactions in the set.
    pub fn count(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// `|self ∩ other|` without materializing the intersection.
    ///
    /// # Panics
    /// Panics if the universes differ.
    pub fn intersect_count(&self, other: &TidSet) -> usize {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        self.blocks
            .iter()
            .zip(other.blocks.iter())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Materialized intersection.
    ///
    /// # Panics
    /// Panics if the universes differ.
    pub fn intersect(&self, other: &TidSet) -> TidSet {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        TidSet {
            blocks: self
                .blocks
                .iter()
                .zip(other.blocks.iter())
                .map(|(a, b)| a & b)
                .collect(),
            universe: self.universe,
        }
    }

    /// Iterates over member transaction ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks.iter().enumerate().flat_map(|(bi, &block)| {
            let mut bits = block;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(bi * 64 + tz)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_count() {
        let mut s = TidSet::new(130);
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(129);
        assert_eq!(s.count(), 4);
        assert!(s.contains(63));
        assert!(s.contains(129));
        assert!(!s.contains(1));
        assert!(!s.contains(500)); // out of universe → false, not panic
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn insert_out_of_universe_panics() {
        TidSet::new(10).insert(10);
    }

    #[test]
    fn full_has_exact_count() {
        for n in [0usize, 1, 63, 64, 65, 128, 200] {
            let s = TidSet::full(n);
            assert_eq!(s.count(), n, "universe {n}");
        }
    }

    #[test]
    fn intersection_and_count_agree() {
        let mut a = TidSet::new(100);
        let mut b = TidSet::new(100);
        for i in (0..100).step_by(2) {
            a.insert(i);
        }
        for i in (0..100).step_by(3) {
            b.insert(i);
        }
        let both = a.intersect(&b);
        // Multiples of 6 below 100: 0, 6, ..., 96 → 17 of them.
        assert_eq!(both.count(), 17);
        assert_eq!(a.intersect_count(&b), 17);
        assert!(both.contains(12));
        assert!(!both.contains(9));
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn mismatched_universe_panics() {
        let _ = TidSet::new(5).intersect_count(&TidSet::new(6));
    }

    #[test]
    fn iter_yields_sorted_members() {
        let mut s = TidSet::new(70);
        for &i in &[69, 3, 64, 0] {
            s.insert(i);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![0, 3, 64, 69]);
    }

    #[test]
    fn empty_universe_is_fine() {
        let s = TidSet::new(0);
        assert_eq!(s.count(), 0);
        assert_eq!(s.iter().count(), 0);
    }
}
