//! Level-wise Apriori with the paper's two termination conditions.
//!
//! `ComputeFreqItemsets(θ, maxItemsets)` of Algorithm 1: bottom-up, starting
//! from frequent 1-itemsets, joining pairs of (k−1)-itemsets that share a
//! (k−2)-prefix, pruning candidates with an infrequent subset, and counting
//! support via tidset intersection. Mining stops at round `k` when no new
//! frequent itemsets are found **or** more than `max_itemsets` were found at
//! that round (the itemsets of the truncating round are kept; only deeper
//! rounds are skipped — this matches the paper's description of the
//! optimization that bounds model-building time).
//!
//! The empty itemset (support 1) is always present: it anchors the root
//! meta-rule `P(a)` of every MRSL.

use crate::item::{Item, Itemset};
use crate::tidset::TidSet;
use mrsl_relation::{CompleteTuple, Schema, ValueId};
use mrsl_util::FxHashMap;
use mrsl_util::Stopwatch;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Handle of a frequent itemset within a [`FrequentItemsets`] collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ItemsetId(pub u32);

impl ItemsetId {
    /// The index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A mined frequent itemset with its absolute and relative support.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrequentItemset {
    /// The itemset.
    pub itemset: Itemset,
    /// Number of points in `Rc` matching the itemset.
    pub count: usize,
    /// `count / |Rc|` (Def. 2.3); 1.0 for the empty itemset.
    pub support: f64,
}

/// Mining parameters of Algorithm 1.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AprioriConfig {
    /// Support threshold θ: itemsets with support below this are discarded.
    pub support_threshold: f64,
    /// Stop after a round that finds more than this many frequent itemsets.
    /// The paper sets 1000 and reports it "effectively controls
    /// model-building time, without a significant effect on accuracy".
    pub max_itemsets: usize,
}

impl Default for AprioriConfig {
    fn default() -> Self {
        Self {
            support_threshold: 0.01,
            max_itemsets: 1000,
        }
    }
}

/// Statistics of one mining run (reported by the Fig. 4 experiments).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MiningStats {
    /// Number of frequent itemsets found per level (level 0 = empty itemset).
    pub level_counts: Vec<usize>,
    /// Candidates generated per level before pruning/counting.
    pub candidates_generated: usize,
    /// True when mining stopped because a round exceeded `max_itemsets`.
    pub truncated: bool,
    /// Wall-clock mining time.
    pub elapsed: Duration,
}

/// The output of mining: an arena of frequent itemsets with an index by
/// itemset and by level.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrequentItemsets {
    sets: Vec<FrequentItemset>,
    #[serde(skip)]
    index: FxHashMap<Itemset, ItemsetId>,
    levels: Vec<Vec<ItemsetId>>,
    num_points: usize,
    stats: MiningStats,
}

impl FrequentItemsets {
    /// Mines `points` with the given configuration.
    ///
    /// `schema` provides the attribute domains used to enumerate 1-items.
    pub fn mine(schema: &Schema, points: &[CompleteTuple], config: &AprioriConfig) -> Self {
        let sw = Stopwatch::start();
        let n = points.len();
        let mut sets: Vec<FrequentItemset> = Vec::new();
        let mut levels: Vec<Vec<ItemsetId>> = Vec::new();
        let mut stats = MiningStats::default();

        // Level 0: the empty itemset, support 1 by definition.
        sets.push(FrequentItemset {
            itemset: Itemset::empty(),
            count: n,
            support: 1.0,
        });
        levels.push(vec![ItemsetId(0)]);
        stats.level_counts.push(1);

        // The threshold in absolute counts; an itemset is frequent when
        // `count ≥ θ·n` (with a tiny epsilon for floating-point robustness).
        let min_count = (config.support_threshold * n as f64 - 1e-9).ceil().max(0.0) as usize;

        // Level 1: one counting pass over the points.
        let mut level_sets: Vec<(Itemset, TidSet)> = Vec::new();
        if n > 0 {
            for (aid, attr) in schema.iter() {
                let mut tidsets: Vec<TidSet> =
                    (0..attr.cardinality()).map(|_| TidSet::new(n)).collect();
                for (tid, p) in points.iter().enumerate() {
                    tidsets[p.value(aid).index()].insert(tid);
                }
                for (v, tids) in tidsets.into_iter().enumerate() {
                    let count = tids.count();
                    if count >= min_count && count > 0 {
                        let item = Item::new(aid, ValueId(v as u16));
                        level_sets.push((Itemset::new(vec![item]), tids));
                    }
                }
            }
        }

        let mut truncated = false;
        while !level_sets.is_empty() {
            level_sets.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            let mut level_ids = Vec::with_capacity(level_sets.len());
            for (itemset, tids) in &level_sets {
                let id = ItemsetId(sets.len() as u32);
                sets.push(FrequentItemset {
                    itemset: itemset.clone(),
                    count: tids.count(),
                    support: tids.count() as f64 / n as f64,
                });
                level_ids.push(id);
            }
            stats.level_counts.push(level_ids.len());
            let found_this_round = level_ids.len();
            levels.push(level_ids);

            if found_this_round > config.max_itemsets {
                truncated = true;
                break;
            }

            // Generate candidates for the next level by prefix join.
            let mut next: Vec<(Itemset, TidSet)> = Vec::new();
            let frequent_now: FxHashMap<&Itemset, ()> =
                level_sets.iter().map(|(s, _)| (s, ())).collect();
            let k = level_sets[0].0.len();
            let mut group_start = 0;
            while group_start < level_sets.len() {
                let prefix = &level_sets[group_start].0.items()[..k - 1];
                let mut group_end = group_start + 1;
                while group_end < level_sets.len()
                    && &level_sets[group_end].0.items()[..k - 1] == prefix
                {
                    group_end += 1;
                }
                for i in group_start..group_end {
                    for j in (i + 1)..group_end {
                        let (si, ti) = &level_sets[i];
                        let (sj, tj) = &level_sets[j];
                        let last_i = si.items()[k - 1];
                        let last_j = sj.items()[k - 1];
                        // One value per attribute: skip same-attribute joins.
                        if last_i.attr() == last_j.attr() {
                            continue;
                        }
                        stats.candidates_generated += 1;
                        let candidate = si.with_item(last_j);
                        // Prune: every (k)-subset must be frequent. The two
                        // parents are; check the remaining k-1 subsets.
                        if !subsets_frequent(&candidate, &frequent_now, last_i, last_j) {
                            continue;
                        }
                        let tids = ti.intersect(tj);
                        let count = tids.count();
                        if count >= min_count && count > 0 {
                            next.push((candidate, tids));
                        }
                    }
                }
                group_start = group_end;
            }
            level_sets = next;
        }

        stats.truncated = truncated;
        stats.elapsed = sw.elapsed();
        let index = sets
            .iter()
            .enumerate()
            .map(|(i, fs)| (fs.itemset.clone(), ItemsetId(i as u32)))
            .collect();
        FrequentItemsets {
            sets,
            index,
            levels,
            num_points: n,
            stats,
        }
    }

    /// Number of frequent itemsets (including the empty itemset).
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True when only the empty itemset was mined.
    pub fn is_empty(&self) -> bool {
        self.sets.len() <= 1
    }

    /// The itemset arena entry for `id`.
    pub fn get(&self, id: ItemsetId) -> &FrequentItemset {
        &self.sets[id.index()]
    }

    /// Looks up the id of an itemset.
    pub fn id_of(&self, itemset: &Itemset) -> Option<ItemsetId> {
        self.index.get(itemset).copied()
    }

    /// Relative support of an itemset, if frequent.
    pub fn support_of(&self, itemset: &Itemset) -> Option<f64> {
        self.id_of(itemset).map(|id| self.get(id).support)
    }

    /// Absolute match count of an itemset, if frequent.
    pub fn count_of(&self, itemset: &Itemset) -> Option<usize> {
        self.id_of(itemset).map(|id| self.get(id).count)
    }

    /// Iterates over all frequent itemsets.
    pub fn iter(&self) -> impl Iterator<Item = &FrequentItemset> {
        self.sets.iter()
    }

    /// Ids of the frequent itemsets of size `k` (empty slice if none).
    pub fn level(&self, k: usize) -> &[ItemsetId] {
        self.levels.get(k).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Largest itemset size mined.
    pub fn max_level(&self) -> usize {
        self.levels.len().saturating_sub(1)
    }

    /// `|Rc|` — the number of points mining ran over.
    pub fn num_points(&self) -> usize {
        self.num_points
    }

    /// Mining statistics.
    pub fn stats(&self) -> &MiningStats {
        &self.stats
    }
}

/// Checks that every (k−1)-subset of `candidate` is frequent, skipping the
/// two join parents which are frequent by construction.
fn subsets_frequent(
    candidate: &Itemset,
    frequent: &FxHashMap<&Itemset, ()>,
    parent_last_a: Item,
    parent_last_b: Item,
) -> bool {
    for drop in candidate.items() {
        // Dropping either of the two "last" items reproduces a join parent.
        if *drop == parent_last_a || *drop == parent_last_b {
            continue;
        }
        let sub = candidate.without_attr(drop.attr());
        if !frequent.contains_key(&sub) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrsl_relation::relation::fig1_relation;
    use mrsl_relation::AttrId;

    fn mine_fig1(theta: f64) -> FrequentItemsets {
        let rel = fig1_relation();
        FrequentItemsets::mine(
            rel.schema(),
            rel.complete_part(),
            &AprioriConfig {
                support_threshold: theta,
                max_itemsets: 1000,
            },
        )
    }

    fn item(a: u16, v: u16) -> Item {
        Item::new(AttrId(a), ValueId(v))
    }

    #[test]
    fn empty_itemset_is_always_present() {
        let f = mine_fig1(0.9);
        assert_eq!(f.support_of(&Itemset::empty()), Some(1.0));
        assert_eq!(f.level(0).len(), 1);
    }

    #[test]
    fn fig1_singleton_supports() {
        // Rc = {t2,t4,t6,t7,t9,t13,t15,t17}; age=20 on 4/8 points,
        // edu=HS on 4/8, inc=50K on 4/8, nw=500K on 4/8.
        let f = mine_fig1(0.05);
        let supp = |a, v| f.support_of(&Itemset::new(vec![item(a, v)])).unwrap();
        assert!((supp(0, 0) - 0.5).abs() < 1e-12); // age=20
        assert!((supp(1, 0) - 0.5).abs() < 1e-12); // edu=HS
        assert!((supp(2, 0) - 0.5).abs() < 1e-12); // inc=50K
        assert!((supp(3, 1) - 0.5).abs() < 1e-12); // nw=500K
    }

    #[test]
    fn fig1_pair_support_matches_brute_force() {
        let rel = fig1_relation();
        let f = mine_fig1(0.01);
        // supp(age=20 ∧ edu=HS) = |{t4,t6,t7}| / 8.
        let pair = Itemset::new(vec![item(0, 0), item(1, 0)]);
        assert!((f.support_of(&pair).unwrap() - 3.0 / 8.0).abs() < 1e-12);
        // Every mined support equals a brute-force count over Rc.
        for fs in f.iter() {
            let brute = rel
                .complete_part()
                .iter()
                .filter(|p| fs.itemset.matches_tuple(&p.to_partial()))
                .count();
            assert_eq!(fs.count, brute, "itemset {:?}", fs.itemset);
        }
    }

    #[test]
    fn threshold_filters_infrequent() {
        // With θ = 0.3 only itemsets matching ≥ 3 of the 8 points survive
        // (min_count = ceil(2.4) = 3).
        let f = mine_fig1(0.3);
        for fs in f.iter() {
            assert!(
                fs.itemset.is_empty() || fs.support >= 0.3 - 1e-9,
                "{:?} has support {}",
                fs.itemset,
                fs.support
            );
        }
        // age=30 appears once (t9) → excluded.
        assert_eq!(f.support_of(&Itemset::new(vec![item(0, 1)])), None);
    }

    #[test]
    fn downward_closure_holds() {
        let f = mine_fig1(0.1);
        for fs in f.iter() {
            for drop in fs.itemset.items() {
                let sub = fs.itemset.without_attr(drop.attr());
                let sub_support = f
                    .support_of(&sub)
                    .unwrap_or_else(|| panic!("subset {sub:?} of {:?} missing", fs.itemset));
                assert!(sub_support >= fs.support - 1e-12);
            }
        }
    }

    #[test]
    fn max_itemsets_truncates_deeper_levels() {
        // With max_itemsets = 2, level 1 (which has > 2 itemsets at θ=0.01)
        // is kept but no deeper level is mined.
        let rel = fig1_relation();
        let f = FrequentItemsets::mine(
            rel.schema(),
            rel.complete_part(),
            &AprioriConfig {
                support_threshold: 0.01,
                max_itemsets: 2,
            },
        );
        assert!(f.stats().truncated);
        assert_eq!(f.max_level(), 1);
        assert!(f.level(1).len() > 2);
        assert!(f.level(2).is_empty());
    }

    #[test]
    fn zero_points_yields_only_empty_itemset() {
        let rel = fig1_relation();
        let f = FrequentItemsets::mine(rel.schema(), &[], &AprioriConfig::default());
        assert_eq!(f.len(), 1);
        assert!(f.is_empty());
        assert_eq!(f.num_points(), 0);
    }

    #[test]
    fn level_counts_match_levels() {
        let f = mine_fig1(0.05);
        for k in 0..=f.max_level() {
            assert_eq!(f.stats().level_counts[k], f.level(k).len());
        }
        assert!(!f.stats().truncated);
        assert!(f.stats().candidates_generated > 0);
    }

    #[test]
    fn no_itemset_assigns_attr_twice() {
        let f = mine_fig1(0.01);
        for fs in f.iter() {
            let attrs = fs.itemset.attr_mask();
            assert_eq!(attrs.count(), fs.itemset.len());
        }
    }

    #[test]
    fn full_width_itemsets_reachable_with_zero_threshold() {
        let f = mine_fig1(0.0);
        // At θ=0 every observed point's full itemset is frequent.
        assert_eq!(f.max_level(), 4);
        let rel = fig1_relation();
        for p in rel.complete_part() {
            let is = Itemset::from_tuple(&p.to_partial());
            assert!(f.support_of(&is).is_some(), "point itemset {is:?} missing");
        }
    }
}
