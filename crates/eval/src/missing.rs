//! Missing-value injection.
//!
//! "The test set is further processed and one or several attributes in
//! each tuple are replaced with '?'. Which attributes are replaced in a
//! given tuple is chosen uniformly at random" (§VI-A).

use mrsl_relation::{AttrId, CompleteTuple, PartialTuple};
use mrsl_util::{derive_seed, seeded_rng};
use rand::seq::SliceRandom;

/// Replaces exactly `k` uniformly chosen attribute values per tuple with
/// `?`. Deterministic per `seed`.
///
/// # Panics
/// Panics when `k` is 0 or exceeds the tuple arity.
pub fn inject_missing(points: &[CompleteTuple], k: usize, seed: u64) -> Vec<PartialTuple> {
    let mut rng = seeded_rng(derive_seed(seed, &[0x4d15, k as u64]));
    points
        .iter()
        .map(|p| {
            let arity = p.arity();
            assert!(
                k >= 1 && k <= arity,
                "cannot hide {k} of {arity} attributes"
            );
            let mut attrs: Vec<u16> = (0..arity as u16).collect();
            attrs.shuffle(&mut rng);
            let mut t = p.to_partial();
            for &a in &attrs[..k] {
                t = t.without_attr(AttrId(a));
            }
            t
        })
        .collect()
}

/// Replaces a per-tuple uniformly chosen number `k ∈ [1, max_k]` of
/// attribute values with `?` — the mixed workloads of the Fig. 11
/// experiment ("a workload of incomplete tuples with a varying number of
/// missing values").
///
/// # Panics
/// Panics when `max_k` is 0 or exceeds the tuple arity.
pub fn inject_missing_varying(
    points: &[CompleteTuple],
    max_k: usize,
    seed: u64,
) -> Vec<PartialTuple> {
    let mut rng = seeded_rng(derive_seed(seed, &[0x4d16, max_k as u64]));
    points
        .iter()
        .map(|p| {
            let arity = p.arity();
            assert!(
                max_k >= 1 && max_k <= arity,
                "cannot hide up to {max_k} of {arity} attributes"
            );
            let k = rand::Rng::gen_range(&mut rng, 1..=max_k);
            let mut attrs: Vec<u16> = (0..arity as u16).collect();
            attrs.shuffle(&mut rng);
            let mut t = p.to_partial();
            for &a in &attrs[..k] {
                t = t.without_attr(AttrId(a));
            }
            t
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points(n: usize) -> Vec<CompleteTuple> {
        (0..n)
            .map(|i| CompleteTuple::from_values(vec![i as u16 % 2, 0, 1, 0]))
            .collect()
    }

    #[test]
    fn hides_exactly_k_attributes() {
        for k in 1..=4 {
            for t in inject_missing(&points(20), k, 3) {
                assert_eq!(t.missing_mask().count(), k);
                assert_eq!(t.mask().count(), 4 - k);
            }
        }
    }

    #[test]
    fn preserves_observed_values() {
        let pts = points(10);
        let injected = inject_missing(&pts, 2, 9);
        for (t, p) in injected.iter().zip(&pts) {
            assert!(t.matches_point(p), "observed values must be unchanged");
        }
    }

    #[test]
    fn deterministic_per_seed_and_varies_across_tuples() {
        let pts = points(50);
        let a = inject_missing(&pts, 1, 5);
        let b = inject_missing(&pts, 1, 5);
        assert_eq!(a, b);
        // With 50 tuples and 4 attributes, the hidden attribute must vary.
        let distinct: std::collections::HashSet<u64> =
            a.iter().map(|t| t.missing_mask().bits()).collect();
        assert!(distinct.len() > 1, "injection should vary across tuples");
    }

    #[test]
    fn choice_is_roughly_uniform() {
        let pts = points(8000);
        let injected = inject_missing(&pts, 1, 11);
        let mut counts = [0usize; 4];
        for t in &injected {
            let hidden = t.missing_mask().iter().next().unwrap();
            counts[hidden.index()] += 1;
        }
        for &c in &counts {
            let f = c as f64 / 8000.0;
            assert!((f - 0.25).abs() < 0.03, "attr frequency {f}");
        }
    }

    #[test]
    #[should_panic(expected = "cannot hide")]
    fn rejects_hiding_everything_plus_one() {
        inject_missing(&points(1), 5, 0);
    }

    #[test]
    fn varying_injection_spans_the_range() {
        let injected = inject_missing_varying(&points(500), 3, 7);
        let mut seen = std::collections::HashSet::new();
        for t in &injected {
            let k = t.missing_mask().count();
            assert!((1..=3).contains(&k));
            seen.insert(k);
        }
        assert_eq!(seen.len(), 3, "all missing counts 1..=3 should occur");
    }

    #[test]
    fn varying_injection_is_deterministic() {
        let pts = points(50);
        assert_eq!(
            inject_missing_varying(&pts, 2, 9),
            inject_missing_varying(&pts, 2, 9)
        );
    }
}
