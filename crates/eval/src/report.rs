//! Paper-style experiment reports: an ASCII table plus JSON export.

use mrsl_util::Table;
use serde_json::{json, Value};

/// A reproduced table or figure: identifier, title, tabulated rows and
/// free-form notes (parameter provenance, caveats).
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id (`table2`, `fig4a`, …).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The rows the paper's table/figure reports.
    pub table: Table,
    /// Notes printed under the table.
    pub notes: Vec<String>,
}

impl Report {
    /// Creates a report.
    pub fn new(id: impl Into<String>, title: impl Into<String>, table: Table) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            table,
            notes: Vec::new(),
        }
    }

    /// Appends a note.
    pub fn note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Renders the report as console text.
    pub fn render(&self) -> String {
        let mut out = format!(
            "== {} — {} ==\n{}",
            self.id,
            self.title,
            self.table.render()
        );
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }

    /// Machine-readable form (consumed by EXPERIMENTS.md tooling).
    pub fn to_json(&self) -> Value {
        json!({
            "id": self.id,
            "title": self.title,
            "header": self.table.header(),
            "rows": self.table.rows(),
            "notes": self.notes,
        })
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut t = Table::new(["x", "y"]);
        t.push_row(["1", "2"]);
        Report::new("figX", "Sample", t).note("scaled run")
    }

    #[test]
    fn renders_id_title_and_notes() {
        let s = sample().render();
        assert!(s.contains("figX"));
        assert!(s.contains("Sample"));
        assert!(s.contains("note: scaled run"));
        assert!(s.contains('1'));
    }

    #[test]
    fn json_contains_rows() {
        let v = sample().to_json();
        assert_eq!(v["id"], "figX");
        assert_eq!(v["rows"][0][1], "2");
        assert_eq!(v["header"][0], "x");
        assert_eq!(v["notes"][0], "scaled run");
    }
}
