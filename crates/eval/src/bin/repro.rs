//! `repro` — regenerates every table and figure of the paper.
//!
//! Usage:
//!   repro <experiment|all> [--full] [--json] [--seed N] [--threads N]
//!
//! Experiments: table1 fig7 fig4a fig4b fig4c table2 fig5 fig6 fig8a fig8b
//!              fig8c fig9 fig10 fig11 ablation queries joins learn
//!
//! Defaults run scaled-down parameters (minutes); `--full` restores the
//! paper-scale settings (CPU-hours). `--json` emits machine-readable
//! output for EXPERIMENTS.md tooling.

use mrsl_eval::experiments::{
    ablation, fig10, fig11, fig4, fig5, fig6, fig8, fig9, joins, learn, queries, table1, table2,
    ExpOptions,
};
use mrsl_eval::Report;
use std::io::Write as _;

type Runner = fn(&ExpOptions) -> Report;

fn registry() -> Vec<(&'static str, Runner)> {
    vec![
        ("table1", table1::run as Runner),
        ("fig7", table1::run_fig7),
        ("fig4a", fig4::run_fig4a),
        ("fig4b", fig4::run_fig4b),
        ("fig4c", fig4::run_fig4c),
        ("table2", table2::run),
        ("fig5", fig5::run),
        ("fig6", fig6::run),
        ("fig8a", fig8::run_fig8a),
        ("fig8b", fig8::run_fig8b),
        ("fig8c", fig8::run_fig8c),
        ("fig9", fig9::run),
        ("fig10", fig10::run),
        ("fig11", fig11::run),
        ("ablation", ablation::run),
        ("queries", queries::run),
        ("joins", joins::run),
        ("learn", learn::run),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = ExpOptions::default();
    let mut json = false;
    let mut targets: Vec<String> = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--full" => opts.full = true,
            "--json" => json = true,
            "--seed" => {
                opts.seed = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--threads" => {
                opts.threads = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs an integer"));
            }
            "--instances" => {
                opts.instances = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--instances needs an integer"));
            }
            "--splits" => {
                opts.splits = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--splits needs an integer"));
            }
            "--help" | "-h" => usage(""),
            other if other.starts_with('-') => usage(&format!("unknown flag {other}")),
            exp => targets.push(exp.to_string()),
        }
    }
    if targets.is_empty() {
        usage("no experiment given");
    }

    let registry = registry();
    let selected: Vec<&(&str, Runner)> = if targets.iter().any(|t| t == "all") {
        registry.iter().collect()
    } else {
        targets
            .iter()
            .map(|t| {
                registry
                    .iter()
                    .find(|(name, _)| name == t)
                    .unwrap_or_else(|| usage(&format!("unknown experiment `{t}`")))
            })
            .collect()
    };

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut json_reports = Vec::new();
    for (name, runner) in selected {
        let started = std::time::Instant::now();
        let report = runner(&opts);
        let secs = started.elapsed().as_secs_f64();
        if json {
            let mut value = report.to_json();
            value["elapsed_secs"] = serde_json::json!(secs);
            value["full_scale"] = serde_json::json!(opts.full);
            json_reports.push(value);
        } else {
            writeln!(out, "{report}").expect("stdout");
            writeln!(out, "[{name} finished in {secs:.1}s]\n").expect("stdout");
        }
    }
    if json {
        serde_json::to_writer_pretty(&mut out, &json_reports).expect("stdout");
        writeln!(out).expect("stdout");
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: repro <experiment ...|all> [--full] [--json] [--seed N] [--threads N] \
         [--instances N] [--splits N]\n\
         experiments: table1 fig7 fig4a fig4b fig4c table2 fig5 fig6 fig8a fig8b fig8c \
         fig9 fig10 fig11 ablation queries joins learn"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
