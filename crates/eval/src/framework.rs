//! The per-cell evaluation pipeline (§VI-A).
//!
//! A *cell* is one (network topology, instance, split) combination with
//! fixed dataset and mining parameters. The paper averages each reported
//! number over 3 random instances × 3 random splits; the experiment
//! modules assemble grids of [`CellSpec`]s and average the outcomes.

use mrsl_bayesnet::{conditional, BayesianNetwork, TopologySpec};
use mrsl_core::{
    infer_batch, workload_engine, GibbsConfig, InferContext, LearnConfig, MrslModel, VotingConfig,
    WorkloadStrategy,
};
use mrsl_relation::CompleteTuple;
use mrsl_util::{derive_seed, seeded_rng, Stopwatch};
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

use crate::metrics::{kl_divergence, top1_match};
use crate::missing::inject_missing;

/// Dirichlet concentration used when instantiating CPTs. Mildly skewed
/// rows (α < 1) give every network a meaningful most-probable value, which
/// makes top-1 accuracy informative — near-uniform CPDs would turn top-1
/// into a coin flip (a sensitivity the paper itself notes in §VI-A).
pub const DEFAULT_ALPHA: f64 = 0.5;

/// One evaluation cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellSpec {
    /// Network topology.
    pub topology: TopologySpec,
    /// Instance index (new CPTs per instance).
    pub instance: u64,
    /// Split index (new train/test shuffle per split).
    pub split: u64,
    /// Training set size.
    pub train_size: usize,
    /// Test set size.
    pub test_size: usize,
    /// Mining support threshold θ.
    pub support: f64,
    /// Apriori level cap.
    pub max_itemsets: usize,
    /// Dirichlet concentration for CPT instantiation.
    pub alpha: f64,
    /// Master seed.
    pub seed: u64,
}

impl CellSpec {
    /// A cell with the common defaults; experiments override fields.
    pub fn new(topology: TopologySpec, train_size: usize, test_size: usize) -> Self {
        Self {
            topology,
            instance: 0,
            split: 0,
            train_size,
            test_size,
            support: 0.01,
            max_itemsets: 1000,
            alpha: DEFAULT_ALPHA,
            seed: 0x9d1e,
        }
    }

    /// Runs the learning phase of the pipeline: instantiate → sample →
    /// split → learn.
    pub fn build(&self) -> EvalContext {
        let instance_seed =
            derive_seed(self.seed, &[hash_name(self.topology.name()), self.instance]);
        let bn = BayesianNetwork::instantiate(&self.topology, self.alpha, instance_seed);

        // One dataset per instance; the split only reshuffles it.
        let total = self.train_size + self.test_size;
        let mut data = mrsl_bayesnet::sampler::sample_dataset(&bn, total, instance_seed);
        let mut rng = seeded_rng(derive_seed(instance_seed, &[0x5711, self.split]));
        data.shuffle(&mut rng);
        let test_points = data.split_off(self.train_size);
        let train = data;

        let sw = Stopwatch::start();
        let model = MrslModel::learn(
            bn.schema(),
            &train,
            &LearnConfig {
                support_threshold: self.support,
                max_itemsets: self.max_itemsets,
            },
        );
        let learn_secs = sw.elapsed_secs();
        EvalContext {
            spec: self.clone(),
            bn,
            model,
            test_points,
            learn_secs,
        }
    }
}

const fn hash_name_seed() -> u64 {
    0xbeef
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(hash_name_seed(), |acc, b| {
        acc.wrapping_mul(31).wrapping_add(b as u64)
    })
}

/// A built cell: the generating network, the learned model and the
/// held-out test points.
#[derive(Debug)]
pub struct EvalContext {
    /// The cell parameters.
    pub spec: CellSpec,
    /// The generating network (ground truth).
    pub bn: BayesianNetwork,
    /// The learned MRSL model.
    pub model: MrslModel,
    /// Held-out complete test tuples (missing values injected per task).
    pub test_points: Vec<CompleteTuple>,
    /// Wall-clock learning time in seconds (Fig. 4).
    pub learn_secs: f64,
}

/// Averaged accuracy over a batch of inference tasks.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Score {
    /// Mean KL divergence `KL(true ‖ estimate)`.
    pub kl: f64,
    /// Fraction of correct top-1 guesses.
    pub top1: f64,
    /// Number of scored tuples.
    pub n: usize,
}

/// Learn-phase outcome of a cell (the Fig. 4 quantities).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CellOutcome {
    /// Learning wall-clock seconds.
    pub learn_secs: f64,
    /// Total meta-rules.
    pub model_size: usize,
}

impl EvalContext {
    /// Learn-phase outcome.
    pub fn outcome(&self) -> CellOutcome {
        CellOutcome {
            learn_secs: self.learn_secs,
            model_size: self.model.size(),
        }
    }

    /// Scores single-attribute inference (§VI-C): hides one uniformly
    /// chosen attribute per test tuple, estimates its CPD by voting and
    /// compares against the network's exact conditional.
    pub fn eval_single(&self, voting: &VotingConfig) -> Score {
        let injected = inject_missing(
            &self.test_points,
            1,
            derive_seed(self.spec.seed, &[0x1, self.spec.instance, self.spec.split]),
        );
        let mut ctx = InferContext::new(&self.model, *voting, 0);
        let mut kl_sum = 0.0;
        let mut hits = 0usize;
        let mut n = 0usize;
        for t in &injected {
            let attr = t.missing_mask().iter().next().expect("one attr hidden");
            let est = ctx.vote_single(t, attr);
            let Some(truth) = conditional(&self.bn, t.missing_mask(), t) else {
                continue; // impossible evidence cannot arise from sampling
            };
            kl_sum += kl_divergence(&truth, &est);
            hits += top1_match(&truth, &est) as usize;
            n += 1;
        }
        finalize(kl_sum, hits, n)
    }

    /// Wall-clock seconds to run single-attribute inference over the whole
    /// injected test batch (Fig. 9), without scoring.
    pub fn time_single_batch(&self, voting: &VotingConfig) -> f64 {
        let injected = inject_missing(
            &self.test_points,
            1,
            derive_seed(self.spec.seed, &[0x2, self.spec.instance]),
        );
        let mut ctx = InferContext::new(&self.model, *voting, 0);
        let sw = Stopwatch::start();
        for t in &injected {
            let attr = t.missing_mask().iter().next().expect("one attr hidden");
            std::hint::black_box(ctx.vote_single(t, attr));
        }
        sw.elapsed_secs()
    }

    /// Scores multi-attribute inference (§VI-D): hides `k` attributes per
    /// test tuple, estimates the joint by (optimized) Gibbs sampling and
    /// compares against the exact joint conditional.
    pub fn eval_multi(&self, k: usize, gibbs: &GibbsConfig, strategy: WorkloadStrategy) -> Score {
        let injected = inject_missing(
            &self.test_points,
            k,
            derive_seed(self.spec.seed, &[0x3, self.spec.instance, self.spec.split]),
        );
        let engine = workload_engine(strategy, gibbs);
        let result = infer_batch(
            &self.model,
            &injected,
            engine.as_ref(),
            gibbs.voting,
            derive_seed(self.spec.seed, &[0x4, k as u64]),
        );
        let mut kl_sum = 0.0;
        let mut hits = 0usize;
        let mut n = 0usize;
        for (t, est) in injected.iter().zip(&result.estimates) {
            let Some(truth) = conditional(&self.bn, t.missing_mask(), t) else {
                continue;
            };
            kl_sum += kl_divergence(&truth, &est.probs);
            hits += top1_match(&truth, &est.probs) as usize;
            n += 1;
        }
        finalize(kl_sum, hits, n)
    }
}

fn finalize(kl_sum: f64, hits: usize, n: usize) -> Score {
    if n == 0 {
        return Score::default();
    }
    Score {
        kl: kl_sum / n as f64,
        top1: hits as f64 / n as f64,
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrsl_bayesnet::builders::{chain, crown};

    fn quick_cell() -> CellSpec {
        let mut spec = CellSpec::new(crown("test-crown", &[2, 2, 2, 2]), 2000, 200);
        spec.support = 0.005;
        spec
    }

    #[test]
    fn build_produces_consistent_context() {
        let ctx = quick_cell().build();
        assert_eq!(ctx.test_points.len(), 200);
        assert!(ctx.model.size() >= 4);
        assert!(ctx.learn_secs >= 0.0);
        assert_eq!(ctx.outcome().model_size, ctx.model.size());
    }

    #[test]
    fn build_is_deterministic() {
        let a = quick_cell().build();
        let b = quick_cell().build();
        assert_eq!(a.test_points, b.test_points);
        assert_eq!(a.model.size(), b.model.size());
    }

    #[test]
    fn different_instances_differ() {
        let mut spec = quick_cell();
        let a = spec.build();
        spec.instance = 1;
        let b = spec.build();
        // Different CPTs → different sampled data (with overwhelming prob).
        assert_ne!(a.test_points, b.test_points);
    }

    #[test]
    fn different_splits_share_instance_but_reshuffle() {
        let mut spec = quick_cell();
        let a = spec.build();
        spec.split = 1;
        let b = spec.build();
        assert_ne!(a.test_points, b.test_points);
        // Same network instance → same CPTs.
        assert_eq!(a.bn.cpt(0).raw_rows(), b.bn.cpt(0).raw_rows());
    }

    #[test]
    fn single_attr_eval_beats_chance_on_easy_network() {
        // A 4-node binary crown with 2000 training tuples is easy; the
        // ensemble must clearly beat random guessing (0.5 top-1, KL ~ O(1)).
        let ctx = quick_cell().build();
        let score = ctx.eval_single(&VotingConfig::best_averaged());
        assert_eq!(score.n, 200);
        assert!(score.top1 > 0.7, "top-1 {}", score.top1);
        assert!(score.kl < 0.2, "KL {}", score.kl);
    }

    #[test]
    fn multi_attr_eval_scores_reasonably() {
        let mut spec = CellSpec::new(chain("test-chain", &[2, 2, 2, 2]), 3000, 60);
        spec.support = 0.005;
        let ctx = spec.build();
        let gibbs = GibbsConfig {
            burn_in: 100,
            samples: 1500,
            voting: VotingConfig::best_averaged(),
        };
        let score = ctx.eval_multi(2, &gibbs, WorkloadStrategy::TupleDag);
        assert_eq!(score.n, 60);
        assert!(score.kl < 0.5, "KL {}", score.kl);
        assert!(score.top1 > 0.4, "top-1 {}", score.top1);
    }

    #[test]
    fn timing_returns_positive_duration() {
        let ctx = quick_cell().build();
        let secs = ctx.time_single_batch(&VotingConfig::best_averaged());
        assert!(secs > 0.0);
    }
}
