//! Fig. 11: efficiency of multi-variable inference — sample size and
//! wall-clock time as a function of workload size, tuple-DAG vs the
//! tuple-at-a-time baseline (500 samples per tuple).

use crate::experiments::{grid, ExpOptions};
use crate::missing::inject_missing_varying;
use crate::report::Report;
use crate::runner::run_parallel;
use mrsl_core::{infer_batch, workload_engine, GibbsConfig, VotingConfig, WorkloadStrategy};
use mrsl_util::table::fmt_f;
use mrsl_util::Table;

fn workload_sizes(opts: &ExpOptions) -> Vec<usize> {
    if opts.full {
        vec![500, 1_000, 2_000, 3_000]
    } else {
        vec![100, 250, 500]
    }
}

fn networks(opts: &ExpOptions) -> Vec<&'static str> {
    if opts.full {
        vec![
            "BN1", "BN2", "BN3", "BN5", "BN8", "BN9", "BN10", "BN13", "BN17",
        ]
    } else {
        vec!["BN8", "BN9", "BN13"]
    }
}

fn params(opts: &ExpOptions) -> (usize, f64, usize, usize) {
    // (train, support, samples per tuple N, burn-in B)
    if opts.full {
        (20_000, 0.002, 500, 100)
    } else {
        (5_000, 0.005, 500, 100)
    }
}

/// Regenerates Fig. 11: per (network, workload size, strategy), the total
/// number of sampled points and the wall-clock time of inference.
pub fn run(opts: &ExpOptions) -> Report {
    let (train, support, samples, burn_in) = params(opts);
    let gibbs = GibbsConfig {
        burn_in,
        samples,
        voting: VotingConfig::best_averaged(),
    };
    let mut table = Table::new([
        "network",
        "workload",
        "strategy",
        "sample size (draws)",
        "shared",
        "time (s)",
    ]);

    for name in networks(opts) {
        let net = mrsl_bayesnet::catalog::by_name(name)
            .expect("catalog name")
            .topology;
        let max_workload = *workload_sizes(opts).iter().max().expect("non-empty");
        let single = ExpOptions {
            instances: 1,
            splits: 1,
            ..*opts
        };
        let cells = grid(
            std::slice::from_ref(&net),
            &single,
            train,
            max_workload,
            |s| {
                s.support = support;
            },
        );
        // Timing experiment: run cells sequentially.
        let rows = run_parallel(cells, 1, |spec| {
            let ctx = spec.build();
            let max_k = ctx.bn.spec().num_attrs() - 1;
            let mut out = Vec::new();
            for &w in &workload_sizes(opts) {
                let workload =
                    inject_missing_varying(&ctx.test_points[..w], max_k, spec.seed ^ w as u64);
                for strategy in [WorkloadStrategy::TupleAtATime, WorkloadStrategy::TupleDag] {
                    let engine = workload_engine(strategy, &gibbs);
                    let result = infer_batch(
                        &ctx.model,
                        &workload,
                        engine.as_ref(),
                        gibbs.voting,
                        spec.seed,
                    );
                    out.push((w, strategy, result.cost));
                }
            }
            out
        });
        for row in rows.into_iter().flatten() {
            let (w, strategy, cost) = row;
            table.push_row([
                name.to_string(),
                w.to_string(),
                match strategy {
                    WorkloadStrategy::TupleAtATime => "tuple-at-a-time".to_string(),
                    WorkloadStrategy::TupleDag => "tuple-DAG".to_string(),
                },
                cost.total_draws.to_string(),
                cost.shared_samples.to_string(),
                fmt_f(cost.elapsed.as_secs_f64(), 3),
            ]);
        }
    }
    Report::new(
        "fig11",
        format!("Efficiency of multi-variable inference (N = {samples}/tuple, B = {burn_in})"),
        table,
    )
    .note("paper: sample size and wall-clock grow linearly with workload size; tuple-DAG beats tuple-at-a-time by up to ~an order of magnitude")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::CellSpec;

    #[test]
    fn dag_beats_baseline_on_sample_size() {
        let net = mrsl_bayesnet::catalog::by_name("BN8").unwrap().topology;
        let mut spec = CellSpec::new(net, 3_000, 150);
        spec.support = 0.005;
        let ctx = spec.build();
        let workload = inject_missing_varying(&ctx.test_points, 3, 5);
        let gibbs = GibbsConfig {
            burn_in: 50,
            samples: 200,
            voting: VotingConfig::best_averaged(),
        };
        let base = infer_batch(
            &ctx.model,
            &workload,
            workload_engine(WorkloadStrategy::TupleAtATime, &gibbs).as_ref(),
            gibbs.voting,
            1,
        );
        let dag = infer_batch(
            &ctx.model,
            &workload,
            workload_engine(WorkloadStrategy::TupleDag, &gibbs).as_ref(),
            gibbs.voting,
            1,
        );
        assert!(
            dag.cost.total_draws < base.cost.total_draws,
            "dag {} vs baseline {}",
            dag.cost.total_draws,
            base.cost.total_draws
        );
        assert!(dag.cost.shared_samples > 0);
    }
}
