//! Fig. 6: KL divergence and top-1 accuracy as a function of the support
//! threshold, for the four voting methods (training = 100,000 in the
//! paper).

use crate::experiments::{grid, mean, sweep_networks, ExpOptions};
use crate::report::Report;
use crate::runner::run_parallel;
use mrsl_core::VotingConfig;
use mrsl_util::table::fmt_f;
use mrsl_util::Table;

fn supports(opts: &ExpOptions) -> Vec<f64> {
    if opts.full {
        vec![0.001, 0.01, 0.02, 0.05, 0.1]
    } else {
        vec![0.002, 0.01, 0.02, 0.05, 0.1]
    }
}

fn training(opts: &ExpOptions) -> (usize, usize) {
    if opts.full {
        (100_000, 2_000)
    } else {
        (8_000, 400)
    }
}

/// Regenerates both panels of Fig. 6 (KL and top-1 per support threshold
/// and voting method).
pub fn run(opts: &ExpOptions) -> Report {
    let nets = sweep_networks(opts);
    let votings = VotingConfig::table2_order();
    let (train, test) = training(opts);

    let mut header: Vec<String> = vec!["support".into()];
    for v in &votings {
        header.push(format!("{} KL", v.label()));
    }
    for v in &votings {
        header.push(format!("{} top-1", v.label()));
    }
    let mut table = Table::new(header);

    for theta in supports(opts) {
        let cells = grid(&nets, opts, train, test, |s| s.support = theta);
        let scores = run_parallel(cells, opts.threads, |spec| {
            let ctx = spec.build();
            votings.map(|v| ctx.eval_single(&v))
        });
        let mut row = vec![fmt_f(theta, 3)];
        for vi in 0..votings.len() {
            row.push(fmt_f(mean(scores.iter().map(|s| s[vi].kl)), 3));
        }
        for vi in 0..votings.len() {
            row.push(fmt_f(mean(scores.iter().map(|s| s[vi].top1)), 3));
        }
        table.push_row(row);
    }

    Report::new(
        "fig6",
        format!("KL divergence and top-1 accuracy vs support (training = {train})"),
        table,
    )
    .note("paper: lower support thresholds give higher accuracy; best at θ = 0.001 with best-* voting")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrsl_bayesnet::catalog::by_name;

    #[test]
    fn lower_support_is_no_worse() {
        // With a meaningful training set, θ=0.002 must not lose badly to
        // θ=0.1 — finer rules can only add evidence.
        let opts = ExpOptions {
            instances: 1,
            splits: 1,
            ..ExpOptions::default()
        };
        let net = by_name("BN13").unwrap().topology;
        let kl_at = |theta: f64| {
            let cells = grid(std::slice::from_ref(&net), &opts, 4_000, 200, |s| {
                s.support = theta;
            });
            let scores = run_parallel(cells, 1, |spec| {
                spec.build().eval_single(&VotingConfig::best_averaged())
            });
            mean(scores.iter().map(|s| s.kl))
        };
        let fine = kl_at(0.002);
        let coarse = kl_at(0.1);
        assert!(
            fine <= coarse + 0.02,
            "fine θ should not be worse: {fine} vs {coarse}"
        );
    }
}
