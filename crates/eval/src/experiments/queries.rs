//! Query-engine self-check over derived probabilistic databases.
//!
//! Beyond the paper's own tables: derives a probabilistic database from a
//! catalog network plus an incomplete workload, then pushes a suite of
//! compound `Or`/`Range`/`Not` selections through the planned
//! [`CatalogEngine`] on **both** physical paths. For every predicate the
//! exact lifted (columnar) path and the Monte-Carlo fallback must agree
//! within sampling error; the report shows the expected counts, the
//! planner's pruning, and the MC deviation in standard errors.

use crate::experiments::ExpOptions;
use crate::report::Report;
use mrsl_bayesnet::sampler::sample_dataset;
use mrsl_core::{derive_probabilistic_db, DeriveConfig, GibbsConfig, LearnConfig};
use mrsl_probdb::{Catalog, CatalogEngine, Predicate, ProbDb, Query, QueryEngineConfig};
use mrsl_relation::{AttrId, Relation, ValueId};
use mrsl_util::table::fmt_f;
use mrsl_util::{derive_seed, seeded_rng, Table};
use rand::seq::SliceRandom;
use rand::Rng;

fn params(opts: &ExpOptions) -> (usize, usize, usize, usize) {
    if opts.full {
        (20_000, 1_000, 600, 40_000)
    } else {
        (4_000, 200, 300, 15_000)
    }
}

fn derive_db(opts: &ExpOptions) -> ProbDb {
    let (train, incomplete, samples, _) = params(opts);
    // BN10: crown-shaped, 6 attributes of cardinality 4 — wide enough
    // domains for `In`/`Range` predicates to be properly selective.
    let spec = mrsl_bayesnet::catalog::by_name("BN10")
        .expect("BN10 in catalog")
        .topology;
    let bn = mrsl_bayesnet::BayesianNetwork::instantiate(&spec, 0.5, opts.seed);
    let mut rel = Relation::new(bn.schema().clone());
    for p in sample_dataset(&bn, train, derive_seed(opts.seed, &[0x9e])) {
        rel.push_complete(p).expect("arity ok");
    }
    let arity = bn.schema().attr_count();
    let mut rng = seeded_rng(derive_seed(opts.seed, &[0x9f]));
    for p in sample_dataset(&bn, incomplete, derive_seed(opts.seed, &[0xa0])) {
        let mut t = p.to_partial();
        let hide = rng.gen_range(1..=2usize);
        let mut attrs: Vec<u16> = (0..arity as u16).collect();
        attrs.shuffle(&mut rng);
        for &a in &attrs[..hide] {
            t = t.without_attr(AttrId(a));
        }
        rel.push(t).expect("arity ok");
    }
    derive_probabilistic_db(
        &rel,
        &DeriveConfig {
            learn: LearnConfig {
                support_threshold: 0.005,
                max_itemsets: 1000,
            },
            gibbs: GibbsConfig {
                burn_in: 50,
                samples,
                ..GibbsConfig::default()
            },
            seed: opts.seed,
            ..DeriveConfig::default()
        },
    )
    .db
}

/// The predicate workload: one entry per algebra constructor.
fn workload(db: &ProbDb) -> Vec<(&'static str, Predicate)> {
    let card = |a: u16| db.schema().cardinality(AttrId(a)) as u16;
    let mid = |a: u16| ValueId(card(a) / 2);
    vec![
        ("eq", Predicate::eq(AttrId(0), ValueId(0))),
        ("in", Predicate::is_in(AttrId(1), [ValueId(0), mid(1)])),
        ("range", Predicate::range(AttrId(2), ValueId(0), mid(2))),
        (
            "or",
            Predicate::eq(AttrId(0), ValueId(0)).or(Predicate::eq(AttrId(3), mid(3))),
        ),
        ("not", Predicate::eq(AttrId(1), ValueId(0)).negate()),
        (
            "or-range-not",
            Predicate::range(AttrId(0), ValueId(0), mid(0))
                .or(Predicate::eq(AttrId(2), mid(2)).negate()),
        ),
    ]
}

/// Exact vs Monte-Carlo agreement of the planned engine.
pub fn run(opts: &ExpOptions) -> Report {
    let (_, _, _, mc_samples) = params(opts);
    let mut catalog = Catalog::new();
    catalog
        .add("derived", derive_db(opts))
        .expect("fresh catalog");
    let exact_engine = CatalogEngine::new(&catalog);
    let mc_engine = CatalogEngine::with_config(
        &catalog,
        QueryEngineConfig {
            force_monte_carlo: true,
            mc_samples,
            mc_seed: derive_seed(opts.seed, &[0xa1]),
            ..QueryEngineConfig::default()
        },
    );
    let mut table = Table::new([
        "predicate",
        "E[count] exact",
        "E[count] MC",
        "|Δ| in SEs",
        "path exact / MC",
        "blocks pruned",
    ]);
    for (name, pred) in workload(catalog.get("derived").expect("added above")) {
        let query = Query::scan("derived").filter(pred);
        let (exact, exact_report) = exact_engine.expected_count(&query).expect("exact path");
        let (mc_answer, mc_report) = mc_engine
            .evaluate(&query, mrsl_probdb::Statistic::ExpectedCount)
            .expect("mc path");
        let mrsl_probdb::QueryAnswer::Count { mean, std_error } = mc_answer else {
            unreachable!("expected-count answers with a count");
        };
        let se = std_error.expect("MC reports a standard error").max(1e-9);
        table.push_row([
            name.to_string(),
            fmt_f(exact, 2),
            fmt_f(mean, 2),
            fmt_f((mean - exact).abs() / se, 2),
            format!("{:?} / {:?}", exact_report.path, mc_report.path),
            format!(
                "{}/{}",
                exact_report.blocks_pruned, exact_report.blocks_total
            ),
        ]);
    }
    Report::new(
        "queries",
        "Planned query engine: exact lifted path vs Monte-Carlo fallback on a derived BID database",
        table,
    )
    .note("|Δ| in SEs should be O(1); the exact path is the liftable plan, MC is forced for the comparison")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_mc_paths_agree_on_derived_db() {
        let opts = ExpOptions {
            seed: 11,
            ..ExpOptions::default()
        };
        let mut catalog = Catalog::new();
        catalog.add("derived", derive_db(&opts)).unwrap();
        assert!(!catalog.get("derived").unwrap().blocks().is_empty());
        let exact_engine = CatalogEngine::new(&catalog);
        let mc_engine = CatalogEngine::with_config(
            &catalog,
            QueryEngineConfig {
                force_monte_carlo: true,
                mc_samples: 20_000,
                mc_seed: 3,
                ..QueryEngineConfig::default()
            },
        );
        for (name, pred) in workload(catalog.get("derived").unwrap()) {
            let query = Query::scan("derived").filter(pred);
            let (exact, _) = exact_engine.expected_count(&query).expect("exact");
            let (answer, _) = mc_engine
                .evaluate(&query, mrsl_probdb::Statistic::ExpectedCount)
                .expect("mc");
            let mrsl_probdb::QueryAnswer::Count { mean, std_error } = answer else {
                panic!("count expected");
            };
            let se = std_error.expect("MC std error");
            assert!(
                (mean - exact).abs() < 5.0 * se + 0.05,
                "{name}: mc {mean} vs exact {exact} (se {se})"
            );
        }
    }
}
