//! Table II: accuracy of single-variable inference per network and voting
//! method (paper settings: support 0.001, training 100,000).

use crate::experiments::{grid, mean, table2_networks, ExpOptions};
use crate::report::Report;
use crate::runner::run_parallel;
use mrsl_core::VotingConfig;
use mrsl_util::table::fmt_f;
use mrsl_util::Table;

fn params(opts: &ExpOptions) -> (usize, usize, f64) {
    if opts.full {
        // Paper: 100k training, 10% test, θ = 0.001.
        (100_000, 11_000, 0.001)
    } else {
        (8_000, 400, 0.002)
    }
}

/// Regenerates Table II: per network, top-1 accuracy and KL for the four
/// voting methods.
pub fn run(opts: &ExpOptions) -> Report {
    let (train, test, support) = params(opts);
    let nets = table2_networks();
    let votings = VotingConfig::table2_order();

    let mut header: Vec<String> = vec!["network".into()];
    for v in &votings {
        header.push(format!("{} top-1", v.label()));
        header.push(format!("{} KL", v.label()));
    }
    let mut table = Table::new(header);

    for net in &nets {
        let cells = grid(std::slice::from_ref(net), opts, train, test, |s| {
            s.support = support;
        });
        let scores = run_parallel(cells, opts.threads, |spec| {
            let ctx = spec.build();
            votings.map(|v| ctx.eval_single(&v))
        });
        let mut row = vec![net.name().to_string()];
        for (vi, _) in votings.iter().enumerate() {
            row.push(fmt_f(mean(scores.iter().map(|s| s[vi].top1)), 2));
            row.push(fmt_f(mean(scores.iter().map(|s| s[vi].kl)), 2));
        }
        table.push_row(row);
    }

    Report::new(
        "table2",
        format!("Accuracy of single-variable inference (support = {support}, training = {train})"),
        table,
    )
    .note("paper: best averaged / best weighted dominate; KL ≤ 0.1 ⇒ top-1 ≳ 90%")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrsl_bayesnet::catalog::by_name;

    #[test]
    fn single_network_row_shape_and_sanity() {
        // Run the pipeline on one easy network at small scale and check
        // the row structure plus an accuracy floor.
        let opts = ExpOptions {
            instances: 1,
            splits: 1,
            ..ExpOptions::default()
        };
        let net = by_name("BN8").unwrap().topology;
        let cells = grid(std::slice::from_ref(&net), &opts, 3_000, 200, |s| {
            s.support = 0.002;
        });
        let votings = VotingConfig::table2_order();
        let scores = run_parallel(cells, 1, |spec| {
            let ctx = spec.build();
            votings.map(|v| ctx.eval_single(&v))
        });
        assert_eq!(scores.len(), 1);
        for s in &scores[0] {
            assert!(s.n == 200);
            assert!(s.top1 > 0.6, "top1 {}", s.top1);
            assert!(s.kl < 0.4, "kl {}", s.kl);
        }
        // best averaged should not lose to all weighted on KL (paper's
        // headline finding, robust even at this scale).
        assert!(scores[0][2].kl <= scores[0][1].kl + 0.05);
    }
}
