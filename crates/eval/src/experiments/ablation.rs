//! Ablation beyond the paper's own tables: Gibbs sampling vs the
//! independence-assuming product baseline (§V's motivating comparison),
//! quantifying how much the joint sampler buys on correlated networks.

use crate::experiments::{grid, mean, ExpOptions};
use crate::metrics::{kl_divergence, top1_match};
use crate::missing::inject_missing;
use crate::report::Report;
use crate::runner::run_parallel;
use mrsl_bayesnet::conditional;
use mrsl_core::{
    infer_batch, GibbsConfig, IndependentBaseline, InferContext, InferenceEngine, TupleDagWorkload,
    VotingConfig,
};
use mrsl_util::table::fmt_f;
use mrsl_util::Table;

fn params(opts: &ExpOptions) -> (usize, usize, f64, usize) {
    if opts.full {
        (50_000, 150, 0.001, 2_000)
    } else {
        (8_000, 60, 0.002, 1_000)
    }
}

/// Networks with strong intra-tuple correlations, where the independence
/// assumption should visibly hurt.
fn networks() -> Vec<&'static str> {
    vec!["BN13", "BN2", "BN9"]
}

/// Compares joint Gibbs inference against the per-attribute product
/// baseline on 2-missing-attribute tuples.
pub fn run(opts: &ExpOptions) -> Report {
    let (train, test, support, samples) = params(opts);
    let gibbs = GibbsConfig {
        burn_in: 100,
        samples,
        voting: VotingConfig::best_averaged(),
    };
    let mut table = Table::new([
        "network",
        "gibbs KL",
        "independent KL",
        "gibbs top-1",
        "independent top-1",
    ]);
    for name in networks() {
        let net = mrsl_bayesnet::catalog::by_name(name)
            .expect("catalog name")
            .topology;
        let cells = grid(std::slice::from_ref(&net), opts, train, test, |s| {
            s.support = support;
        });
        let rows = run_parallel(cells, opts.threads, |spec| {
            let ctx = spec.build();
            let injected = inject_missing(&ctx.test_points, 2, spec.seed ^ 0xab);
            let gibbs_result = infer_batch(
                &ctx.model,
                &injected,
                &TupleDagWorkload::from_config(&gibbs),
                gibbs.voting,
                spec.seed,
            );
            let mut infer_ctx = InferContext::new(&ctx.model, gibbs.voting, 0);
            let mut g_kl = 0.0;
            let mut i_kl = 0.0;
            let mut g_hit = 0usize;
            let mut i_hit = 0usize;
            let mut n = 0usize;
            for (t, g_est) in injected.iter().zip(&gibbs_result.estimates) {
                let Some(truth) = conditional(&ctx.bn, t.missing_mask(), t) else {
                    continue;
                };
                let i_est = IndependentBaseline.estimate(&mut infer_ctx, t);
                g_kl += kl_divergence(&truth, &g_est.probs);
                i_kl += kl_divergence(&truth, &i_est.probs);
                g_hit += top1_match(&truth, &g_est.probs) as usize;
                i_hit += top1_match(&truth, &i_est.probs) as usize;
                n += 1;
            }
            let n = n.max(1) as f64;
            (g_kl / n, i_kl / n, g_hit as f64 / n, i_hit as f64 / n)
        });
        table.push_row([
            name.to_string(),
            fmt_f(mean(rows.iter().map(|r| r.0)), 3),
            fmt_f(mean(rows.iter().map(|r| r.1)), 3),
            fmt_f(mean(rows.iter().map(|r| r.2)), 3),
            fmt_f(mean(rows.iter().map(|r| r.3)), 3),
        ]);
    }
    Report::new(
        "ablation",
        "Joint Gibbs inference vs independence-assuming product baseline (2 missing attrs)",
        table,
    )
    .note("the paper argues (§V) the product estimate relies on unwarranted independence assumptions; this quantifies the gap")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::CellSpec;

    #[test]
    fn gibbs_beats_independent_on_a_chain() {
        // On a chain, adjacent attributes are strongly correlated; hiding
        // two adjacent attributes makes the product baseline pay.
        let net = mrsl_bayesnet::catalog::by_name("BN13").unwrap().topology;
        let mut spec = CellSpec::new(net, 6_000, 80);
        spec.support = 0.002;
        let ctx = spec.build();
        let injected = inject_missing(&ctx.test_points, 2, 17);
        let gibbs = GibbsConfig {
            burn_in: 100,
            samples: 1_500,
            voting: VotingConfig::best_averaged(),
        };
        let result = infer_batch(
            &ctx.model,
            &injected,
            &TupleDagWorkload::from_config(&gibbs),
            gibbs.voting,
            3,
        );
        let mut infer_ctx = InferContext::new(&ctx.model, gibbs.voting, 0);
        let mut g_kl = 0.0;
        let mut i_kl = 0.0;
        let mut n = 0;
        for (t, g_est) in injected.iter().zip(&result.estimates) {
            let Some(truth) = conditional(&ctx.bn, t.missing_mask(), t) else {
                continue;
            };
            let i_est = IndependentBaseline.estimate(&mut infer_ctx, t);
            g_kl += kl_divergence(&truth, &g_est.probs);
            i_kl += kl_divergence(&truth, &i_est.probs);
            n += 1;
        }
        assert!(n > 0);
        // Gibbs should be at least as good on average (generous slack for
        // Monte-Carlo noise at this scale).
        assert!(
            g_kl <= i_kl + 0.05 * n as f64,
            "gibbs {g_kl} vs independent {i_kl} over {n} tuples"
        );
    }
}
