//! Multi-relation join planning self-check over two derived relations.
//!
//! Beyond the paper's own tables: derives **two** probabilistic relations
//! — station metadata and readings sharing a station dictionary — with the
//! lazy per-relation triage ([`derive_catalog_for_query`]), then
//! cross-checks the [`CatalogEngine`]'s two physical paths on a
//! hierarchical join query: the exact extensional safe plan against the
//! forced multi-relation Monte-Carlo sampler, for both `P(non-empty)` and
//! `E[|⨝|]`. A third, non-hierarchical query (`R(x), S(x,y), T(y)`) shows
//! the classifier routing unsafely-shaped queries to sampling, with the
//! decomposition verdict in the report — and the dissociation bracket the
//! same shape gets deterministically from `Statistic::ProbabilityBounds`.

use crate::experiments::ExpOptions;
use crate::report::Report;
use mrsl_bayesnet::{BayesianNetwork, NodeSpec, TopologySpec};
use mrsl_core::{
    derive_catalog_for_query, GibbsConfig, LazyCatalogOutput, LearnConfig, MrslModel,
    WorkloadStrategy,
};
use mrsl_probdb::{CatalogEngine, Predicate, Query, QueryEngineConfig, Statistic};
use mrsl_relation::{AttrId, PartialTuple, Relation, ValueId};
use mrsl_util::table::fmt_f;
use mrsl_util::{derive_seed, seeded_rng, Table};
use rand::Rng;

/// Keep the station dictionary modest so joins stay selective.
const STATIONS: usize = 6;

fn params(opts: &ExpOptions) -> (usize, usize, usize, usize) {
    if opts.full {
        (8_000, 400, 600, 40_000)
    } else {
        (2_000, 120, 300, 15_000)
    }
}

/// `sensors(station, kind, calib)`: kind/calibration correlate with the
/// station through a small Bayesian network.
fn sensors_network() -> TopologySpec {
    TopologySpec::new(
        "sensors",
        vec![
            NodeSpec {
                name: "station".into(),
                cardinality: STATIONS,
                parents: vec![],
            },
            NodeSpec {
                name: "kind".into(),
                cardinality: 3,
                parents: vec![0],
            },
            NodeSpec {
                name: "calib".into(),
                cardinality: 2,
                parents: vec![1],
            },
        ],
    )
    .expect("valid topology")
}

/// `readings(station, level, flag)`.
fn readings_network() -> TopologySpec {
    TopologySpec::new(
        "readings",
        vec![
            NodeSpec {
                name: "station".into(),
                cardinality: STATIONS,
                parents: vec![],
            },
            NodeSpec {
                name: "level".into(),
                cardinality: 4,
                parents: vec![0],
            },
            NodeSpec {
                name: "flag".into(),
                cardinality: 2,
                parents: vec![1],
            },
        ],
    )
    .expect("valid topology")
}

/// Samples a relation from a network, hiding one *non-join* attribute in
/// `incomplete` of the tuples (the station stays observed, so derived
/// blocks keep a unique join key and the hierarchical plan stays exact).
fn sampled_relation(
    bn: &BayesianNetwork,
    complete: usize,
    incomplete: usize,
    seed: u64,
) -> Relation {
    let mut rel = Relation::new(bn.schema().clone());
    for p in mrsl_bayesnet::sampler::sample_dataset(bn, complete, derive_seed(seed, &[1])) {
        rel.push_complete(p).expect("arity ok");
    }
    let mut rng = seeded_rng(derive_seed(seed, &[2]));
    for p in mrsl_bayesnet::sampler::sample_dataset(bn, incomplete, derive_seed(seed, &[3])) {
        let hide = AttrId(rng.gen_range(1..bn.schema().attr_count() as u16));
        let t: PartialTuple = p.to_partial().without_attr(hide);
        rel.push(t).expect("arity ok");
    }
    rel
}

struct Derived {
    lazy: LazyCatalogOutput,
    query: Query,
}

fn derive(opts: &ExpOptions) -> Derived {
    let (complete, incomplete, samples, _) = params(opts);
    let sensors_bn = BayesianNetwork::instantiate(&sensors_network(), 0.5, opts.seed);
    let readings_bn =
        BayesianNetwork::instantiate(&readings_network(), 0.5, derive_seed(opts.seed, &[7]));
    let sensors = sampled_relation(&sensors_bn, complete / 4, incomplete / 2, opts.seed);
    let readings = sampled_relation(&readings_bn, complete, incomplete, opts.seed ^ 0xbeef);
    let learn = LearnConfig {
        support_threshold: 0.005,
        max_itemsets: 1000,
    };
    let sensors_model = MrslModel::learn(sensors.schema(), sensors.complete_part(), &learn);
    let readings_model = MrslModel::learn(readings.schema(), readings.complete_part(), &learn);
    let gibbs = GibbsConfig {
        burn_in: 50,
        samples,
        ..GibbsConfig::default()
    };
    // σ[kind=0](sensors) ⨝ σ[level≥2](readings) on the station.
    let query = Query::scan("sensors")
        .filter(Predicate::eq(AttrId(1), ValueId(0)))
        .join_on(
            Query::scan("readings").filter(Predicate::range(AttrId(1), ValueId(2), ValueId(3))),
            [(AttrId(0), AttrId(0))],
        );
    let lazy = derive_catalog_for_query(
        &[
            mrsl_core::LazySource {
                name: "sensors",
                relation: &sensors,
                model: &sensors_model,
            },
            mrsl_core::LazySource {
                name: "readings",
                relation: &readings,
                model: &readings_model,
            },
        ],
        &query,
        &gibbs,
        WorkloadStrategy::TupleDag,
        opts.seed,
    )
    .expect("catalog derivation succeeds");
    Derived { lazy, query }
}

/// A small direct-built `quality(level)` relation over the readings level
/// dictionary: each block is uncertain about which level it flags. Used
/// only by the non-hierarchical chain query, so it needs no derivation.
fn quality_relation(readings: &mrsl_probdb::ProbDb, seed: u64) -> mrsl_probdb::ProbDb {
    use mrsl_probdb::{Alternative, Block, ProbDb};
    use mrsl_relation::{CompleteTuple, Schema};
    let levels = readings.schema().attr(AttrId(1)).labels().to_vec();
    let card = levels.len() as u16;
    let schema = Schema::builder()
        .attribute("level", levels)
        .build()
        .expect("valid quality schema");
    let mut db = ProbDb::new(schema);
    let mut rng = seeded_rng(seed);
    for key in 0..3usize {
        let a = rng.gen_range(0..card);
        let b = (a + 1 + rng.gen_range(0..card - 1)) % card;
        let w = 0.2 + 0.6 * rng.gen::<f64>();
        db.push_block(
            Block::new(
                key,
                vec![
                    Alternative {
                        tuple: CompleteTuple::from_values(vec![a]),
                        prob: w,
                    },
                    Alternative {
                        tuple: CompleteTuple::from_values(vec![b]),
                        prob: 1.0 - w,
                    },
                ],
            )
            .expect("valid block"),
        )
        .expect("arity ok");
    }
    db
}

/// Exact vs Monte-Carlo agreement of the join planner on derived relations.
pub fn run(opts: &ExpOptions) -> Report {
    let (_, _, _, mc_samples) = params(opts);
    let mut derived = derive(opts);
    let mut table = Table::new(["statistic", "exact", "MC", "|Δ| in SEs", "plan exact / MC"]);
    let decomposition;
    {
        let exact_engine = CatalogEngine::new(&derived.lazy.catalog);
        let mc_engine = CatalogEngine::with_config(
            &derived.lazy.catalog,
            QueryEngineConfig {
                force_monte_carlo: true,
                mc_samples,
                mc_seed: derive_seed(opts.seed, &[0xa2]),
                ..QueryEngineConfig::default()
            },
        );
        for stat in [Statistic::Probability, Statistic::ExpectedCount] {
            let (exact_answer, exact_report) = exact_engine
                .evaluate(&derived.query, stat)
                .expect("exact path");
            let (mc_answer, mc_report) = mc_engine.evaluate(&derived.query, stat).expect("mc path");
            let value = |a: &mrsl_probdb::QueryAnswer| -> (f64, Option<f64>) {
                match a {
                    mrsl_probdb::QueryAnswer::Probability { p, std_error } => (*p, *std_error),
                    mrsl_probdb::QueryAnswer::Count { mean, std_error } => (*mean, *std_error),
                    _ => unreachable!("probability/count statistics"),
                }
            };
            let (exact, _) = value(&exact_answer);
            let (mc, se) = value(&mc_answer);
            let se = se.expect("MC reports a standard error").max(1e-9);
            table.push_row([
                stat.name().to_string(),
                fmt_f(exact, 4),
                fmt_f(mc, 4),
                fmt_f((mc - exact).abs() / se, 2),
                format!("{:?} / {:?}", exact_report.plan, mc_report.plan),
            ]);
        }
        decomposition = exact_engine
            .evaluate(&derived.query, Statistic::Probability)
            .expect("exact path")
            .1
            .decomposition
            .map(|d| d.render())
            .unwrap_or_else(|| "(single relation)".into());
    }

    // The third, non-hierarchical query: sensors(x) ⨝ readings(x, y) ⨝
    // quality(y). Its join-variable classes overlap without nesting, so
    // the classifier must refuse the extensional plan and sample.
    let quality = quality_relation(
        derived.lazy.catalog.get("readings").expect("derived above"),
        derive_seed(opts.seed, &[0xa3]),
    );
    derived
        .lazy
        .catalog
        .add("quality", quality)
        .expect("fresh name");
    let chain = Query::scan("sensors")
        .join_on("readings", [(AttrId(0), AttrId(0))])
        .join_on_rel("readings", "quality", [(AttrId(1), AttrId(0))]);
    let chain_engine = CatalogEngine::with_config(
        &derived.lazy.catalog,
        QueryEngineConfig {
            mc_samples,
            mc_seed: derive_seed(opts.seed, &[0xa4]),
            ..QueryEngineConfig::default()
        },
    );
    let (chain_p, chain_report) = chain_engine.probability(&chain).expect("mc chain");
    table.push_row([
        "chain probability".to_string(),
        "—".to_string(),
        fmt_f(chain_p, 4),
        "—".to_string(),
        format!("— / {:?}", chain_report.plan),
    ]);
    let verdict = chain_report
        .decomposition
        .map(|d| d.render())
        .unwrap_or_else(|| "(none)".into());
    // Dissociation bounds on the same unsafe chain: a deterministic
    // bracket the sampled estimate must fall into (up to MC error).
    let (bounds, bounds_report) = chain_engine
        .probability_bounds(&chain)
        .expect("bounds on the chain");
    table.push_row([
        "chain bounds".to_string(),
        format!("[{}, {}]", fmt_f(bounds.lower, 4), fmt_f(bounds.upper, 4)),
        bounds
            .estimate
            .map(|e| fmt_f(e, 4))
            .unwrap_or_else(|| "—".into()),
        "—".to_string(),
        format!("{:?} / {:?}", bounds_report.plan, bounds_report.path),
    ]);
    let dissociated = if bounds_report.dissociated.is_empty() {
        "(none)".to_string()
    } else {
        bounds_report.dissociated.join(", ")
    };

    let triage: Vec<String> = derived
        .lazy
        .per_relation
        .iter()
        .map(|s| {
            format!(
                "{}: {} inferred, {} pinned, {} ruled out",
                s.relation, s.inferred, s.pinned, s.ruled_out
            )
        })
        .collect();
    Report::new(
        "joins",
        "Safe-plan join routing: exact extensional ⨝ vs multi-relation Monte Carlo on two derived relations",
        table,
    )
    .note(format!(
        "safe plan: {decomposition}; chain verdict: {verdict}; dissociated: {dissociated}; \
         lazy triage — {}",
        triage.join("; ")
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrsl_probdb::{EvalPath, PlanClass};

    #[test]
    fn exact_and_mc_join_paths_agree_on_derived_catalog() {
        let opts = ExpOptions {
            seed: 5,
            ..ExpOptions::default()
        };
        let derived = derive(&opts);
        let exact_engine = CatalogEngine::new(&derived.lazy.catalog);
        // Both relations keep the station observed in every incomplete
        // tuple, so the derived blocks have unique join keys and the
        // hierarchical query stays exact.
        let (path, plan) = exact_engine
            .plan(&derived.query, Statistic::Probability)
            .unwrap();
        assert_eq!(path, EvalPath::ExactColumnar);
        assert_eq!(plan, PlanClass::Liftable);
        let (p, _) = exact_engine.probability(&derived.query).unwrap();
        let mc_engine = CatalogEngine::with_config(
            &derived.lazy.catalog,
            QueryEngineConfig {
                force_monte_carlo: true,
                mc_samples: 20_000,
                mc_seed: 9,
                ..QueryEngineConfig::default()
            },
        );
        let (answer, _) = mc_engine
            .evaluate(&derived.query, Statistic::Probability)
            .unwrap();
        let mrsl_probdb::QueryAnswer::Probability { p: mc, std_error } = answer else {
            panic!("probability expected");
        };
        let se = std_error.unwrap().max(1e-9);
        assert!((p - mc).abs() < 5.0 * se + 0.02, "{p} vs {mc} (se {se})");
    }
}
