//! Learning-subsystem self-check: weighted ensembles and mass fitting.
//!
//! Beyond the paper's own tables, this experiment validates the two
//! halves of `mrsl_learn` end to end on a synthetic sensor network:
//!
//! 1. **Ensemble weights** — [`fit_ensemble_weights`] EM-fits per-engine
//!    weights on held-out observed tuples; the report compares each
//!    member's held-out top-1 accuracy with the learned mixture's and
//!    with uniform (unweighted) voting. The learned mixture must match
//!    or beat uniform voting.
//! 2. **Tuple-probability learning** — the fitted ensemble derives a
//!    probabilistic database, an oracle (the generating network's true
//!    conditionals) labels a handful of selection queries, and
//!    [`fit_block_masses`] descends the exact safe-plan gradients; the
//!    report shows the train and validation MSE shrinking.

use crate::experiments::ExpOptions;
use crate::report::Report;
use mrsl_bayesnet::{conditional, BayesianNetwork, NodeSpec, TopologySpec};
use mrsl_core::{
    derive_probabilistic_db_with_engine, DeriveConfig, GibbsConfig, LearnConfig, MrslModel,
    VotingConfig,
};
use mrsl_learn::{
    fit_block_masses, fit_ensemble_weights, standard_members, EnsembleEngine, EnsembleFitReport,
    LabeledQuery, MassFitConfig, MassFitReport, WeightStrategy,
};
use mrsl_probdb::{Catalog, CatalogEngine, Predicate, ProbDb, Query};
use mrsl_relation::{AttrId, JointIndexer, Relation, ValueId};
use mrsl_util::table::fmt_f;
use mrsl_util::{derive_seed, seeded_rng, Table};
use rand::Rng;

fn params(opts: &ExpOptions) -> (usize, usize, usize, usize, usize) {
    // (train, holdout, catalog complete, catalog incomplete, fit epochs).
    // The audited slice stays small: `P(σ non-empty)` over n blocks is
    // `1 − Π(1 − matched mass)`, which saturates to 1 (zero gradient,
    // zero residual) once dozens of blocks can match a selection.
    if opts.full {
        (10_000, 120, 1_000, 24, 300)
    } else {
        (3_000, 48, 400, 12, 120)
    }
}

/// front → (temp, humidity); (temp, humidity) → sky.
fn weather_network() -> TopologySpec {
    TopologySpec::new(
        "weather",
        vec![
            NodeSpec {
                name: "front".into(),
                cardinality: 3,
                parents: vec![],
            },
            NodeSpec {
                name: "temp".into(),
                cardinality: 3,
                parents: vec![0],
            },
            NodeSpec {
                name: "humidity".into(),
                cardinality: 3,
                parents: vec![0],
            },
            NodeSpec {
                name: "sky".into(),
                cardinality: 3,
                parents: vec![1, 2],
            },
        ],
    )
    .expect("valid topology")
}

fn gibbs() -> GibbsConfig {
    GibbsConfig {
        burn_in: 60,
        samples: 600,
        voting: VotingConfig::best_averaged(),
    }
}

struct Fitted {
    ensemble: EnsembleEngine,
    weights: EnsembleFitReport,
    masses: MassFitReport,
}

/// A copy of the derived database re-massed with the generating
/// network's true conditionals: the labeling oracle.
fn gold_catalog(derived: &ProbDb, rel: &Relation, bn: &BayesianNetwork) -> Catalog {
    let mut db = derived.clone();
    for (b, t) in rel.incomplete_part().iter().enumerate() {
        let truth = conditional(bn, t.missing_mask(), t).expect("network covers every evidence");
        let indexer = JointIndexer::new(bn.schema(), t.missing_mask());
        let mut probs: Vec<f64> = db.blocks()[b]
            .alternatives()
            .iter()
            .map(|a| {
                let combo: Vec<ValueId> = indexer
                    .attrs()
                    .iter()
                    .map(|&attr| ValueId(a.tuple.raw()[attr.0 as usize]))
                    .collect();
                truth[indexer.index_of(&combo)].max(1e-6)
            })
            .collect();
        let sum: f64 = probs.iter().sum();
        probs.iter_mut().for_each(|p| *p /= sum);
        db.set_block_masses(b, &probs)
            .expect("renormalized truth is a valid distribution");
    }
    let mut catalog = Catalog::new();
    catalog.add("weather", db).expect("fresh catalog");
    catalog
}

fn fit(opts: &ExpOptions) -> Fitted {
    let (train_n, holdout_n, complete_n, incomplete_n, epochs) = params(opts);
    let bn = BayesianNetwork::instantiate(&weather_network(), 0.5, opts.seed);
    let train = mrsl_bayesnet::sampler::sample_dataset(&bn, train_n, derive_seed(opts.seed, &[1]));
    let holdout =
        mrsl_bayesnet::sampler::sample_dataset(&bn, holdout_n, derive_seed(opts.seed, &[2]));
    let learn_config = LearnConfig {
        support_threshold: 0.005,
        max_itemsets: 1000,
    };
    let model = MrslModel::learn(bn.schema(), &train, &learn_config);

    let (ensemble, weights) = fit_ensemble_weights(
        &model,
        &holdout,
        VotingConfig::best_averaged(),
        standard_members(&gibbs()),
        WeightStrategy::Em {
            max_iters: 200,
            tol: 1e-9,
        },
        derive_seed(opts.seed, &[3]),
    )
    .expect("holdout is non-empty");

    // Derive a catalog under the fitted mixture: a well-observed history
    // plus a small slice of readings that each lost one attribute.
    let fresh = mrsl_bayesnet::sampler::sample_dataset(
        &bn,
        complete_n + incomplete_n,
        derive_seed(opts.seed, &[4]),
    );
    let mut rel = Relation::new(bn.schema().clone());
    let mut rng = seeded_rng(derive_seed(opts.seed, &[5]));
    for (i, point) in fresh.iter().enumerate() {
        if i < complete_n {
            rel.push_complete(point.clone()).expect("arity ok");
        } else {
            let drop = AttrId(rng.gen_range(0..4u16));
            rel.push(point.to_partial().without_attr(drop))
                .expect("arity ok");
        }
    }
    let derive_config = DeriveConfig {
        learn: learn_config,
        gibbs: gibbs(),
        seed: derive_seed(opts.seed, &[6]),
        ..DeriveConfig::default()
    };
    let out = derive_probabilistic_db_with_engine(&rel, &derive_config, &ensemble);

    // Audit only the uncertain readings: a certain tuple matching a
    // selection saturates `P = 1` no matter the masses, which would zero
    // every gradient (and every residual) for that query.
    let mut uncertain = ProbDb::new(out.db.schema().clone());
    uncertain.set_provenance(out.db.provenance().unwrap_or("ensemble"));
    for b in out.db.blocks() {
        uncertain
            .push_block(b.clone())
            .expect("derived blocks stay valid");
    }

    // Label selection queries with the oracle and fit the masses.
    let gold = gold_catalog(&uncertain, &rel, &bn);
    let auditor = CatalogEngine::new(&gold);
    let mut labeled: Vec<LabeledQuery> = Vec::new();
    for attr in 0..4u16 {
        for value in 0..3u16 {
            let q = Query::scan("weather").filter(
                Predicate::eq(AttrId(attr), ValueId(value))
                    .and_eq(AttrId((attr + 1) % 4), ValueId(value % 3)),
            );
            let target = auditor.probability(&q).expect("liftable selection").0;
            labeled.push(LabeledQuery::new(q, target));
        }
    }
    let validation = labeled.split_off(9);
    let mut catalog = Catalog::new();
    catalog.add("weather", uncertain).expect("fresh catalog");
    let masses = fit_block_masses(
        &mut catalog,
        &labeled,
        &validation,
        &MassFitConfig {
            epochs,
            learning_rate: 0.01,
            ..MassFitConfig::default()
        },
    )
    .expect("selection queries are liftable");

    Fitted {
        ensemble,
        weights,
        masses,
    }
}

/// Learned ensemble weights + gradient mass fitting, one summary table.
pub fn run(opts: &ExpOptions) -> Report {
    let fitted = fit(opts);
    let mut table = Table::new(["quantity", "value"]);
    for ((name, w), acc) in fitted
        .weights
        .members
        .iter()
        .zip(&fitted.weights.weights)
        .zip(&fitted.weights.member_accuracy)
    {
        table.push_row([
            format!("{name} weight / top-1"),
            format!("{} / {}%", fmt_f(*w, 3), fmt_f(100.0 * acc, 1)),
        ]);
    }
    table.push_row([
        "ensemble top-1 (uniform)".into(),
        format!(
            "{}% ({}%)",
            fmt_f(100.0 * fitted.weights.ensemble_accuracy, 1),
            fmt_f(100.0 * fitted.weights.uniform_accuracy, 1)
        ),
    ]);
    table.push_row([
        "ensemble held-out LL (uniform)".into(),
        format!(
            "{} ({})",
            fmt_f(fitted.weights.ensemble_log_likelihood, 2),
            fmt_f(fitted.weights.uniform_log_likelihood, 2)
        ),
    ]);
    table.push_row([
        "mass-fit train MSE".into(),
        format!(
            "{:.2e} -> {:.2e}",
            fitted.masses.initial_train_loss(),
            fitted.masses.final_train_loss()
        ),
    ]);
    table.push_row([
        "mass-fit validation MSE".into(),
        format!(
            "{:.2e} -> {:.2e}",
            fitted
                .masses
                .validation_loss
                .first()
                .expect("validation set"),
            fitted
                .masses
                .validation_loss
                .last()
                .expect("validation set")
        ),
    ]);
    Report::new(
        "learn",
        "Learning subsystem: EM ensemble weights on held-out tuples + gradient mass fitting on labeled answers",
        table,
    )
    .note(format!(
        "fitted mixture {}; {} held-out instances, {} EM iterations; mass fit over {} epochs",
        fitted.ensemble.describe(),
        fitted.weights.instances,
        fitted.weights.em_iterations,
        fitted.masses.epochs
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learned_weights_hold_their_own_and_mass_fit_converges() {
        let opts = ExpOptions {
            seed: 11,
            ..ExpOptions::default()
        };
        let fitted = fit(&opts);
        // EM starts from uniform weights and ascends the held-out mixture
        // likelihood monotonically, so the fitted mixture never scores
        // below uniform voting on its objective...
        assert!(
            fitted.weights.ensemble_log_likelihood >= fitted.weights.uniform_log_likelihood - 1e-9,
            "learned LL {} vs uniform {}",
            fitted.weights.ensemble_log_likelihood,
            fitted.weights.uniform_log_likelihood
        );
        // ...and top-1 accuracy tracks it to within a single flipped
        // instance.
        assert!(
            fitted.weights.ensemble_accuracy
                >= fitted.weights.uniform_accuracy - 1.0 / fitted.weights.instances as f64 - 1e-9,
            "learned {} vs uniform {}",
            fitted.weights.ensemble_accuracy,
            fitted.weights.uniform_accuracy
        );
        // Gradient fitting fits the labeled answers...
        assert!(fitted.masses.final_train_loss() < fitted.masses.initial_train_loss() / 10.0);
        // ...and generalizes to held-out labels rather than overfitting.
        assert!(
            fitted.masses.validation_loss.last().unwrap()
                <= fitted.masses.validation_loss.first().unwrap()
        );
    }
}
