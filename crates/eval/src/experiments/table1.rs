//! Table I: characteristics of the 20 benchmark networks.
//!
//! Regenerates the table from the reconstructed topologies and flags any
//! deviation from the published figures (domain size and depth must match
//! exactly; average cardinality may deviate ≤ 0.25 for BN1/BN2, see
//! DESIGN.md §4).

use crate::experiments::ExpOptions;
use crate::report::Report;
use mrsl_bayesnet::paper_networks;
use mrsl_util::table::fmt_f;
use mrsl_util::Table;

/// Regenerates Table I.
pub fn run(_opts: &ExpOptions) -> Report {
    let mut table = Table::new([
        "network",
        "num. attrs",
        "avg card",
        "dom. size",
        "depth",
        "paper avg card",
        "match",
    ]);
    let mut deviations = 0usize;
    for net in paper_networks() {
        let t = &net.topology;
        let exact = t.domain_size() == net.paper_domain_size && t.depth() == net.paper_depth;
        let card_close = (t.avg_cardinality() - net.paper_avg_card).abs() <= 0.25 + 1e-9;
        if !(exact && card_close) {
            deviations += 1;
        }
        table.push_row([
            net.name().to_string(),
            t.num_attrs().to_string(),
            fmt_f(t.avg_cardinality(), 1),
            t.domain_size().to_string(),
            t.depth().to_string(),
            fmt_f(net.paper_avg_card, 1),
            if exact && card_close { "yes" } else { "NO" }.to_string(),
        ]);
    }
    Report::new("table1", "Characteristics of 20 Bayesian networks", table).note(format!(
        "{deviations} rows deviate from the published figures (0 expected)"
    ))
}

/// Fig. 7: ASCII sketches of the shaped networks.
pub fn run_fig7(_opts: &ExpOptions) -> Report {
    let shaped = [
        "BN8", "BN9", "BN17", "BN18", "BN13", "BN14", "BN15", "BN16", "BN19", "BN20",
    ];
    let mut table = Table::new(["network", "shape", "sketch"]);
    for name in shaped {
        let net = mrsl_bayesnet::catalog::by_name(name).expect("catalog name");
        let shape = match net.topology.depth() {
            2 => "crown",
            d if d == net.topology.num_attrs() => "line",
            _ => "layered",
        };
        let sketch = net
            .topology
            .describe()
            .lines()
            .skip(1)
            .map(str::trim)
            .collect::<Vec<_>>()
            .join("; ");
        table.push_row([name.to_string(), shape.to_string(), sketch]);
    }
    Report::new(
        "fig7",
        "Properties of a subset of the Bayesian networks",
        table,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_twenty_matching_rows() {
        let r = run(&ExpOptions::default());
        assert_eq!(r.table.len(), 20);
        for row in r.table.rows() {
            assert_eq!(row[6], "yes", "network {} deviates", row[0]);
        }
    }

    #[test]
    fn fig7_covers_shaped_networks() {
        let r = run_fig7(&ExpOptions::default());
        assert_eq!(r.table.len(), 10);
        assert!(r.table.rows().iter().any(|row| row[1] == "crown"));
        assert!(r.table.rows().iter().any(|row| row[1] == "line"));
    }
}
