//! Fig. 10: prediction accuracy of multi-variable (Gibbs) inference as a
//! function of the number of samples per tuple, for 2–5 missing
//! attributes, on BN8, BN17 and BN2.

use crate::experiments::{grid, mean, ExpOptions};
use crate::report::Report;
use crate::runner::run_parallel;
use mrsl_bayesnet::catalog::by_name;
use mrsl_core::{GibbsConfig, VotingConfig, WorkloadStrategy};
use mrsl_util::table::fmt_f;
use mrsl_util::Table;

fn sample_counts(opts: &ExpOptions) -> Vec<usize> {
    if opts.full {
        vec![100, 500, 1_000, 2_000, 5_000]
    } else {
        vec![100, 500, 1_000, 2_000]
    }
}

fn params(opts: &ExpOptions) -> (usize, usize, f64) {
    if opts.full {
        (100_000, 150, 0.001)
    } else {
        (8_000, 40, 0.002)
    }
}

/// The paper's three featured networks with their missing-count ranges
/// (at most `attrs − 1` attributes are hidden).
fn panels() -> Vec<(&'static str, Vec<usize>)> {
    vec![
        ("BN8", vec![2, 3]),
        ("BN17", vec![2, 3, 4, 5]),
        ("BN2", vec![2, 3, 4]),
    ]
}

/// Regenerates Fig. 10: average KL per (network, #missing, samples/tuple).
pub fn run(opts: &ExpOptions) -> Report {
    let (train, test, support) = params(opts);
    let mut table = Table::new(["network", "missing", "samples/tuple", "avg KL", "avg top-1"]);
    for (name, missing_counts) in panels() {
        let net = by_name(name).expect("catalog name").topology;
        let cells = grid(std::slice::from_ref(&net), opts, train, test, |s| {
            s.support = support;
        });
        // Build each context once; sweep (k, N) inside the job.
        let sweeps: Vec<(usize, usize)> = missing_counts
            .iter()
            .flat_map(|&k| sample_counts(opts).into_iter().map(move |n| (k, n)))
            .collect();
        let rows = run_parallel(cells, opts.threads, |spec| {
            let ctx = spec.build();
            sweeps
                .iter()
                .map(|&(k, n)| {
                    let gibbs = GibbsConfig {
                        burn_in: (n / 10).clamp(50, 500),
                        samples: n,
                        voting: VotingConfig::best_averaged(),
                    };
                    let score = ctx.eval_multi(k, &gibbs, WorkloadStrategy::TupleDag);
                    (k, n, score)
                })
                .collect::<Vec<_>>()
        });
        for &(k, n) in &sweeps {
            let kl = mean(
                rows.iter()
                    .flatten()
                    .filter(|(rk, rn, _)| *rk == k && *rn == n)
                    .map(|(_, _, s)| s.kl),
            );
            let top1 = mean(
                rows.iter()
                    .flatten()
                    .filter(|(rk, rn, _)| *rk == k && *rn == n)
                    .map(|(_, _, s)| s.top1),
            );
            table.push_row([
                name.to_string(),
                k.to_string(),
                n.to_string(),
                fmt_f(kl, 3),
                fmt_f(top1, 3),
            ]);
        }
    }
    Report::new(
        "fig10",
        format!("Multi-variable inference accuracy (training = {train}, support = {support})"),
        table,
    )
    .note("paper: KL decreases with more samples/tuple and fewer missing attributes; BN17 is harder than BN8")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_samples_do_not_hurt_on_easy_network() {
        let opts = ExpOptions {
            instances: 1,
            splits: 1,
            ..ExpOptions::default()
        };
        let net = by_name("BN8").unwrap().topology;
        let cells = grid(std::slice::from_ref(&net), &opts, 4_000, 40, |s| {
            s.support = 0.002;
        });
        let ctx = cells.into_iter().next().unwrap().build();
        let score_at = |n: usize| {
            let gibbs = GibbsConfig {
                burn_in: 50,
                samples: n,
                voting: VotingConfig::best_averaged(),
            };
            ctx.eval_multi(2, &gibbs, WorkloadStrategy::TupleDag).kl
        };
        let few = score_at(60);
        let many = score_at(1_500);
        assert!(
            many <= few + 0.05,
            "1500 samples ({many}) should beat 60 ({few})"
        );
    }

    #[test]
    fn panels_respect_attribute_counts() {
        for (name, ks) in panels() {
            let attrs = by_name(name).unwrap().topology.num_attrs();
            assert!(ks.iter().all(|&k| k < attrs), "{name}");
        }
    }
}
