//! Fig. 9: single-attribute inference time as a function of model size,
//! for test batches of different sizes, with a linear fit.
//!
//! Model size is varied by picking networks of different complexity at a
//! low support threshold; each observation is (model size, wall-clock time
//! of inferring the whole batch).

use crate::experiments::{grid, ExpOptions};
use crate::report::Report;
use crate::runner::run_parallel;
use mrsl_core::VotingConfig;
use mrsl_util::stats::linear_fit;
use mrsl_util::table::fmt_f;
use mrsl_util::Table;

fn networks() -> Vec<&'static str> {
    vec![
        "BN8", "BN9", "BN10", "BN11", "BN13", "BN14", "BN15", "BN17", "BN18",
    ]
}

fn params(opts: &ExpOptions) -> (usize, f64, Vec<usize>) {
    if opts.full {
        (50_000, 0.001, vec![1_000, 5_000, 10_000])
    } else {
        (6_000, 0.002, vec![1_000, 5_000])
    }
}

/// Regenerates Fig. 9: per (network, batch) the model size and batch
/// inference time, plus the per-batch linear fits the paper draws.
pub fn run(opts: &ExpOptions) -> Report {
    let (train, support, batches) = params(opts);
    let mut table = Table::new([
        "network",
        "model size",
        "batch (tuples)",
        "inference time (s)",
        "per tuple (ms)",
    ]);
    let mut per_batch: Vec<(usize, Vec<(f64, f64)>)> =
        batches.iter().map(|&b| (b, Vec::new())).collect();

    for name in networks() {
        let net = mrsl_bayesnet::catalog::by_name(name)
            .expect("catalog name")
            .topology;
        let max_batch = *batches.iter().max().expect("non-empty batches");
        let single = ExpOptions {
            splits: 1,
            instances: 1,
            ..*opts
        };
        let cells = grid(std::slice::from_ref(&net), &single, train, max_batch, |s| {
            s.support = support;
        });
        // Timing: sequential execution.
        let outputs = run_parallel(cells, 1, |spec| {
            let mut spec = spec;
            let mut rows = Vec::new();
            for &batch in &batches {
                spec.test_size = batch;
                let ctx = spec.build();
                let secs = ctx.time_single_batch(&VotingConfig::best_averaged());
                rows.push((ctx.model.size(), batch, secs));
            }
            rows
        });
        for rows in outputs {
            for (size, batch, secs) in rows {
                table.push_row([
                    name.to_string(),
                    size.to_string(),
                    batch.to_string(),
                    fmt_f(secs, 4),
                    fmt_f(secs * 1e3 / batch as f64, 4),
                ]);
                per_batch
                    .iter_mut()
                    .find(|(b, _)| *b == batch)
                    .expect("batch tracked")
                    .1
                    .push((size as f64, secs));
            }
        }
    }

    let mut report = Report::new(
        "fig9",
        format!("Inference time vs model size (support = {support}, training = {train})"),
        table,
    );
    for (batch, points) in &per_batch {
        if points.len() >= 2 {
            let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
            if xs.iter().any(|&x| (x - xs[0]).abs() > 1e-9) {
                let (slope, intercept) = linear_fit(&xs, &ys);
                report = report.note(format!(
                    "batch {batch}: time ≈ {:.3e}·size + {:.4} s (linear fit)",
                    slope, intercept
                ));
            }
        }
    }
    report.note("paper: inference time scales linearly with model size; ~0.15 ms/tuple for models ≤ 10k rules")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_all_networks_and_batches() {
        let opts = ExpOptions {
            instances: 1,
            splits: 1,
            ..ExpOptions::default()
        };
        // Shrink the work: just validate on the default (non-full) params
        // shape using the public entry point would be slow; instead check
        // params consistency.
        let (_, _, batches) = params(&opts);
        assert!(!batches.is_empty());
        assert_eq!(networks().len(), 9);
    }
}
