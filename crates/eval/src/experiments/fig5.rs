//! Fig. 5: KL divergence and top-1 accuracy as a function of training set
//! size, for the four voting methods (support = 0.001 in the paper).

use crate::experiments::{grid, mean, sweep_networks, ExpOptions};
use crate::report::Report;
use crate::runner::run_parallel;
use mrsl_core::VotingConfig;
use mrsl_util::table::fmt_f;
use mrsl_util::Table;

fn training_sizes(opts: &ExpOptions) -> Vec<usize> {
    if opts.full {
        vec![1_000, 5_000, 10_000, 50_000, 100_000]
    } else {
        vec![500, 1_000, 2_000, 5_000, 10_000]
    }
}

fn support(opts: &ExpOptions) -> f64 {
    if opts.full {
        0.001
    } else {
        0.002
    }
}

/// Regenerates both panels of Fig. 5 (KL and top-1 per training size and
/// voting method).
pub fn run(opts: &ExpOptions) -> Report {
    let nets = sweep_networks(opts);
    let votings = VotingConfig::table2_order();
    let theta = support(opts);

    let mut header: Vec<String> = vec!["training size".into()];
    for v in &votings {
        header.push(format!("{} KL", v.label()));
    }
    for v in &votings {
        header.push(format!("{} top-1", v.label()));
    }
    let mut table = Table::new(header);

    for train in training_sizes(opts) {
        let test = (train / 9).clamp(100, if opts.full { 10_000 } else { 400 });
        let cells = grid(&nets, opts, train, test, |s| s.support = theta);
        let scores = run_parallel(cells, opts.threads, |spec| {
            let ctx = spec.build();
            votings.map(|v| ctx.eval_single(&v))
        });
        let mut row = vec![train.to_string()];
        for vi in 0..votings.len() {
            row.push(fmt_f(mean(scores.iter().map(|s| s[vi].kl)), 3));
        }
        for vi in 0..votings.len() {
            row.push(fmt_f(mean(scores.iter().map(|s| s[vi].top1)), 3));
        }
        table.push_row(row);
    }

    Report::new(
        "fig5",
        format!("KL divergence and top-1 accuracy vs training set size (support = {theta})"),
        table,
    )
    .note("paper: KL falls then plateaus ≥ 5000 points; best-* lead at scale, all-* lead on tiny samples")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrsl_bayesnet::catalog::by_name;

    #[test]
    fn accuracy_improves_with_training_size() {
        // One easy network, two sizes differing by 16x: KL must drop for
        // best-averaged voting.
        let opts = ExpOptions {
            instances: 1,
            splits: 1,
            ..ExpOptions::default()
        };
        let net = by_name("BN8").unwrap().topology;
        let score_at = |train: usize| {
            let cells = grid(std::slice::from_ref(&net), &opts, train, 200, |s| {
                s.support = 0.002;
            });
            let scores = run_parallel(cells, 1, |spec| {
                spec.build().eval_single(&VotingConfig::best_averaged())
            });
            mean(scores.iter().map(|s| s.kl))
        };
        let small = score_at(250);
        let large = score_at(4_000);
        assert!(
            large < small,
            "KL should improve with data: {small} -> {large}"
        );
    }
}
