//! One module per reproduced table / figure (see DESIGN.md §3).
//!
//! Every experiment takes [`ExpOptions`] and returns a [`crate::Report`].
//! By default parameters are scaled down so the whole suite finishes in
//! minutes on a laptop; `full = true` restores the paper-scale parameters
//! (100k training tuples, support 0.001, 3 instances × 3 splits), which
//! take CPU-hours. EXPERIMENTS.md records which scale produced the numbers
//! it reports.

pub mod ablation;
pub mod fig10;
pub mod fig11;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig8;
pub mod fig9;
pub mod joins;
pub mod learn;
pub mod queries;
pub mod table1;
pub mod table2;

use crate::framework::CellSpec;
use mrsl_bayesnet::TopologySpec;
use serde::{Deserialize, Serialize};

/// Options shared by all experiments.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ExpOptions {
    /// Use paper-scale parameters (slow) instead of the scaled defaults.
    pub full: bool,
    /// Master seed for the whole experiment.
    pub seed: u64,
    /// Network instances averaged per topology (paper: 3).
    pub instances: u64,
    /// Train/test splits averaged per instance (paper: 3).
    pub splits: u64,
    /// Worker threads for the cell grid (0 = one per core). Timing
    /// experiments ignore this and run sequentially.
    pub threads: usize,
}

impl Default for ExpOptions {
    fn default() -> Self {
        Self {
            full: false,
            seed: 42,
            instances: 2,
            splits: 2,
            threads: 0,
        }
    }
}

impl ExpOptions {
    /// Instances × splits for the current scale (paper protocol when full).
    pub fn replicates(&self) -> (u64, u64) {
        if self.full {
            (3, 3)
        } else {
            (self.instances, self.splits)
        }
    }
}

/// Expands a topology list into the instance × split grid of cells,
/// applying `tweak` to each spec.
pub(crate) fn grid<F: Fn(&mut CellSpec)>(
    topologies: &[TopologySpec],
    opts: &ExpOptions,
    train_size: usize,
    test_size: usize,
    tweak: F,
) -> Vec<CellSpec> {
    let (instances, splits) = opts.replicates();
    let mut cells = Vec::new();
    for topology in topologies {
        for instance in 0..instances {
            for split in 0..splits {
                let mut spec = CellSpec::new(topology.clone(), train_size, test_size);
                spec.instance = instance;
                spec.split = split;
                spec.seed = opts.seed;
                tweak(&mut spec);
                cells.push(spec);
            }
        }
    }
    cells
}

/// Mean of an iterator of f64 (0.0 when empty).
pub(crate) fn mean(xs: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for x in xs {
        sum += x;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// The ten "4–6 attribute" networks of the Fig. 4 learning experiments
/// (§VI-B: 4–6 attributes, cardinality 2–8, domain size 16–262,144).
pub(crate) fn fig4_networks() -> Vec<TopologySpec> {
    [
        "BN1", "BN8", "BN9", "BN10", "BN11", "BN12", "BN13", "BN14", "BN15", "BN16",
    ]
    .iter()
    .map(|n| {
        mrsl_bayesnet::catalog::by_name(n)
            .expect("catalog name")
            .topology
    })
    .collect()
}

/// The fourteen networks of Table II.
pub(crate) fn table2_networks() -> Vec<TopologySpec> {
    [
        "BN1", "BN2", "BN3", "BN4", "BN5", "BN6", "BN7", "BN8", "BN9", "BN10", "BN11", "BN12",
        "BN17", "BN18",
    ]
    .iter()
    .map(|n| {
        mrsl_bayesnet::catalog::by_name(n)
            .expect("catalog name")
            .topology
    })
    .collect()
}

/// A small representative subset used by the scaled-down accuracy sweeps
/// (Figs. 5 and 6) to keep default runtimes in minutes; `--full` uses the
/// Table II set.
pub(crate) fn sweep_networks(opts: &ExpOptions) -> Vec<TopologySpec> {
    if opts.full {
        table2_networks()
    } else {
        ["BN1", "BN4", "BN8", "BN10", "BN13", "BN17"]
            .iter()
            .map(|n| {
                mrsl_bayesnet::catalog::by_name(n)
                    .expect("catalog name")
                    .topology
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_expands_instances_and_splits() {
        let nets = vec![mrsl_bayesnet::builders::chain("c", &[2, 2])];
        let opts = ExpOptions {
            instances: 2,
            splits: 3,
            ..ExpOptions::default()
        };
        let cells = grid(&nets, &opts, 100, 10, |s| s.support = 0.5);
        assert_eq!(cells.len(), 6);
        assert!(cells.iter().all(|c| c.support == 0.5));
        assert_eq!(cells.iter().filter(|c| c.instance == 1).count(), 3);
    }

    #[test]
    fn full_scale_uses_paper_replicates() {
        let opts = ExpOptions {
            full: true,
            instances: 1,
            splits: 1,
            ..ExpOptions::default()
        };
        assert_eq!(opts.replicates(), (3, 3));
    }

    #[test]
    fn network_sets_have_paper_sizes() {
        assert_eq!(fig4_networks().len(), 10);
        assert_eq!(table2_networks().len(), 14);
        assert_eq!(sweep_networks(&ExpOptions::default()).len(), 6);
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(std::iter::empty()), 0.0);
        assert!((mean([1.0, 2.0, 3.0].into_iter()) - 2.0).abs() < 1e-12);
    }
}
