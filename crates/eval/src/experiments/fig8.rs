//! Fig. 8: how network properties affect single-attribute accuracy
//! (best-averaged voting; paper settings support 0.001, training 100k).
//!
//! (a) topology/depth: BN18, BN19, BN20 (10 binary attrs, depth 2/3/5);
//! (b) network size: crown-shaped BN8, BN9, BN17, BN18 (4–10 attrs);
//! (c) attribute cardinality: line-shaped BN13–BN16 (cardinality 2–8).

use crate::experiments::{grid, mean, ExpOptions};
use crate::report::Report;
use crate::runner::run_parallel;
use mrsl_bayesnet::catalog::by_name;
use mrsl_core::VotingConfig;
use mrsl_util::table::fmt_f;
use mrsl_util::Table;

fn params(opts: &ExpOptions) -> (usize, usize, f64) {
    if opts.full {
        (100_000, 5_000, 0.001)
    } else {
        (8_000, 400, 0.002)
    }
}

fn panel(
    opts: &ExpOptions,
    id: &str,
    title: &str,
    x_label: &str,
    networks: &[(&str, String)],
    note: &str,
) -> Report {
    let (train, test, support) = params(opts);
    let mut table = Table::new(["network", x_label, "avg KL", "avg top-1"]);
    for (name, x) in networks {
        let net = by_name(name).expect("catalog name").topology;
        let cells = grid(std::slice::from_ref(&net), opts, train, test, |s| {
            s.support = support;
        });
        let scores = run_parallel(cells, opts.threads, |spec| {
            spec.build().eval_single(&VotingConfig::best_averaged())
        });
        table.push_row([
            (*name).to_string(),
            x.clone(),
            fmt_f(mean(scores.iter().map(|s| s.kl)), 3),
            fmt_f(mean(scores.iter().map(|s| s.top1)), 3),
        ]);
    }
    Report::new(id, title, table).note(note)
}

/// Fig. 8(a): KL vs network depth for BN18/BN19/BN20.
pub fn run_fig8a(opts: &ExpOptions) -> Report {
    let nets = [
        ("BN18", "2".to_string()),
        ("BN19", "3".to_string()),
        ("BN20", "5".to_string()),
    ];
    panel(
        opts,
        "fig8a",
        "KL divergence vs network depth (10 binary attributes)",
        "depth",
        &nets,
        "paper: no accuracy difference across depths — topology does not directly matter",
    )
}

/// Fig. 8(b): KL vs number of attributes for the crown-shaped networks.
pub fn run_fig8b(opts: &ExpOptions) -> Report {
    let nets = [
        ("BN8", "4".to_string()),
        ("BN9", "6".to_string()),
        ("BN17", "8".to_string()),
        ("BN18", "10".to_string()),
    ];
    panel(
        opts,
        "fig8b",
        "KL divergence vs number of attributes (crown-shaped)",
        "num attrs",
        &nets,
        "paper: smaller crowns achieve higher accuracy",
    )
}

/// Fig. 8(c): KL vs attribute cardinality for the line-shaped networks.
pub fn run_fig8c(opts: &ExpOptions) -> Report {
    let nets = [
        ("BN13", "2".to_string()),
        ("BN14", "4".to_string()),
        ("BN15", "6".to_string()),
        ("BN16", "8".to_string()),
    ];
    panel(
        opts,
        "fig8c",
        "KL divergence vs attribute cardinality (line-shaped)",
        "cardinality",
        &nets,
        "paper: lower cardinality corresponds to higher accuracy",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinality_hurts_accuracy() {
        // The Fig. 8(c) trend at reduced scale: binary chains beat
        // cardinality-6 chains on KL.
        let opts = ExpOptions {
            instances: 1,
            splits: 1,
            ..ExpOptions::default()
        };
        let kl_of = |name: &str| {
            let net = by_name(name).unwrap().topology;
            let cells = grid(std::slice::from_ref(&net), &opts, 4_000, 200, |s| {
                s.support = 0.002;
            });
            let scores = run_parallel(cells, 1, |spec| {
                spec.build().eval_single(&VotingConfig::best_averaged())
            });
            mean(scores.iter().map(|s| s.kl))
        };
        let low = kl_of("BN13");
        let high = kl_of("BN15");
        assert!(low < high, "card 2 KL {low} vs card 6 KL {high}");
    }
}
