//! Fig. 4: building the MRSL model.
//!
//! (a) model-building time vs training set size (support = 0.02);
//! (b) model-building time vs support (training = 10k);
//! (c) model size vs support (training = 10k).
//! All averaged over the ten 4–6-attribute networks.

use crate::experiments::{fig4_networks, grid, mean, ExpOptions};
use crate::framework::CellOutcome;
use crate::report::Report;
use crate::runner::run_parallel;
use mrsl_util::table::fmt_f;
use mrsl_util::Table;

fn training_sizes(opts: &ExpOptions) -> Vec<usize> {
    if opts.full {
        vec![1_000, 10_000, 20_000, 50_000, 100_000]
    } else {
        vec![500, 1_000, 2_000, 5_000, 10_000]
    }
}

fn supports(opts: &ExpOptions) -> Vec<f64> {
    if opts.full {
        vec![0.001, 0.01, 0.02, 0.05, 0.1]
    } else {
        vec![0.005, 0.01, 0.02, 0.05, 0.1]
    }
}

fn fixed_training(opts: &ExpOptions) -> usize {
    if opts.full {
        10_000
    } else {
        5_000
    }
}

fn build_outcomes(opts: &ExpOptions, train: usize, support: f64) -> Vec<CellOutcome> {
    let nets = fig4_networks();
    // Timing experiment: single split per instance, sequential execution
    // so cells do not contend for cores.
    let single_split = ExpOptions { splits: 1, ..*opts };
    let cells = grid(&nets, &single_split, train, 0, |s| s.support = support);
    run_parallel(cells, 1, |spec| spec.build().outcome())
}

/// Fig. 4(a): model-building time vs training set size, support 0.02.
pub fn run_fig4a(opts: &ExpOptions) -> Report {
    let mut table = Table::new(["training size", "avg build time (s)", "avg model size"]);
    for train in training_sizes(opts) {
        let outcomes = build_outcomes(opts, train, 0.02);
        table.push_row([
            train.to_string(),
            fmt_f(mean(outcomes.iter().map(|o| o.learn_secs)), 4),
            fmt_f(mean(outcomes.iter().map(|o| o.model_size as f64)), 1),
        ]);
    }
    Report::new(
        "fig4a",
        "Model building time vs training set size (support = 0.02)",
        table,
    )
    .note("paper: time grows linearly with training size; model size stays ~constant")
}

/// Fig. 4(b): model-building time vs support, fixed training size.
pub fn run_fig4b(opts: &ExpOptions) -> Report {
    let train = fixed_training(opts);
    let mut table = Table::new(["support", "avg build time (s)"]);
    for support in supports(opts) {
        let outcomes = build_outcomes(opts, train, support);
        table.push_row([
            fmt_f(support, 3),
            fmt_f(mean(outcomes.iter().map(|o| o.learn_secs)), 4),
        ]);
    }
    Report::new(
        "fig4b",
        format!("Model building time vs support (training = {train})"),
        table,
    )
    .note("paper: build time decreases super-linearly with increasing support")
}

/// Fig. 4(c): model size (total meta-rules) vs support.
pub fn run_fig4c(opts: &ExpOptions) -> Report {
    let train = fixed_training(opts);
    let mut table = Table::new(["support", "avg model size (meta-rules)"]);
    for support in supports(opts) {
        let outcomes = build_outcomes(opts, train, support);
        table.push_row([
            fmt_f(support, 3),
            fmt_f(mean(outcomes.iter().map(|o| o.model_size as f64)), 1),
        ]);
    }
    Report::new(
        "fig4c",
        format!("Model size vs support (training = {train})"),
        table,
    )
    .note("paper: model size drops sharply as the support threshold rises")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpOptions {
        ExpOptions {
            instances: 1,
            splits: 1,
            ..ExpOptions::default()
        }
    }

    #[test]
    fn build_time_grows_with_training_size() {
        // Compare smallest vs largest default training size on one instance.
        let a = build_outcomes(&tiny(), 500, 0.02);
        let b = build_outcomes(&tiny(), 5_000, 0.02);
        let ta = mean(a.iter().map(|o| o.learn_secs));
        let tb = mean(b.iter().map(|o| o.learn_secs));
        assert!(tb > ta, "10x data should take longer: {ta} vs {tb}");
    }

    #[test]
    fn model_size_shrinks_with_support() {
        let low = build_outcomes(&tiny(), 2_000, 0.005);
        let high = build_outcomes(&tiny(), 2_000, 0.1);
        let slow = mean(low.iter().map(|o| o.model_size as f64));
        let shigh = mean(high.iter().map(|o| o.model_size as f64));
        assert!(slow > shigh, "θ=0.005 gives {slow}, θ=0.1 gives {shigh}");
    }

    #[test]
    fn reports_have_all_sweep_rows() {
        let opts = tiny();
        // Use a cut-down manual sweep to keep the test quick: just check
        // the report shape on the smallest sizes.
        let r = run_fig4c(&ExpOptions {
            instances: 1,
            splits: 1,
            ..ExpOptions::default()
        });
        assert_eq!(r.table.len(), supports(&opts).len());
    }
}
