//! Accuracy metrics (§VI-A "Measuring Accuracy").

/// Floor applied to estimate entries before taking logs, so KL stays
/// finite when an empirical histogram has empty cells. The learned CPDs
/// themselves are already strictly positive by meta-rule smoothing.
pub const EST_FLOOR: f64 = 1e-9;

/// Kullback-Leibler divergence `KL(truth ‖ estimate)` in nats.
///
/// The paper "compare\[s\] the probability distributions predicted by MRSL
/// to the true probability distributions of the Bayesian network, using KL
/// divergence"; the true distribution is the reference.
///
/// # Panics
/// Panics when lengths differ or the truth is not a distribution.
pub fn kl_divergence(truth: &[f64], estimate: &[f64]) -> f64 {
    assert_eq!(truth.len(), estimate.len(), "length mismatch");
    debug_assert!(
        (truth.iter().sum::<f64>() - 1.0).abs() < 1e-6,
        "truth must sum to 1"
    );
    let mut kl = 0.0;
    for (&p, &q) in truth.iter().zip(estimate) {
        if p > 0.0 {
            kl += p * (p / q.max(EST_FLOOR)).ln();
        }
    }
    // Numerical noise can push a perfect match a hair below zero.
    kl.max(0.0)
}

/// True when the estimate's most probable value equals the truth's
/// ("% of correct top-1 guesses"). Ties broken by first index on both
/// sides, which is deterministic and symmetric.
pub fn top1_match(truth: &[f64], estimate: &[f64]) -> bool {
    argmax(truth) == argmax(estimate)
}

/// Total variation distance `½ Σ |p − q|`; an auxiliary metric used by the
/// workspace's own sanity experiments.
pub fn total_variation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    0.5 * a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>()
}

fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kl_zero_for_identical() {
        let p = [0.2, 0.3, 0.5];
        assert_eq!(kl_divergence(&p, &p), 0.0);
    }

    #[test]
    fn kl_positive_for_different() {
        let p = [0.9, 0.1];
        let q = [0.5, 0.5];
        let kl = kl_divergence(&p, &q);
        // 0.9 ln(1.8) + 0.1 ln(0.2) ≈ 0.368.
        assert!((kl - (0.9f64 * 1.8f64.ln() + 0.1f64 * 0.2f64.ln())).abs() < 1e-12);
        assert!(kl > 0.0);
    }

    #[test]
    fn kl_is_asymmetric() {
        let p = [0.9, 0.1];
        let q = [0.6, 0.4];
        assert!((kl_divergence(&p, &q) - kl_divergence(&q, &p)).abs() > 1e-6);
    }

    #[test]
    fn kl_finite_with_zero_estimate_cells() {
        let p = [0.5, 0.5];
        let q = [1.0, 0.0];
        let kl = kl_divergence(&p, &q);
        assert!(kl.is_finite());
        assert!(kl > 1.0); // 0.5 ln(0.5/1e-9) is large but finite.
    }

    #[test]
    fn kl_ignores_zero_truth_cells() {
        let p = [1.0, 0.0];
        let q = [0.9, 0.1];
        assert!((kl_divergence(&p, &q) - (1.0f64 / 0.9).ln()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn kl_rejects_length_mismatch() {
        kl_divergence(&[1.0], &[0.5, 0.5]);
    }

    #[test]
    fn top1_matches_argmax() {
        assert!(top1_match(&[0.1, 0.9], &[0.4, 0.6]));
        assert!(!top1_match(&[0.1, 0.9], &[0.6, 0.4]));
        assert!(top1_match(&[0.5, 0.5], &[0.5, 0.5])); // tie → first index
    }

    #[test]
    fn tv_bounds() {
        assert_eq!(total_variation(&[1.0, 0.0], &[1.0, 0.0]), 0.0);
        assert!((total_variation(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
        let tv = total_variation(&[0.7, 0.3], &[0.5, 0.5]);
        assert!((tv - 0.2).abs() < 1e-12);
    }
}
