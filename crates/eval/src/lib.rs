//! The paper's experimental framework (§VI).
//!
//! "Our experimental framework takes as input the description of the
//! topology of a Bayesian network, and generates an instance of the network
//! by randomly selecting probability distributions … Given a BN instance,
//! we sample it to generate a set of complete tuples of specified size. The
//! sample is then split into training and test. MRSL is learned from the
//! training set. The test set is further processed, and one or more
//! attribute values are replaced by a '?' in each tuple. Inference is then
//! run over the test set … accuracy … is evaluated by comparing to the
//! corresponding true probability distributions of the Bayesian network."
//!
//! * [`metrics`] — KL divergence, top-1 agreement, total variation.
//! * [`missing`] — uniform missing-value injection.
//! * [`framework`] — the per-cell pipeline: instance → sample → split →
//!   inject → learn → infer → score.
//! * [`runner`] — a thread-pool grid runner (cells are independent).
//! * [`report`] — paper-style tables with JSON export.
//! * [`experiments`] — one module per reproduced table / figure.

pub mod experiments;
pub mod framework;
pub mod metrics;
pub mod missing;
pub mod report;
pub mod runner;

pub use framework::{CellOutcome, CellSpec, EvalContext};
pub use metrics::{kl_divergence, top1_match, total_variation};
pub use report::Report;
