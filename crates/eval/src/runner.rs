//! The experiment grid runner, backed by the workspace's shared rayon
//! executor.
//!
//! Evaluation cells (network × instance × split) are independent; the
//! experiments fan them out over worker threads and fold the results. The
//! same executor powers `mrsl_core`'s batched inference
//! (`mrsl_core::infer_batch`), so the whole workspace has exactly one
//! parallelism story. The algorithms under test stay single-threaded —
//! parallelism only shortens the wall-clock of the *grid*, and
//! timing-sensitive experiments pass `threads = 1`.

use rayon::prelude::*;

/// Runs `f` over `jobs` on `threads` workers, returning results in job
/// order. `threads = 0` means "one per available core".
pub fn run_parallel<I, T, F>(jobs: Vec<I>, threads: usize, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let threads = effective_threads(threads, jobs.len());
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool construction cannot fail");
    if threads <= 1 {
        // Still install the single-thread scope: cell bodies may call the
        // core batch layer, and timing-sensitive experiments rely on
        // `threads = 1` meaning *no* parallelism anywhere underneath.
        return pool.install(|| jobs.into_iter().map(f).collect());
    }
    pool.install(|| jobs.into_par_iter().map(f).collect())
}

/// Resolves a thread-count request against the machine and job count.
pub fn effective_threads(requested: usize, jobs: usize) -> usize {
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let limit = if requested == 0 { available } else { requested };
    limit.clamp(1, jobs.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_job_order() {
        let jobs: Vec<usize> = (0..100).collect();
        let out = run_parallel(jobs, 4, |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn runs_every_job_exactly_once() {
        let counter = AtomicUsize::new(0);
        let jobs: Vec<usize> = (0..57).collect();
        let out = run_parallel(jobs, 3, |x| {
            counter.fetch_add(1, Ordering::SeqCst);
            x
        });
        assert_eq!(out.len(), 57);
        assert_eq!(counter.load(Ordering::SeqCst), 57);
    }

    #[test]
    fn single_thread_path_works() {
        let out = run_parallel(vec![1, 2, 3], 1, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_jobs_yield_empty_results() {
        let out: Vec<i32> = run_parallel(Vec::<i32>::new(), 8, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let jobs: Vec<u64> = (0..64).collect();
        let expected: Vec<u64> = jobs.iter().map(|&x| x.wrapping_mul(0x9e37)).collect();
        for threads in [1, 2, 4, 8] {
            let out = run_parallel(jobs.clone(), threads, |x| x.wrapping_mul(0x9e37));
            assert_eq!(out, expected, "{threads} threads");
        }
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(effective_threads(4, 2), 2);
        assert_eq!(effective_threads(1, 100), 1);
        assert!(effective_threads(0, 100) >= 1);
        assert_eq!(effective_threads(8, 0), 1);
    }
}
