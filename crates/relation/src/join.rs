//! Primary-/foreign-key joins between incomplete relations.
//!
//! The paper assumes a single relation but notes (§I-B) that with multiple
//! relations "we may exploit correlations that hold across relations, by
//! computing a primary-foreign key join when appropriate" and then apply
//! the learning pipeline to the joined relation. This module implements
//! that preprocessing step.
//!
//! Semantics: `join(left, lk, right, rk)` matches each left tuple whose
//! key attribute `lk` is **observed** against the right tuples whose key
//! `rk` equals it (right tuples with a missing key never match). The
//! result schema is the left schema followed by the right schema minus its
//! key column; missing values carry over, so a join of two incomplete
//! tuples is an incomplete joined tuple. Left tuples with a missing key
//! are dropped — their join partner is undefined — and counted in the
//! returned statistics.

use crate::relation::Relation;
use crate::schema::{AttrId, Schema, SchemaBuilder};
use crate::tuple::PartialTuple;
use crate::RelationError;
use mrsl_util::FxHashMap;
use std::sync::Arc;

/// Join statistics: what was matched and what was skipped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Output tuples produced.
    pub matched: usize,
    /// Left tuples dropped because their key was missing.
    pub left_missing_key: usize,
    /// Right tuples unusable because their key was missing.
    pub right_missing_key: usize,
    /// Left tuples with an observed key that matched no right tuple.
    pub left_unmatched: usize,
}

/// Joins `left ⋈ right` on `left.lk = right.rk`.
///
/// Requires the two key attributes to have identical domains (label lists
/// in the same order).
pub fn join(
    left: &Relation,
    lk: AttrId,
    right: &Relation,
    rk: AttrId,
) -> Result<(Relation, JoinStats), RelationError> {
    let ls = left.schema();
    let rs = right.schema();
    if ls.attr(lk).labels() != rs.attr(rk).labels() {
        return Err(RelationError::Parse(format!(
            "join keys `{}` and `{}` have different domains",
            ls.attr(lk).name(),
            rs.attr(rk).name()
        )));
    }

    let joined_schema = joined_schema(ls, rs, rk)?;
    let mut stats = JoinStats::default();

    // Index the right side by key value.
    let mut by_key: FxHashMap<u16, Vec<PartialTuple>> = FxHashMap::default();
    let right_tuples = right
        .complete_part()
        .iter()
        .map(|p| p.to_partial())
        .chain(right.incomplete_part().iter().cloned());
    for t in right_tuples {
        match t.get(rk) {
            Some(v) => by_key.entry(v.0).or_default().push(t),
            None => stats.right_missing_key += 1,
        }
    }

    let mut out = Relation::new(joined_schema.clone());
    let left_tuples = left
        .complete_part()
        .iter()
        .map(|p| p.to_partial())
        .chain(left.incomplete_part().iter().cloned());
    let left_arity = ls.attr_count();
    for lt in left_tuples {
        let Some(key) = lt.get(lk) else {
            stats.left_missing_key += 1;
            continue;
        };
        let Some(partners) = by_key.get(&key.0) else {
            stats.left_unmatched += 1;
            continue;
        };
        for rt in partners {
            let mut slots: Vec<Option<u16>> = Vec::with_capacity(joined_schema.attr_count());
            for a in ls.attr_ids() {
                slots.push(lt.get(a).map(|v| v.0));
            }
            for a in rs.attr_ids() {
                if a != rk {
                    slots.push(rt.get(a).map(|v| v.0));
                }
            }
            out.push(PartialTuple::from_options(&slots))?;
            stats.matched += 1;
        }
        let _ = left_arity;
    }
    Ok((out, stats))
}

/// The joined schema: left attributes then right attributes minus the
/// right key. Name collisions are disambiguated with a `right_` prefix.
fn joined_schema(
    left: &Arc<Schema>,
    right: &Arc<Schema>,
    rk: AttrId,
) -> Result<Arc<Schema>, RelationError> {
    let mut b = SchemaBuilder::default();
    for (_, attr) in left.iter() {
        b = b.attribute(attr.name(), attr.labels().iter().cloned());
    }
    for (id, attr) in right.iter() {
        if id == rk {
            continue;
        }
        let name = if left.attr_id(attr.name()).is_ok() {
            format!("right_{}", attr.name())
        } else {
            attr.name().to_string()
        };
        b = b.attribute(name, attr.labels().iter().cloned());
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::parse_relation;

    fn people() -> Relation {
        parse_relation("city,age\nNYC,20\nSEA,30\nNYC,?\n?,40\n").expect("valid input")
    }

    fn cities() -> Relation {
        parse_relation("name,coast\nNYC,east\nSEA,west\nLAX,west\n").expect("valid input")
    }

    fn city_key(r: &Relation, name: &str) -> AttrId {
        r.schema().attr_id(name).expect("key attr")
    }

    #[test]
    fn joins_on_matching_keys() {
        let people = people();
        let cities = cities();
        // Domains must match: people.city = {NYC, SEA}; cities.name =
        // {LAX, NYC, SEA}. Rebuild people against the city domain.
        let aligned =
            parse_relation("city,age\nNYC,20\nSEA,30\nNYC,?\n?,40\nLAX,20\n").expect("valid input");
        let (joined, stats) = join(
            &aligned,
            city_key(&aligned, "city"),
            &cities,
            city_key(&cities, "name"),
        )
        .expect("join succeeds");
        assert_eq!(stats.matched, 4); // NYC, SEA, NYC(incomplete), LAX
        assert_eq!(stats.left_missing_key, 1);
        assert_eq!(joined.schema().attr_count(), 3); // city, age, coast
        assert_eq!(joined.len(), 4);
        // Incomplete left tuples stay incomplete after the join.
        assert_eq!(joined.incomplete_part().len(), 1);
        let _ = people;
    }

    #[test]
    fn rejects_mismatched_key_domains() {
        let people = people();
        let cities = cities();
        let e = join(
            &people,
            city_key(&people, "city"),
            &cities,
            city_key(&cities, "name"),
        )
        .unwrap_err();
        assert!(e.to_string().contains("different domains"));
    }

    #[test]
    fn right_missing_keys_are_skipped() {
        let left = parse_relation("k,x\nA,1\nB,2\n").expect("valid");
        let right = parse_relation("k2,y\nA,9\n?,8\nB,7\n").expect("valid");
        let (joined, stats) = join(
            &left,
            left.schema().attr_id("k").unwrap(),
            &right,
            right.schema().attr_id("k2").unwrap(),
        )
        .expect("join succeeds");
        assert_eq!(stats.right_missing_key, 1);
        assert_eq!(stats.matched, 2);
        assert_eq!(joined.complete_part().len(), 2);
    }

    #[test]
    fn name_collisions_get_prefixed() {
        let left = parse_relation("k,v\nA,1\n").expect("valid");
        let right = parse_relation("k2,v\nA,2\n").expect("valid");
        let (joined, _) = join(
            &left,
            left.schema().attr_id("k").unwrap(),
            &right,
            right.schema().attr_id("k2").unwrap(),
        )
        .expect("join succeeds");
        assert!(joined.schema().attr_id("right_v").is_ok());
    }

    #[test]
    fn unmatched_left_tuples_are_counted() {
        let left = parse_relation("k,x\nA,1\nB,2\n").expect("valid");
        let right = parse_relation("k2,y\nA,9\nB,?\n").expect("valid");
        // Shrink right to only A.
        let right_a = parse_relation("k2,y\nA,9\nB,8\n").expect("valid");
        let (joined, stats) = join(
            &left,
            left.schema().attr_id("k").unwrap(),
            &right_a,
            right_a.schema().attr_id("k2").unwrap(),
        )
        .expect("join succeeds");
        assert_eq!(stats.left_unmatched, 0);
        assert_eq!(joined.len(), 2);
        let _ = right;
    }
}
