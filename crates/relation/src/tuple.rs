//! Complete and incomplete tuples, matching and subsumption.
//!
//! Definitions implemented here (paper §II):
//!
//! * **Def. 2.1** — an *incomplete tuple* assigns values to a subset of
//!   attributes, its *complete portion*. Here: [`PartialTuple`], with the
//!   complete portion as an [`AttrMask`].
//! * **Def. 2.2** — a *complete tuple* (point) assigns values to every
//!   attribute: [`CompleteTuple`].
//! * **Def. 2.3** — a point *matches* an incomplete tuple when they agree on
//!   the complete portion: [`PartialTuple::matches_point`].
//! * **Def. 2.4** — `t1` *subsumes* `t2` (written `t2 ≺ t1`) when the
//!   complete portion of `t1` is a proper subset of that of `t2` and the two
//!   agree on it: [`PartialTuple::subsumes`].

use crate::mask::AttrMask;
use crate::schema::{AttrId, Schema, ValueId};
use crate::RelationError;
use serde::{Deserialize, Serialize};

/// One attribute-value assignment `a = v`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Assignment {
    /// The assigned attribute.
    pub attr: AttrId,
    /// The assigned value.
    pub value: ValueId,
}

impl Assignment {
    /// Convenience constructor.
    pub fn new(attr: AttrId, value: ValueId) -> Self {
        Self { attr, value }
    }
}

/// A complete tuple (a *point*, Def. 2.2): one value per schema attribute.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CompleteTuple {
    values: Box<[u16]>,
}

impl CompleteTuple {
    /// Builds a point from raw value indices, one per attribute in column
    /// order. The caller is responsible for domain-range validity; the
    /// schema-checked path is [`CompleteTuple::checked`].
    pub fn from_values(values: Vec<u16>) -> Self {
        Self {
            values: values.into_boxed_slice(),
        }
    }

    /// Builds a point, validating arity and domain ranges against `schema`.
    pub fn checked(schema: &Schema, values: Vec<u16>) -> Result<Self, RelationError> {
        if values.len() != schema.attr_count() {
            return Err(RelationError::ArityMismatch {
                expected: schema.attr_count(),
                got: values.len(),
            });
        }
        for (i, &v) in values.iter().enumerate() {
            let attr = AttrId(i as u16);
            if (v as usize) >= schema.cardinality(attr) {
                return Err(RelationError::UnknownValue {
                    attr: schema.attr(attr).name().to_string(),
                    value: format!("#{v}"),
                });
            }
        }
        Ok(Self::from_values(values))
    }

    /// Number of attributes.
    #[inline]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Value of attribute `a`.
    #[inline]
    pub fn value(&self, a: AttrId) -> ValueId {
        ValueId(self.values[a.index()])
    }

    /// Raw value indices in column order.
    #[inline]
    pub fn raw(&self) -> &[u16] {
        &self.values
    }

    /// Converts to a [`PartialTuple`] with the full mask.
    pub fn to_partial(&self) -> PartialTuple {
        PartialTuple {
            values: self.values.clone(),
            mask: AttrMask::full(self.values.len()),
        }
    }
}

/// An incomplete tuple (Def. 2.1): values on a subset of attributes.
///
/// Slots outside the mask hold 0 and are never read; all comparisons go
/// through the mask. A `PartialTuple` with a full mask behaves exactly like
/// a point (and [`PartialTuple::is_complete`] reports it).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PartialTuple {
    values: Box<[u16]>,
    mask: AttrMask,
}

impl PartialTuple {
    /// Builds from optional values, one slot per attribute in column order
    /// (`None` = missing / `?`).
    pub fn from_options(slots: &[Option<u16>]) -> Self {
        let mut mask = AttrMask::EMPTY;
        let mut values = vec![0u16; slots.len()];
        for (i, slot) in slots.iter().enumerate() {
            if let Some(v) = *slot {
                mask = mask.with(AttrId(i as u16));
                values[i] = v;
            }
        }
        Self {
            values: values.into_boxed_slice(),
            mask,
        }
    }

    /// Builds from a list of assignments over a schema of `arity` attributes.
    /// Later assignments to the same attribute overwrite earlier ones.
    pub fn from_assignments(arity: usize, assignments: &[Assignment]) -> Self {
        let mut values = vec![0u16; arity];
        let mut mask = AttrMask::EMPTY;
        for asg in assignments {
            values[asg.attr.index()] = asg.value.0;
            mask = mask.with(asg.attr);
        }
        Self {
            values: values.into_boxed_slice(),
            mask,
        }
    }

    /// The tuple with no assignments over `arity` attributes — the paper's
    /// `t* = ⟨?, ?, …, ?⟩` which subsumes every tuple (§V-A).
    pub fn all_missing(arity: usize) -> Self {
        Self {
            values: vec![0u16; arity].into_boxed_slice(),
            mask: AttrMask::EMPTY,
        }
    }

    /// Number of attribute slots (schema arity).
    #[inline]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The complete portion of the tuple.
    #[inline]
    pub fn mask(&self) -> AttrMask {
        self.mask
    }

    /// The missing attributes (complement of the mask within the schema).
    #[inline]
    pub fn missing_mask(&self) -> AttrMask {
        AttrMask::full(self.values.len()).difference(self.mask)
    }

    /// Value of `a` if assigned.
    #[inline]
    pub fn get(&self, a: AttrId) -> Option<ValueId> {
        if self.mask.contains(a) {
            Some(ValueId(self.values[a.index()]))
        } else {
            None
        }
    }

    /// Value of `a` assuming it is assigned.
    ///
    /// # Panics
    /// Panics (in debug builds) if `a` is not in the complete portion.
    #[inline]
    pub fn value_unchecked(&self, a: AttrId) -> ValueId {
        debug_assert!(self.mask.contains(a), "attribute {a:?} is missing");
        ValueId(self.values[a.index()])
    }

    /// True when every attribute is assigned.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.mask == AttrMask::full(self.values.len())
    }

    /// Iterates over the assignments in the complete portion.
    pub fn assignments(&self) -> impl Iterator<Item = Assignment> + '_ {
        self.mask
            .iter()
            .map(move |a| Assignment::new(a, ValueId(self.values[a.index()])))
    }

    /// Def. 2.3: does point `p` match this tuple (agree on the complete
    /// portion)?
    #[inline]
    pub fn matches_point(&self, p: &CompleteTuple) -> bool {
        debug_assert_eq!(self.arity(), p.arity());
        self.mask
            .iter()
            .all(|a| self.values[a.index()] == p.raw()[a.index()])
    }

    /// Do this tuple and `other` agree on every attribute of `on`?
    ///
    /// Both tuples must assign all attributes in `on` for the result to be
    /// meaningful; callers ensure `on ⊆ self.mask() ∩ other.mask()`.
    #[inline]
    pub fn agrees_on(&self, other: &PartialTuple, on: AttrMask) -> bool {
        on.iter()
            .all(|a| self.values[a.index()] == other.values[a.index()])
    }

    /// Def. 2.4: does `self` subsume `other` (`other ≺ self`)?
    ///
    /// True when `self`'s complete portion is a **proper** subset of
    /// `other`'s and the two agree on it.
    pub fn subsumes(&self, other: &PartialTuple) -> bool {
        self.mask.is_proper_subset(other.mask) && self.agrees_on(other, self.mask)
    }

    /// Like [`PartialTuple::subsumes`] but also true for equal tuples.
    pub fn subsumes_or_equal(&self, other: &PartialTuple) -> bool {
        self.mask.is_subset(other.mask) && self.agrees_on(other, self.mask)
    }

    /// Completes this tuple by taking missing values from `fill`.
    ///
    /// # Panics
    /// Panics if arities differ.
    pub fn complete_with(&self, fill: &CompleteTuple) -> CompleteTuple {
        assert_eq!(self.arity(), fill.arity());
        let mut values = fill.raw().to_vec();
        for a in self.mask.iter() {
            values[a.index()] = self.values[a.index()];
        }
        CompleteTuple::from_values(values)
    }

    /// Completes this tuple by filling the **missing** attributes from
    /// `assignments` (e.g. one decoded joint-inference combination).
    /// Observed values always win; missing attributes not covered by any
    /// assignment default to value 0.
    pub fn complete_with_assignments(&self, assignments: &[(AttrId, ValueId)]) -> CompleteTuple {
        let mut values = self.values.to_vec();
        for &(a, v) in assignments {
            if !self.mask.contains(a) {
                values[a.index()] = v.0;
            }
        }
        CompleteTuple::from_values(values)
    }

    /// Returns a copy with attribute `a` set to `v`.
    #[must_use]
    pub fn with_assignment(&self, a: AttrId, v: ValueId) -> PartialTuple {
        let mut values = self.values.clone();
        values[a.index()] = v.0;
        PartialTuple {
            values,
            mask: self.mask.with(a),
        }
    }

    /// Returns a copy with attribute `a` made missing.
    #[must_use]
    pub fn without_attr(&self, a: AttrId) -> PartialTuple {
        let mut values = self.values.clone();
        values[a.index()] = 0;
        PartialTuple {
            values,
            mask: self.mask.without(a),
        }
    }

    /// Projects the tuple onto `keep`, making all other attributes missing.
    #[must_use]
    pub fn project(&self, keep: AttrMask) -> PartialTuple {
        let kept = self.mask.intersect(keep);
        let mut values = vec![0u16; self.values.len()];
        for a in kept.iter() {
            values[a.index()] = self.values[a.index()];
        }
        PartialTuple {
            values: values.into_boxed_slice(),
            mask: kept,
        }
    }

    /// Converts to a point if complete.
    pub fn to_complete(&self) -> Option<CompleteTuple> {
        if self.is_complete() {
            Some(CompleteTuple::from_values(self.values.to_vec()))
        } else {
            None
        }
    }

    /// A canonical 128-bit encoding of (mask, masked values) used as a hash
    /// key when deduplicating workloads. Collisions are impossible for
    /// schemas with ≤ 16 attributes of cardinality ≤ 256; beyond that the
    /// full struct is compared (the encoding is only a grouping key).
    pub fn packed_key(&self) -> (u64, u64) {
        let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
        for a in self.mask.iter() {
            acc = (acc ^ self.values[a.index()] as u64).wrapping_mul(0x0100_0000_01b3);
        }
        (self.mask.bits(), acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::fig1_schema;

    fn pt(slots: &[Option<u16>]) -> PartialTuple {
        PartialTuple::from_options(slots)
    }

    #[test]
    fn fig1_t1_shape() {
        // t1 = ⟨age=20, edu=HS, inc=?, nw=?⟩
        let t1 = pt(&[Some(0), Some(0), None, None]);
        assert_eq!(t1.mask().count(), 2);
        assert!(!t1.is_complete());
        assert_eq!(t1.get(AttrId(0)), Some(ValueId(0)));
        assert_eq!(t1.get(AttrId(2)), None);
        let missing: Vec<u16> = t1.missing_mask().iter().map(|a| a.0).collect();
        assert_eq!(missing, vec![2, 3]);
    }

    #[test]
    fn matching_follows_def_2_3() {
        // t1 = ⟨20, HS, ?, ?⟩; t4 = ⟨20, HS, 100K, 500K⟩ matches it,
        // t2 = ⟨20, BS, 50K, 100K⟩ does not (paper's example).
        let t1 = pt(&[Some(0), Some(0), None, None]);
        let t4 = CompleteTuple::from_values(vec![0, 0, 1, 1]);
        let t2 = CompleteTuple::from_values(vec![0, 1, 0, 0]);
        assert!(t1.matches_point(&t4));
        assert!(!t1.matches_point(&t2));
    }

    #[test]
    fn subsumption_follows_def_2_4() {
        // t5 = ⟨20, ?, ?, ?⟩, t1 = ⟨20, HS, ?, ?⟩, t3 = ⟨20, ?, 50K, ?⟩.
        // t1 ≺ t5 and t3 ≺ t5 (t5 subsumes both); t1 and t3 incomparable.
        let t5 = pt(&[Some(0), None, None, None]);
        let t1 = pt(&[Some(0), Some(0), None, None]);
        let t3 = pt(&[Some(0), None, Some(0), None]);
        assert!(t5.subsumes(&t1));
        assert!(t5.subsumes(&t3));
        assert!(!t1.subsumes(&t5));
        assert!(!t1.subsumes(&t3));
        assert!(!t3.subsumes(&t1));
        // Value disagreement kills subsumption even with subset masks.
        let t5b = pt(&[Some(1), None, None, None]);
        assert!(!t5b.subsumes(&t1));
        // Subsumption is strict: a tuple does not subsume itself.
        assert!(!t1.subsumes(&t1));
        assert!(t1.subsumes_or_equal(&t1));
    }

    #[test]
    fn all_missing_subsumes_everything() {
        let t_star = PartialTuple::all_missing(4);
        let t1 = pt(&[Some(0), Some(0), None, None]);
        assert!(t_star.subsumes(&t1));
        assert!(t_star.mask().is_empty());
    }

    #[test]
    fn complete_with_fills_missing_slots() {
        let t = pt(&[Some(2), None, Some(1), None]);
        let fill = CompleteTuple::from_values(vec![9, 7, 9, 5]);
        let done = t.complete_with(&fill);
        assert_eq!(done.raw(), &[2, 7, 1, 5]);
    }

    #[test]
    fn complete_with_assignments_respects_observed_values() {
        let t = pt(&[Some(2), None, Some(1), None]);
        let done = t.complete_with_assignments(&[
            (AttrId(1), ValueId(7)),
            (AttrId(0), ValueId(9)), // observed: ignored
            (AttrId(3), ValueId(5)),
        ]);
        assert_eq!(done.raw(), &[2, 7, 1, 5]);
        // Missing attributes without an assignment default to 0.
        let partial = t.complete_with_assignments(&[(AttrId(3), ValueId(5))]);
        assert_eq!(partial.raw(), &[2, 0, 1, 5]);
    }

    #[test]
    fn with_and_without_assignment() {
        let t = pt(&[Some(0), None, None, None]);
        let t2 = t.with_assignment(AttrId(2), ValueId(1));
        assert_eq!(t2.get(AttrId(2)), Some(ValueId(1)));
        assert_eq!(t2.mask().count(), 2);
        let t3 = t2.without_attr(AttrId(0));
        assert_eq!(t3.get(AttrId(0)), None);
        assert_eq!(t3.mask().count(), 1);
    }

    #[test]
    fn project_keeps_only_requested() {
        let t = pt(&[Some(1), Some(2), Some(0), None]);
        let keep = AttrMask::from_attrs([AttrId(1), AttrId(3)]);
        let p = t.project(keep);
        assert_eq!(p.get(AttrId(1)), Some(ValueId(2)));
        assert_eq!(p.get(AttrId(0)), None);
        assert_eq!(p.get(AttrId(3)), None);
        assert_eq!(p.mask().count(), 1);
    }

    #[test]
    fn to_complete_roundtrip() {
        let t = pt(&[Some(1), Some(0), Some(1), Some(1)]);
        assert!(t.is_complete());
        let c = t.to_complete().unwrap();
        assert_eq!(c.raw(), &[1, 0, 1, 1]);
        assert_eq!(c.to_partial(), t);
        assert!(pt(&[None, Some(0), Some(1), Some(1)])
            .to_complete()
            .is_none());
    }

    #[test]
    fn checked_tuple_validates() {
        let s = fig1_schema();
        assert!(CompleteTuple::checked(&s, vec![0, 0, 0, 0]).is_ok());
        assert!(matches!(
            CompleteTuple::checked(&s, vec![0, 0, 0]),
            Err(RelationError::ArityMismatch { .. })
        ));
        assert!(matches!(
            CompleteTuple::checked(&s, vec![3, 0, 0, 0]),
            Err(RelationError::UnknownValue { .. })
        ));
    }

    #[test]
    fn assignments_iterate_in_attr_order() {
        let t = PartialTuple::from_assignments(
            4,
            &[
                Assignment::new(AttrId(3), ValueId(1)),
                Assignment::new(AttrId(1), ValueId(2)),
            ],
        );
        let asgs: Vec<(u16, u16)> = t.assignments().map(|a| (a.attr.0, a.value.0)).collect();
        assert_eq!(asgs, vec![(1, 2), (3, 1)]);
    }

    #[test]
    fn packed_key_distinguishes_masks_and_values() {
        let a = pt(&[Some(0), Some(1), None, None]);
        let b = pt(&[Some(0), None, Some(1), None]);
        let c = pt(&[Some(0), Some(2), None, None]);
        assert_ne!(a.packed_key(), b.packed_key());
        assert_ne!(a.packed_key(), c.packed_key());
        assert_eq!(a.packed_key(), a.clone().packed_key());
    }

    #[test]
    fn overwriting_assignment_keeps_last() {
        let t = PartialTuple::from_assignments(
            2,
            &[
                Assignment::new(AttrId(0), ValueId(1)),
                Assignment::new(AttrId(0), ValueId(2)),
            ],
        );
        assert_eq!(t.get(AttrId(0)), Some(ValueId(2)));
        assert_eq!(t.mask().count(), 1);
    }
}
