//! Attribute bitmasks identifying the complete portion of a tuple.
//!
//! Subsumption checks (Def. 2.4) and tuple-DAG construction (§V-B) reduce to
//! subset tests between complete portions; representing a portion as one
//! `u64` makes those tests a couple of machine instructions. The paper's
//! benchmark caps at 10 attributes; we support up to 64.

use crate::schema::AttrId;
use serde::{Deserialize, Serialize};

/// A set of attributes, stored as a 64-bit bitmask.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct AttrMask(u64);

impl AttrMask {
    /// Maximum number of attributes addressable by a mask.
    pub const MAX_ATTRS: usize = 64;

    /// The empty set.
    pub const EMPTY: AttrMask = AttrMask(0);

    /// A mask containing the single attribute `a`.
    #[inline]
    pub fn single(a: AttrId) -> Self {
        debug_assert!((a.index()) < Self::MAX_ATTRS);
        AttrMask(1u64 << a.0)
    }

    /// The full set over `n` attributes.
    #[inline]
    pub fn full(n: usize) -> Self {
        assert!(n <= Self::MAX_ATTRS);
        if n == 64 {
            AttrMask(u64::MAX)
        } else {
            AttrMask((1u64 << n) - 1)
        }
    }

    /// Builds a mask from attribute ids.
    pub fn from_attrs<I: IntoIterator<Item = AttrId>>(attrs: I) -> Self {
        attrs.into_iter().fold(Self::EMPTY, |m, a| m.with(a))
    }

    /// Raw bits (for packing into cache keys).
    #[inline]
    pub fn bits(self) -> u64 {
        self.0
    }

    /// True if `a` is in the set.
    #[inline]
    pub fn contains(self, a: AttrId) -> bool {
        self.0 & (1u64 << a.0) != 0
    }

    /// This set with `a` added.
    #[inline]
    #[must_use]
    pub fn with(self, a: AttrId) -> Self {
        AttrMask(self.0 | (1u64 << a.0))
    }

    /// This set with `a` removed.
    #[inline]
    #[must_use]
    pub fn without(self, a: AttrId) -> Self {
        AttrMask(self.0 & !(1u64 << a.0))
    }

    /// Set union.
    #[inline]
    #[must_use]
    pub fn union(self, other: Self) -> Self {
        AttrMask(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    #[must_use]
    pub fn intersect(self, other: Self) -> Self {
        AttrMask(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[inline]
    #[must_use]
    pub fn difference(self, other: Self) -> Self {
        AttrMask(self.0 & !other.0)
    }

    /// True if `self ⊆ other`.
    #[inline]
    pub fn is_subset(self, other: Self) -> bool {
        self.0 & !other.0 == 0
    }

    /// True if `self ⊂ other` (proper subset).
    #[inline]
    pub fn is_proper_subset(self, other: Self) -> bool {
        self.0 != other.0 && self.is_subset(other)
    }

    /// Number of attributes in the set.
    #[inline]
    pub fn count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True if the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the attributes in ascending id order.
    pub fn iter(self) -> MaskIter {
        MaskIter(self.0)
    }
}

/// Iterator over the attribute ids of an [`AttrMask`].
#[derive(Debug, Clone)]
pub struct MaskIter(u64);

impl Iterator for MaskIter {
    type Item = AttrId;

    #[inline]
    fn next(&mut self) -> Option<AttrId> {
        if self.0 == 0 {
            None
        } else {
            let tz = self.0.trailing_zeros();
            self.0 &= self.0 - 1;
            Some(AttrId(tz as u16))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for MaskIter {}

impl FromIterator<AttrId> for AttrMask {
    fn from_iter<T: IntoIterator<Item = AttrId>>(iter: T) -> Self {
        Self::from_attrs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(ids: &[u16]) -> AttrMask {
        AttrMask::from_attrs(ids.iter().map(|&i| AttrId(i)))
    }

    #[test]
    fn basic_set_operations() {
        let a = m(&[0, 2, 5]);
        assert!(a.contains(AttrId(2)));
        assert!(!a.contains(AttrId(1)));
        assert_eq!(a.count(), 3);
        assert_eq!(a.with(AttrId(1)).count(), 4);
        assert_eq!(a.without(AttrId(2)).count(), 2);
        assert_eq!(a.without(AttrId(3)), a);
    }

    #[test]
    fn subset_relations() {
        let small = m(&[1, 3]);
        let big = m(&[1, 2, 3]);
        assert!(small.is_subset(big));
        assert!(small.is_proper_subset(big));
        assert!(!big.is_subset(small));
        assert!(big.is_subset(big));
        assert!(!big.is_proper_subset(big));
        assert!(AttrMask::EMPTY.is_subset(small));
    }

    #[test]
    fn union_intersect_difference() {
        let a = m(&[0, 1]);
        let b = m(&[1, 2]);
        assert_eq!(a.union(b), m(&[0, 1, 2]));
        assert_eq!(a.intersect(b), m(&[1]));
        assert_eq!(a.difference(b), m(&[0]));
        assert_eq!(b.difference(a), m(&[2]));
    }

    #[test]
    fn full_and_empty() {
        assert_eq!(AttrMask::full(0), AttrMask::EMPTY);
        assert_eq!(AttrMask::full(3).count(), 3);
        assert_eq!(AttrMask::full(64).count(), 64);
        assert!(AttrMask::EMPTY.is_empty());
        assert!(!AttrMask::full(1).is_empty());
    }

    #[test]
    fn iteration_order_is_ascending() {
        let ids: Vec<u16> = m(&[7, 1, 4]).iter().map(|a| a.0).collect();
        assert_eq!(ids, vec![1, 4, 7]);
        let it = m(&[7, 1, 4]).iter();
        assert_eq!(it.len(), 3);
    }

    #[test]
    fn from_iterator_collects() {
        let mask: AttrMask = [AttrId(3), AttrId(0)].into_iter().collect();
        assert_eq!(mask, m(&[0, 3]));
    }

    #[test]
    #[should_panic]
    fn full_rejects_oversized() {
        AttrMask::full(65);
    }
}
