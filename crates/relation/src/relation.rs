//! The relation container: complete part `Rc`, incomplete part `Ri`,
//! and support counting (Def. 2.3).

use crate::schema::Schema;
use crate::tuple::{CompleteTuple, PartialTuple};
use crate::RelationError;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A relation `R` over a [`Schema`], kept as the disjoint union of its
/// complete part `Rc` (points) and incomplete part `Ri`.
///
/// The split mirrors the paper's view of `R = Rc ∪ Ri` (§II): learning reads
/// only `Rc`, inference produces a distribution for each member of `Ri`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Relation {
    schema: Arc<Schema>,
    complete: Vec<CompleteTuple>,
    incomplete: Vec<PartialTuple>,
}

impl Relation {
    /// Creates an empty relation over `schema`.
    pub fn new(schema: Arc<Schema>) -> Self {
        Self {
            schema,
            complete: Vec::new(),
            incomplete: Vec::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Inserts a tuple, routing it to `Rc` or `Ri` by completeness.
    pub fn push(&mut self, tuple: PartialTuple) -> Result<(), RelationError> {
        if tuple.arity() != self.schema.attr_count() {
            return Err(RelationError::ArityMismatch {
                expected: self.schema.attr_count(),
                got: tuple.arity(),
            });
        }
        match tuple.to_complete() {
            Some(point) => self.complete.push(point),
            None => self.incomplete.push(tuple),
        }
        Ok(())
    }

    /// Inserts a point directly into `Rc`.
    pub fn push_complete(&mut self, point: CompleteTuple) -> Result<(), RelationError> {
        if point.arity() != self.schema.attr_count() {
            return Err(RelationError::ArityMismatch {
                expected: self.schema.attr_count(),
                got: point.arity(),
            });
        }
        self.complete.push(point);
        Ok(())
    }

    /// The complete part `Rc`.
    pub fn complete_part(&self) -> &[CompleteTuple] {
        &self.complete
    }

    /// The incomplete part `Ri`.
    pub fn incomplete_part(&self) -> &[PartialTuple] {
        &self.incomplete
    }

    /// Total number of tuples `|R|`.
    pub fn len(&self) -> usize {
        self.complete.len() + self.incomplete.len()
    }

    /// True when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of points matching `t` in `Rc` (the numerator of Def. 2.3).
    pub fn match_count(&self, t: &PartialTuple) -> usize {
        self.complete.iter().filter(|p| t.matches_point(p)).count()
    }

    /// Def. 2.3: the support of `t` — the fraction of points in `Rc` that
    /// match `t`. Zero when `Rc` is empty.
    pub fn support(&self, t: &PartialTuple) -> f64 {
        if self.complete.is_empty() {
            return 0.0;
        }
        self.match_count(t) as f64 / self.complete.len() as f64
    }

    /// Builds a relation directly from parts (used by generators).
    pub fn from_parts(
        schema: Arc<Schema>,
        complete: Vec<CompleteTuple>,
        incomplete: Vec<PartialTuple>,
    ) -> Result<Self, RelationError> {
        let arity = schema.attr_count();
        if let Some(t) = complete.iter().find(|t| t.arity() != arity) {
            return Err(RelationError::ArityMismatch {
                expected: arity,
                got: t.arity(),
            });
        }
        if let Some(t) = incomplete.iter().find(|t| t.arity() != arity) {
            return Err(RelationError::ArityMismatch {
                expected: arity,
                got: t.arity(),
            });
        }
        if incomplete.iter().any(|t| t.is_complete()) {
            // Keep the Rc/Ri invariant: complete tuples never live in Ri.
            let mut rel = Self::new(schema);
            rel.complete = complete;
            for tup in incomplete {
                rel.push(tup).expect("arity checked above");
            }
            return Ok(rel);
        }
        Ok(Self {
            schema,
            complete,
            incomplete,
        })
    }
}

/// Builds the 17-tuple running example of Fig. 1 (matchmaking profiles).
///
/// Used across the workspace for doc examples and smoke tests; the returned
/// relation has 8 complete and 9 incomplete tuples, exactly as in the paper.
pub fn fig1_relation() -> Relation {
    use crate::schema::fig1_schema;
    let schema = fig1_schema();
    let rows: [[Option<&str>; 4]; 17] = [
        [Some("20"), Some("HS"), None, None],                 // t1
        [Some("20"), Some("BS"), Some("50K"), Some("100K")],  // t2
        [Some("20"), None, Some("50K"), None],                // t3
        [Some("20"), Some("HS"), Some("100K"), Some("500K")], // t4
        [Some("20"), None, None, None],                       // t5
        [Some("20"), Some("HS"), Some("50K"), Some("100K")],  // t6
        [Some("20"), Some("HS"), Some("50K"), Some("500K")],  // t7
        [None, Some("HS"), None, None],                       // t8
        [Some("30"), Some("BS"), Some("100K"), Some("100K")], // t9
        [Some("30"), None, Some("100K"), None],               // t10
        [Some("30"), Some("HS"), None, None],                 // t11
        [Some("30"), Some("MS"), None, None],                 // t12
        [Some("40"), Some("BS"), Some("100K"), Some("100K")], // t13
        [Some("40"), Some("HS"), None, None],                 // t14
        [Some("40"), Some("BS"), Some("50K"), Some("500K")],  // t15
        [Some("40"), Some("HS"), None, Some("500K")],         // t16
        [Some("40"), Some("HS"), Some("100K"), Some("500K")], // t17
    ];
    let mut rel = Relation::new(schema.clone());
    for row in rows {
        let slots: Vec<Option<u16>> = row
            .iter()
            .enumerate()
            .map(|(i, cell)| {
                cell.map(|label| {
                    schema
                        .value_id(crate::schema::AttrId(i as u16), label)
                        .expect("fig1 labels are in-domain")
                        .0
                })
            })
            .collect();
        rel.push(PartialTuple::from_options(&slots))
            .expect("fig1 arity is correct");
    }
    rel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::fig1_schema;

    #[test]
    fn fig1_relation_splits_rc_ri() {
        let r = fig1_relation();
        assert_eq!(r.len(), 17);
        assert_eq!(r.complete_part().len(), 8);
        assert_eq!(r.incomplete_part().len(), 9);
    }

    #[test]
    fn fig1_support_of_t1_is_three_eighths() {
        // Paper: supp(t1) = 3/8 — points t4, t6, t7 match ⟨20, HS, ?, ?⟩.
        let r = fig1_relation();
        let t1 = PartialTuple::from_options(&[Some(0), Some(0), None, None]);
        assert_eq!(r.match_count(&t1), 3);
        assert!((r.support(&t1) - 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn support_of_empty_tuple_is_one() {
        let r = fig1_relation();
        let t_star = PartialTuple::all_missing(4);
        assert!((r.support(&t_star) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn support_on_empty_relation_is_zero() {
        let r = Relation::new(fig1_schema());
        assert!(r.is_empty());
        let t = PartialTuple::all_missing(4);
        assert_eq!(r.support(&t), 0.0);
    }

    #[test]
    fn push_routes_by_completeness() {
        let mut r = Relation::new(fig1_schema());
        r.push(PartialTuple::from_options(&[
            Some(0),
            Some(0),
            Some(0),
            Some(0),
        ]))
        .unwrap();
        r.push(PartialTuple::from_options(&[Some(0), None, None, None]))
            .unwrap();
        assert_eq!(r.complete_part().len(), 1);
        assert_eq!(r.incomplete_part().len(), 1);
    }

    #[test]
    fn push_rejects_wrong_arity() {
        let mut r = Relation::new(fig1_schema());
        let bad = PartialTuple::all_missing(3);
        assert!(matches!(
            r.push(bad),
            Err(RelationError::ArityMismatch {
                expected: 4,
                got: 3
            })
        ));
    }

    #[test]
    fn from_parts_normalizes_misplaced_complete_tuples() {
        let schema = fig1_schema();
        let complete_as_partial = PartialTuple::from_options(&[Some(0), Some(0), Some(0), Some(0)]);
        let r = Relation::from_parts(schema, vec![], vec![complete_as_partial]).unwrap();
        assert_eq!(r.complete_part().len(), 1);
        assert_eq!(r.incomplete_part().len(), 0);
    }

    #[test]
    fn from_parts_rejects_bad_arity() {
        let schema = fig1_schema();
        let r = Relation::from_parts(schema, vec![CompleteTuple::from_values(vec![0, 0])], vec![]);
        assert!(matches!(r, Err(RelationError::ArityMismatch { .. })));
    }
}
