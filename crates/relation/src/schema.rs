//! Schemas over discrete finite domains.
//!
//! The paper limits attention to "discrete finite-valued attributes"
//! (continuous attributes are bucketed upstream, §II). A [`Schema`] interns
//! every attribute name and value label once; all downstream code works with
//! dense [`AttrId`] / [`ValueId`] indices, per the performance guidance of
//! keeping hot-path keys small and copyable.

use crate::error::RelationError;
use mrsl_util::FxHashMap;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Dense index of an attribute within its [`Schema`] (column position).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AttrId(pub u16);

impl AttrId {
    /// The index as a `usize` for slice access.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense index of a value within its attribute's domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ValueId(pub u16);

impl ValueId {
    /// The index as a `usize` for slice access.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One attribute: a name and an ordered domain of value labels.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    name: String,
    values: Vec<String>,
}

impl Attribute {
    /// Attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Domain cardinality.
    pub fn cardinality(&self) -> usize {
        self.values.len()
    }

    /// Label of a domain value.
    ///
    /// # Panics
    /// Panics if `v` is out of range for this domain.
    pub fn value_label(&self, v: ValueId) -> &str {
        &self.values[v.index()]
    }

    /// All value labels in domain order.
    pub fn labels(&self) -> &[String] {
        &self.values
    }
}

/// An immutable schema: an ordered list of attributes with interned domains.
///
/// Schemas are shared via `Arc` between relations, mined models, generated
/// datasets and derived probabilistic databases, so equality of schema
/// *pointers* is the common fast path; structural equality is also derived.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    attrs: Vec<Attribute>,
    #[serde(skip)]
    by_name: FxHashMap<String, AttrId>,
    #[serde(skip)]
    value_ids: Vec<FxHashMap<String, ValueId>>,
}

impl Schema {
    /// Starts building a schema.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder::default()
    }

    /// Number of attributes.
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    /// Iterates over `(AttrId, &Attribute)` pairs in column order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &Attribute)> {
        self.attrs
            .iter()
            .enumerate()
            .map(|(i, a)| (AttrId(i as u16), a))
    }

    /// All attribute ids in column order.
    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> + Clone {
        (0..self.attrs.len() as u16).map(AttrId)
    }

    /// The attribute at `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn attr(&self, id: AttrId) -> &Attribute {
        &self.attrs[id.index()]
    }

    /// Domain cardinality of the attribute at `id`.
    pub fn cardinality(&self, id: AttrId) -> usize {
        self.attr(id).cardinality()
    }

    /// Looks up an attribute by name.
    pub fn attr_id(&self, name: &str) -> Result<AttrId, RelationError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| RelationError::UnknownAttribute(name.to_string()))
    }

    /// Looks up a value label within an attribute's domain.
    pub fn value_id(&self, attr: AttrId, label: &str) -> Result<ValueId, RelationError> {
        self.value_ids[attr.index()]
            .get(label)
            .copied()
            .ok_or_else(|| RelationError::UnknownValue {
                attr: self.attr(attr).name().to_string(),
                value: label.to_string(),
            })
    }

    /// Product of all domain cardinalities ("dom. size" in Table I).
    pub fn domain_product(&self) -> u128 {
        self.attrs.iter().map(|a| a.cardinality() as u128).product()
    }

    /// Average domain cardinality ("avg card" in Table I).
    pub fn avg_cardinality(&self) -> f64 {
        if self.attrs.is_empty() {
            return 0.0;
        }
        self.attrs
            .iter()
            .map(|a| a.cardinality() as f64)
            .sum::<f64>()
            / self.attrs.len() as f64
    }

    /// Rebuilds the interning maps; used after deserialization.
    fn reindex(&mut self) {
        self.by_name = self
            .attrs
            .iter()
            .enumerate()
            .map(|(i, a)| (a.name.clone(), AttrId(i as u16)))
            .collect();
        self.value_ids = self
            .attrs
            .iter()
            .map(|a| {
                a.values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (v.clone(), ValueId(i as u16)))
                    .collect()
            })
            .collect();
    }

    /// Restores lookup tables after `serde` deserialization (which skips
    /// the derived maps). Idempotent.
    pub fn after_deserialize(mut self) -> Arc<Self> {
        self.reindex();
        Arc::new(self)
    }
}

/// Incremental [`Schema`] construction with validation.
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    attrs: Vec<Attribute>,
}

impl SchemaBuilder {
    /// Adds an attribute with the given domain labels (in domain order).
    pub fn attribute<S, I, V>(mut self, name: S, values: I) -> Self
    where
        S: Into<String>,
        I: IntoIterator<Item = V>,
        V: Into<String>,
    {
        self.attrs.push(Attribute {
            name: name.into(),
            values: values.into_iter().map(Into::into).collect(),
        });
        self
    }

    /// Validates and freezes the schema.
    pub fn build(self) -> Result<Arc<Schema>, RelationError> {
        if self.attrs.len() > crate::mask::AttrMask::MAX_ATTRS {
            return Err(RelationError::TooManyAttributes(self.attrs.len()));
        }
        let mut seen = FxHashMap::default();
        for (i, a) in self.attrs.iter().enumerate() {
            if a.values.is_empty() {
                return Err(RelationError::EmptyDomain(a.name.clone()));
            }
            if a.values.len() > u16::MAX as usize {
                return Err(RelationError::EmptyDomain(format!(
                    "{} (domain too large for ValueId)",
                    a.name
                )));
            }
            if seen.insert(a.name.clone(), i).is_some() {
                return Err(RelationError::DuplicateAttribute(a.name.clone()));
            }
            let mut vals = FxHashMap::default();
            for v in &a.values {
                if vals.insert(v.clone(), ()).is_some() {
                    return Err(RelationError::DuplicateValue {
                        attr: a.name.clone(),
                        value: v.clone(),
                    });
                }
            }
        }
        let mut schema = Schema {
            attrs: self.attrs,
            by_name: FxHashMap::default(),
            value_ids: Vec::new(),
        };
        schema.reindex();
        Ok(Arc::new(schema))
    }
}

/// Builds the running-example schema from Fig. 1 of the paper: a matchmaking
/// relation with `age`, `edu`, `inc` and `nw`. Used by tests, docs and the
/// quickstart example.
pub fn fig1_schema() -> Arc<Schema> {
    Schema::builder()
        .attribute("age", ["20", "30", "40"])
        .attribute("edu", ["HS", "BS", "MS"])
        .attribute("inc", ["50K", "100K"])
        .attribute("nw", ["100K", "500K"])
        .build()
        .expect("fig1 schema is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_looks_up() {
        let s = fig1_schema();
        assert_eq!(s.attr_count(), 4);
        let age = s.attr_id("age").unwrap();
        assert_eq!(age, AttrId(0));
        assert_eq!(s.cardinality(age), 3);
        let v = s.value_id(age, "30").unwrap();
        assert_eq!(v, ValueId(1));
        assert_eq!(s.attr(age).value_label(v), "30");
        assert_eq!(s.domain_product(), 3 * 3 * 2 * 2);
        assert!((s.avg_cardinality() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn unknown_lookups_error() {
        let s = fig1_schema();
        assert!(matches!(
            s.attr_id("salary"),
            Err(RelationError::UnknownAttribute(_))
        ));
        let age = s.attr_id("age").unwrap();
        assert!(matches!(
            s.value_id(age, "25"),
            Err(RelationError::UnknownValue { .. })
        ));
    }

    #[test]
    fn rejects_duplicate_attribute() {
        let r = Schema::builder()
            .attribute("a", ["1"])
            .attribute("a", ["2"])
            .build();
        assert!(matches!(r, Err(RelationError::DuplicateAttribute(_))));
    }

    #[test]
    fn rejects_empty_domain() {
        let r = Schema::builder()
            .attribute("a", Vec::<String>::new())
            .build();
        assert!(matches!(r, Err(RelationError::EmptyDomain(_))));
    }

    #[test]
    fn rejects_duplicate_value() {
        let r = Schema::builder().attribute("a", ["x", "x"]).build();
        assert!(matches!(r, Err(RelationError::DuplicateValue { .. })));
    }

    #[test]
    fn rejects_too_many_attributes() {
        let mut b = Schema::builder();
        for i in 0..65 {
            b = b.attribute(format!("a{i}"), ["0", "1"]);
        }
        assert!(matches!(
            b.build(),
            Err(RelationError::TooManyAttributes(65))
        ));
    }

    #[test]
    fn serde_roundtrip_restores_lookup() {
        let s = fig1_schema();
        let json = serde_json_roundtrip(&s);
        let restored = json.after_deserialize();
        assert_eq!(restored.attr_id("edu").unwrap(), AttrId(1));
        let edu = AttrId(1);
        assert_eq!(restored.value_id(edu, "MS").unwrap(), ValueId(2));
        assert_eq!(*restored, *s);
    }

    // Minimal stand-in for serde_json (not a dependency of this crate):
    // exercise Serialize/Deserialize through bincode-like manual plumbing is
    // overkill; round-trip through the `Clone` of the serializable parts.
    fn serde_json_roundtrip(s: &Schema) -> Schema {
        Schema {
            attrs: s.attrs.clone(),
            by_name: FxHashMap::default(),
            value_ids: Vec::new(),
        }
    }

    #[test]
    fn empty_schema_stats() {
        let s = Schema::builder().build().unwrap();
        assert_eq!(s.attr_count(), 0);
        assert_eq!(s.domain_product(), 1);
        assert_eq!(s.avg_cardinality(), 0.0);
    }
}
