//! Human-readable rendering of tuples and relations.

use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::{CompleteTuple, PartialTuple};
use mrsl_util::Table;

/// Renders a partial tuple as `⟨age=20, edu=HS, inc=?, nw=?⟩`.
pub fn render_partial(schema: &Schema, t: &PartialTuple) -> String {
    let mut parts = Vec::with_capacity(schema.attr_count());
    for (id, attr) in schema.iter() {
        match t.get(id) {
            Some(v) => parts.push(format!("{}={}", attr.name(), attr.value_label(v))),
            None => parts.push(format!("{}=?", attr.name())),
        }
    }
    format!("⟨{}⟩", parts.join(", "))
}

/// Renders a complete tuple as `⟨age=20, edu=HS, inc=50K, nw=100K⟩`.
pub fn render_complete(schema: &Schema, t: &CompleteTuple) -> String {
    render_partial(schema, &t.to_partial())
}

/// Renders a relation as an aligned ASCII table (complete part first).
pub fn render_relation(rel: &Relation) -> String {
    let schema = rel.schema();
    let mut table = Table::new(
        std::iter::once("id".to_string()).chain(schema.iter().map(|(_, a)| a.name().to_string())),
    );
    let mut id = 0usize;
    for t in rel.complete_part() {
        id += 1;
        table.push_row(
            std::iter::once(format!("c{id}")).chain(
                schema
                    .iter()
                    .map(|(aid, attr)| attr.value_label(t.value(aid)).to_string()),
            ),
        );
    }
    let mut iid = 0usize;
    for t in rel.incomplete_part() {
        iid += 1;
        table.push_row(std::iter::once(format!("i{iid}")).chain(schema.iter().map(
            |(aid, attr)| match t.get(aid) {
                Some(v) => attr.value_label(v).to_string(),
                None => "?".to_string(),
            },
        )));
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::fig1_relation;
    use crate::schema::fig1_schema;

    #[test]
    fn renders_partial_with_question_marks() {
        let schema = fig1_schema();
        let t = PartialTuple::from_options(&[Some(0), Some(0), None, None]);
        let s = render_partial(&schema, &t);
        assert_eq!(s, "⟨age=20, edu=HS, inc=?, nw=?⟩");
    }

    #[test]
    fn renders_complete_tuple() {
        let schema = fig1_schema();
        let t = CompleteTuple::from_values(vec![0, 1, 0, 0]);
        let s = render_complete(&schema, &t);
        assert!(s.contains("edu=BS") && !s.contains('?'));
    }

    #[test]
    fn renders_relation_with_all_rows() {
        let r = fig1_relation();
        let s = render_relation(&r);
        // Header + rule + 17 tuples.
        assert_eq!(s.lines().count(), 19);
        assert!(s.contains('?'));
        assert!(s.contains("age"));
    }
}
