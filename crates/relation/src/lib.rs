//! Relational substrate for the MRSL reproduction.
//!
//! The paper (§II) models the input as a single relation `R` over a set of
//! discrete, finite-valued attributes, split into a *complete* part `Rc`
//! (points) and an *incomplete* part `Ri` (tuples with `?` values). This
//! crate implements that model:
//!
//! * [`schema`] — attribute/domain definitions with value interning; dense
//!   [`AttrId`]/[`ValueId`] handles used everywhere in hot paths.
//! * [`mask`] — [`AttrMask`], a bitset over attributes identifying the
//!   *complete portion* of a tuple (Def. 2.1).
//! * [`tuple`](mod@tuple) — [`CompleteTuple`] (points, Def. 2.2) and
//!   [`PartialTuple`] (incomplete tuples) with matching and subsumption
//!   (Defs. 2.3, 2.4).
//! * [`relation`] — [`Relation`], the container, with support counting.
//! * [`loader`] — a small CSV-style parser used by examples and tests.
//! * [`display`] — human-readable rendering of tuples and relations.

pub mod display;
pub mod error;
pub mod join;
pub mod joint;
pub mod loader;
pub mod mask;
pub mod relation;
pub mod schema;
pub mod tuple;

pub use error::RelationError;
pub use joint::JointIndexer;
pub use mask::AttrMask;
pub use relation::Relation;
pub use schema::{AttrId, Attribute, Schema, SchemaBuilder, ValueId};
pub use tuple::{Assignment, CompleteTuple, PartialTuple};
