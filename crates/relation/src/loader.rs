//! A small CSV-style loader for examples and tests.
//!
//! Format: first line is a comma-separated header of attribute names, each
//! following line one tuple; `?` (or an empty cell) marks a missing value.
//! Domains are inferred from the observed values (sorted lexicographically
//! for determinism) unless a schema is supplied.
//!
//! This is intentionally not a general CSV parser — no quoting or escaping —
//! just enough to feed realistic example datasets into the pipeline.

use crate::relation::Relation;
use crate::schema::{AttrId, Schema, SchemaBuilder};
use crate::tuple::PartialTuple;
use crate::RelationError;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Token that marks a missing value.
pub const MISSING: &str = "?";

/// Parses a relation, inferring the schema from the data.
///
/// Columns where *no* value is ever observed are rejected (their domain
/// would be empty).
pub fn parse_relation(text: &str) -> Result<Relation, RelationError> {
    let mut lines = non_empty_lines(text);
    let header = lines
        .next()
        .ok_or_else(|| RelationError::Parse("input is empty".into()))?;
    let names: Vec<&str> = header.1.split(',').map(str::trim).collect();
    let ncols = names.len();

    // First pass: gather domains.
    let mut domains: Vec<BTreeSet<String>> = vec![BTreeSet::new(); ncols];
    let mut rows: Vec<(usize, Vec<String>)> = Vec::new();
    for (lineno, line) in lines {
        let cells: Vec<String> = line.split(',').map(|c| c.trim().to_string()).collect();
        if cells.len() != ncols {
            return Err(RelationError::Parse(format!(
                "line {lineno}: expected {ncols} fields, found {}",
                cells.len()
            )));
        }
        for (i, cell) in cells.iter().enumerate() {
            if !is_missing(cell) {
                domains[i].insert(cell.clone());
            }
        }
        rows.push((lineno, cells));
    }

    let mut builder = SchemaBuilder::default();
    for (name, domain) in names.iter().zip(&domains) {
        if domain.is_empty() {
            return Err(RelationError::EmptyDomain((*name).to_string()));
        }
        builder = builder.attribute(*name, domain.iter().cloned());
    }
    let schema = builder.build()?;
    load_rows(schema, rows)
}

/// Parses a relation against a known schema (values must be in-domain).
pub fn parse_relation_with_schema(
    text: &str,
    schema: Arc<Schema>,
) -> Result<Relation, RelationError> {
    let mut lines = non_empty_lines(text);
    let header = lines
        .next()
        .ok_or_else(|| RelationError::Parse("input is empty".into()))?;
    let names: Vec<&str> = header.1.split(',').map(str::trim).collect();
    if names.len() != schema.attr_count() {
        return Err(RelationError::ArityMismatch {
            expected: schema.attr_count(),
            got: names.len(),
        });
    }
    for (i, name) in names.iter().enumerate() {
        if schema.attr(AttrId(i as u16)).name() != *name {
            return Err(RelationError::Parse(format!(
                "header column {i} is `{name}`, schema expects `{}`",
                schema.attr(AttrId(i as u16)).name()
            )));
        }
    }
    let rows: Vec<(usize, Vec<String>)> = lines
        .map(|(n, l)| (n, l.split(',').map(|c| c.trim().to_string()).collect()))
        .collect();
    for (lineno, cells) in &rows {
        if cells.len() != schema.attr_count() {
            return Err(RelationError::Parse(format!(
                "line {lineno}: expected {} fields, found {}",
                schema.attr_count(),
                cells.len()
            )));
        }
    }
    load_rows(schema, rows)
}

fn load_rows(
    schema: Arc<Schema>,
    rows: Vec<(usize, Vec<String>)>,
) -> Result<Relation, RelationError> {
    let mut rel = Relation::new(schema.clone());
    for (_lineno, cells) in rows {
        let mut slots = Vec::with_capacity(cells.len());
        for (i, cell) in cells.iter().enumerate() {
            if is_missing(cell) {
                slots.push(None);
            } else {
                let v = schema.value_id(AttrId(i as u16), cell)?;
                slots.push(Some(v.0));
            }
        }
        rel.push(PartialTuple::from_options(&slots))?;
    }
    Ok(rel)
}

fn is_missing(cell: &str) -> bool {
    cell.is_empty() || cell == MISSING
}

fn non_empty_lines(text: &str) -> impl Iterator<Item = (usize, &str)> {
    text.lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::fig1_schema;

    const SAMPLE: &str = "\
age,edu,inc
20,HS,50K
20,BS,?
30,?,100K
# comment line

40,HS,50K
";

    #[test]
    fn parses_and_infers_schema() {
        let r = parse_relation(SAMPLE).unwrap();
        assert_eq!(r.schema().attr_count(), 3);
        assert_eq!(r.len(), 4);
        assert_eq!(r.complete_part().len(), 2);
        assert_eq!(r.incomplete_part().len(), 2);
        // Domains are sorted lexicographically.
        let age = r.schema().attr_id("age").unwrap();
        assert_eq!(r.schema().attr(age).labels(), &["20", "30", "40"]);
    }

    #[test]
    fn empty_cells_count_as_missing() {
        let r = parse_relation("a,b\n1,\n2,x\n").unwrap();
        assert_eq!(r.incomplete_part().len(), 1);
        assert_eq!(r.complete_part().len(), 1);
    }

    #[test]
    fn rejects_ragged_rows() {
        let e = parse_relation("a,b\n1\n").unwrap_err();
        assert!(matches!(e, RelationError::Parse(_)));
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn rejects_all_missing_column() {
        let e = parse_relation("a,b\n1,?\n2,?\n").unwrap_err();
        assert!(matches!(e, RelationError::EmptyDomain(_)));
    }

    #[test]
    fn rejects_empty_input() {
        assert!(parse_relation("").is_err());
        assert!(parse_relation("# only a comment\n").is_err());
    }

    #[test]
    fn with_schema_validates_values() {
        let schema = fig1_schema();
        let ok = parse_relation_with_schema("age,edu,inc,nw\n20,HS,50K,100K\n", schema.clone());
        assert!(ok.is_ok());
        let bad = parse_relation_with_schema("age,edu,inc,nw\n25,HS,50K,100K\n", schema.clone());
        assert!(matches!(bad, Err(RelationError::UnknownValue { .. })));
        let wrong_header = parse_relation_with_schema("age,edu,nw,inc\n", schema);
        assert!(wrong_header.is_err());
    }

    #[test]
    fn with_schema_rejects_wrong_arity_header() {
        let schema = fig1_schema();
        let e = parse_relation_with_schema("age,edu\n", schema).unwrap_err();
        assert!(matches!(e, RelationError::ArityMismatch { .. }));
    }
}
