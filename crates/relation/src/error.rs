//! Error type for schema construction and data loading.

use std::fmt;

/// Errors raised while building schemas, constructing tuples, or parsing data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationError {
    /// An attribute name was declared twice.
    DuplicateAttribute(String),
    /// More attributes than [`crate::mask::AttrMask`] can address (64).
    TooManyAttributes(usize),
    /// An attribute was declared with an empty domain.
    EmptyDomain(String),
    /// A domain value label was declared twice for one attribute.
    DuplicateValue { attr: String, value: String },
    /// Lookup of an unknown attribute name.
    UnknownAttribute(String),
    /// Lookup of an unknown value label for a known attribute.
    UnknownValue { attr: String, value: String },
    /// A tuple had the wrong number of fields for its schema.
    ArityMismatch { expected: usize, got: usize },
    /// Parse-level problem with an input file (message includes line number).
    Parse(String),
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DuplicateAttribute(a) => write!(f, "duplicate attribute `{a}`"),
            Self::TooManyAttributes(n) => {
                write!(f, "{n} attributes exceed the supported maximum of 64")
            }
            Self::EmptyDomain(a) => write!(f, "attribute `{a}` has an empty domain"),
            Self::DuplicateValue { attr, value } => {
                write!(f, "duplicate value `{value}` in domain of `{attr}`")
            }
            Self::UnknownAttribute(a) => write!(f, "unknown attribute `{a}`"),
            Self::UnknownValue { attr, value } => {
                write!(f, "unknown value `{value}` for attribute `{attr}`")
            }
            Self::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "tuple arity {got} does not match schema arity {expected}"
                )
            }
            Self::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for RelationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RelationError::UnknownValue {
            attr: "age".into(),
            value: "17".into(),
        };
        let s = e.to_string();
        assert!(s.contains("age") && s.contains("17"));

        assert!(RelationError::TooManyAttributes(65)
            .to_string()
            .contains("64"));
        assert!(RelationError::ArityMismatch {
            expected: 4,
            got: 3
        }
        .to_string()
        .contains('4'));
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: std::error::Error>(_: E) {}
        takes_err(RelationError::DuplicateAttribute("x".into()));
    }
}
