//! Row-major indexing of joint value combinations over an attribute set.
//!
//! The paper's output `Δt` is a distribution over "all possible combinations
//! of values of the attributes missing in `t`". Both the exact Bayesian-
//! network conditionals (ground truth) and the MRSL estimates must agree on
//! how a combination maps to a vector index; this type pins the convention:
//! attributes in **ascending id order**, row-major, the **last attribute
//! least significant**.

use crate::mask::AttrMask;
use crate::schema::{AttrId, Schema, ValueId};
use crate::tuple::{CompleteTuple, PartialTuple};
use serde::{Deserialize, Serialize};

/// Maps value combinations over a fixed attribute set to dense indices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JointIndexer {
    attrs: Vec<AttrId>,
    cards: Vec<usize>,
    strides: Vec<usize>,
    size: usize,
}

impl JointIndexer {
    /// Builds an indexer over the attributes of `mask` (ascending order).
    ///
    /// # Panics
    /// Panics if the joint domain size overflows `usize` (cannot happen for
    /// the paper's benchmark, which caps at ~5·10⁵ combinations).
    pub fn new(schema: &Schema, mask: AttrMask) -> Self {
        let attrs: Vec<AttrId> = mask.iter().collect();
        let cards: Vec<usize> = attrs.iter().map(|&a| schema.cardinality(a)).collect();
        let mut strides = vec![1usize; attrs.len()];
        let mut size = 1usize;
        for i in (0..attrs.len()).rev() {
            strides[i] = size;
            size = size
                .checked_mul(cards[i])
                .expect("joint domain size overflow");
        }
        Self {
            attrs,
            cards,
            strides,
            size,
        }
    }

    /// The attributes, ascending.
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// Cardinalities aligned with [`JointIndexer::attrs`].
    pub fn cards(&self) -> &[usize] {
        &self.cards
    }

    /// Total number of combinations (product of cardinalities; 1 if empty).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Index of the combination where attribute `attrs()[i]` takes
    /// `values[i]`.
    ///
    /// # Panics
    /// Panics (debug) on arity mismatch or out-of-range values.
    #[inline]
    pub fn index_of(&self, values: &[ValueId]) -> usize {
        debug_assert_eq!(values.len(), self.attrs.len());
        let mut idx = 0;
        for (i, v) in values.iter().enumerate() {
            debug_assert!(v.index() < self.cards[i]);
            idx += v.index() * self.strides[i];
        }
        idx
    }

    /// Index of the combination a complete tuple takes on these attributes.
    #[inline]
    pub fn index_of_point(&self, t: &CompleteTuple) -> usize {
        let mut idx = 0;
        for (i, &a) in self.attrs.iter().enumerate() {
            idx += t.value(a).index() * self.strides[i];
        }
        idx
    }

    /// Index of the combination a partial tuple takes; `None` when the
    /// tuple does not assign all indexed attributes.
    pub fn index_of_partial(&self, t: &PartialTuple) -> Option<usize> {
        let mut idx = 0;
        for (i, &a) in self.attrs.iter().enumerate() {
            idx += t.get(a)?.index() * self.strides[i];
        }
        Some(idx)
    }

    /// Decodes an index back into `(attr, value)` pairs (ascending attrs).
    pub fn decode(&self, mut idx: usize) -> Vec<(AttrId, ValueId)> {
        assert!(idx < self.size, "index {idx} out of range {}", self.size);
        let mut out = Vec::with_capacity(self.attrs.len());
        for (i, &a) in self.attrs.iter().enumerate() {
            let v = idx / self.strides[i];
            idx %= self.strides[i];
            out.push((a, ValueId(v as u16)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::fig1_schema;

    #[test]
    fn indexes_full_fig1_domain() {
        let s = fig1_schema();
        let ix = JointIndexer::new(&s, AttrMask::full(4));
        assert_eq!(ix.size(), 36); // 3*3*2*2
        assert_eq!(ix.attrs().len(), 4);
        // Last attribute is least significant.
        assert_eq!(ix.index_of([ValueId(0); 4].as_ref()), 0);
        assert_eq!(
            ix.index_of(&[ValueId(0), ValueId(0), ValueId(0), ValueId(1)]),
            1
        );
        assert_eq!(
            ix.index_of(&[ValueId(1), ValueId(0), ValueId(0), ValueId(0)]),
            12
        );
    }

    #[test]
    fn roundtrips_all_indices() {
        let s = fig1_schema();
        let mask = AttrMask::from_attrs([AttrId(0), AttrId(2)]); // 3 * 2 = 6
        let ix = JointIndexer::new(&s, mask);
        assert_eq!(ix.size(), 6);
        for idx in 0..ix.size() {
            let combo = ix.decode(idx);
            let values: Vec<ValueId> = combo.iter().map(|&(_, v)| v).collect();
            assert_eq!(ix.index_of(&values), idx);
        }
    }

    #[test]
    fn point_and_partial_agree() {
        let s = fig1_schema();
        let mask = AttrMask::from_attrs([AttrId(1), AttrId(3)]);
        let ix = JointIndexer::new(&s, mask);
        let point = CompleteTuple::from_values(vec![2, 1, 0, 1]);
        let partial = point.to_partial();
        assert_eq!(
            ix.index_of_point(&point),
            ix.index_of_partial(&partial).unwrap()
        );
        // A tuple missing an indexed attribute yields None.
        let missing = PartialTuple::from_options(&[Some(2), None, Some(0), Some(1)]);
        assert_eq!(ix.index_of_partial(&missing), None);
    }

    #[test]
    fn empty_mask_has_single_combination() {
        let s = fig1_schema();
        let ix = JointIndexer::new(&s, AttrMask::EMPTY);
        assert_eq!(ix.size(), 1);
        assert_eq!(ix.index_of(&[]), 0);
        assert!(ix.decode(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn decode_rejects_out_of_range() {
        let s = fig1_schema();
        let ix = JointIndexer::new(&s, AttrMask::single(AttrId(2)));
        ix.decode(2);
    }
}
