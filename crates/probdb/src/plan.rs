//! Logical → physical query planning: one entry point for exact and
//! Monte-Carlo evaluation.
//!
//! Gatterbauer & Suciu's lifted-inference line shows the useful split for
//! probabilistic query answering: *safe* (liftable) plans admit fast
//! extensional evaluation, everything else needs sampling. For a single
//! BID table every selection-style query here is structurally liftable —
//! block independence makes the per-block marginals exact — so the planner
//! routes on liftability **and** cost:
//!
//! * selection marginals, expected count, value marginal and top-k are
//!   liftable with linear cost → always exact (columnar);
//! * the count distribution is liftable but its Poisson-binomial DP is
//!   O(blocks²) → exact only under
//!   [`QueryEngineConfig::max_exact_dp_blocks`], Monte Carlo beyond;
//! * [`QueryEngineConfig::force_monte_carlo`] routes every estimable
//!   query through sampling (cross-checking, demos).
//!
//! Every evaluation returns an [`EvalReport`] that makes the choice and
//! the work visible: path taken, blocks touched, blocks pruned by the
//! columnar pre-filter, rows scanned, samples drawn.

use crate::database::ProbDb;
use crate::montecarlo::{
    mc_count_distribution_compiled, mc_expected_count_compiled, CompiledSelection,
};
use crate::query::{self, Predicate, RankedTuple};
use crate::ProbDbError;
use mrsl_relation::AttrId;

/// A logical query over one probabilistic table.
#[derive(Debug, Clone, PartialEq)]
pub enum QuerySpec {
    /// Per-block probability that the true tuple satisfies the predicate.
    SelectionMarginals(Predicate),
    /// `E[COUNT(*) WHERE pred]`.
    ExpectedCount(Predicate),
    /// Exact or sampled distribution of `COUNT(*) WHERE pred`.
    CountDistribution(Predicate),
    /// Marginal distribution of one attribute over the expected table.
    ValueMarginal(AttrId),
    /// The `k` most probable tuples satisfying the predicate.
    TopK(Predicate, usize),
}

/// Physical evaluation path chosen by the planner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalPath {
    /// Exact extensional evaluation over the columnar store.
    ExactColumnar,
    /// Monte-Carlo world sampling.
    MonteCarlo,
}

/// Why the planner chose the path it chose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanClass {
    /// The query is safe over BID blocks and cheap: exact evaluation.
    ExactLiftable,
    /// Liftable, but the exact DP cost exceeds the configured budget.
    DpBudgetExceeded,
    /// Monte Carlo was forced by configuration.
    ForcedMonteCarlo,
}

/// Per-query evaluation report: the planner's choice made visible.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// Physical path taken.
    pub path: EvalPath,
    /// Planner classification behind the choice.
    pub plan: PlanClass,
    /// Total blocks in the database.
    pub blocks_total: usize,
    /// Blocks whose selection probability the columnar pre-filter proved
    /// to be 0. On the exact path these are skipped by all downstream
    /// arithmetic; on the Monte-Carlo path the statistic is informational
    /// only — the world sampler still draws one alternative per block.
    pub blocks_pruned: usize,
    /// Blocks contributing non-zero probability mass.
    pub blocks_touched: usize,
    /// Certain rows scanned by the columnar filter.
    pub certain_rows: usize,
    /// Alternative rows scanned by the columnar filter.
    pub alt_rows: usize,
    /// Worlds sampled (0 on the exact path).
    pub mc_samples: usize,
}

/// Answer of a planned query.
#[derive(Debug, Clone)]
pub enum QueryAnswer {
    /// Per-block probabilities, in block order.
    Marginals(Vec<f64>),
    /// A scalar estimate; `std_error` is `Some` on the Monte-Carlo path.
    Count {
        /// Expected count (exact or estimated).
        mean: f64,
        /// Standard error of the estimate (Monte Carlo only).
        std_error: Option<f64>,
    },
    /// `d[k] = P(count = k)`.
    Distribution(Vec<f64>),
    /// Ranked tuples, most probable first.
    Ranked(Vec<RankedTuple>),
}

/// Tunables of the [`QueryEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryEngineConfig {
    /// Worlds sampled on the Monte-Carlo path.
    pub mc_samples: usize,
    /// Seed for the Monte-Carlo path.
    pub mc_seed: u64,
    /// Largest block count for which the O(blocks²) exact count
    /// distribution stays on the exact path.
    pub max_exact_dp_blocks: usize,
    /// Route every estimable query through Monte Carlo regardless of
    /// liftability (ranking and value marginals have no sampling
    /// estimator and stay exact).
    pub force_monte_carlo: bool,
}

impl Default for QueryEngineConfig {
    fn default() -> Self {
        Self {
            mc_samples: 10_000,
            mc_seed: 0x5eed,
            max_exact_dp_blocks: 4_096,
            force_monte_carlo: false,
        }
    }
}

/// The query subsystem's single entry point: plans a [`QuerySpec`] against
/// one database and evaluates it on the chosen path.
#[derive(Debug, Clone)]
pub struct QueryEngine<'a> {
    db: &'a ProbDb,
    config: QueryEngineConfig,
}

impl<'a> QueryEngine<'a> {
    /// An engine with default configuration.
    pub fn new(db: &'a ProbDb) -> Self {
        Self::with_config(db, QueryEngineConfig::default())
    }

    /// An engine with explicit configuration.
    pub fn with_config(db: &'a ProbDb, config: QueryEngineConfig) -> Self {
        Self { db, config }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &QueryEngineConfig {
        &self.config
    }

    /// Classifies a query: which physical path, and why.
    pub fn plan(&self, spec: &QuerySpec) -> (EvalPath, PlanClass) {
        match spec {
            QuerySpec::SelectionMarginals(_)
            | QuerySpec::ExpectedCount(_)
            | QuerySpec::CountDistribution(_)
                if self.config.force_monte_carlo =>
            {
                (EvalPath::MonteCarlo, PlanClass::ForcedMonteCarlo)
            }
            QuerySpec::CountDistribution(_)
                if self.db.blocks().len() > self.config.max_exact_dp_blocks =>
            {
                (EvalPath::MonteCarlo, PlanClass::DpBudgetExceeded)
            }
            _ => (EvalPath::ExactColumnar, PlanClass::ExactLiftable),
        }
    }

    /// Plans and evaluates `spec`.
    ///
    /// Predicates are compiled into bitmaps exactly once per evaluation;
    /// the evaluator and the [`EvalReport`]'s pruning statistics share the
    /// same scan.
    pub fn evaluate(&self, spec: &QuerySpec) -> Result<(QueryAnswer, EvalReport), ProbDbError> {
        let (path, plan) = self.plan(spec);
        let cols = self.db.columns();
        let compiled = spec
            .predicate()
            .map(|pred| CompiledSelection::compile(self.db, pred));
        let answer = match (spec, path) {
            (QuerySpec::SelectionMarginals(_), EvalPath::ExactColumnar) => {
                let sel = compiled.as_ref().expect("predicate query");
                QueryAnswer::Marginals(cols.block_probs(&sel.alt_matches))
            }
            (QuerySpec::SelectionMarginals(_), EvalPath::MonteCarlo) => {
                let sel = compiled.as_ref().expect("predicate query");
                QueryAnswer::Marginals(
                    self.mc_selection_marginals(&sel.alt_matches, self.nonzero_samples()?),
                )
            }
            (QuerySpec::ExpectedCount(_), EvalPath::ExactColumnar) => {
                let sel = compiled.as_ref().expect("predicate query");
                QueryAnswer::Count {
                    mean: sel.certain_count as f64
                        + cols.block_probs(&sel.alt_matches).iter().sum::<f64>(),
                    std_error: None,
                }
            }
            (QuerySpec::ExpectedCount(_), EvalPath::MonteCarlo) => {
                let sel = compiled.as_ref().expect("predicate query");
                let (mean, se) = mc_expected_count_compiled(
                    self.db,
                    sel,
                    self.nonzero_samples()?,
                    self.config.mc_seed,
                );
                QueryAnswer::Count {
                    mean,
                    std_error: Some(se),
                }
            }
            (QuerySpec::CountDistribution(_), EvalPath::ExactColumnar) => {
                let sel = compiled.as_ref().expect("predicate query");
                QueryAnswer::Distribution(query::poisson_binomial(
                    sel.certain_count,
                    &cols.block_probs(&sel.alt_matches),
                ))
            }
            (QuerySpec::CountDistribution(_), EvalPath::MonteCarlo) => {
                let sel = compiled.as_ref().expect("predicate query");
                QueryAnswer::Distribution(mc_count_distribution_compiled(
                    self.db,
                    sel,
                    self.nonzero_samples()?,
                    self.config.mc_seed,
                ))
            }
            (QuerySpec::ValueMarginal(attr), _) => {
                QueryAnswer::Distribution(query::value_marginal(self.db, *attr))
            }
            (QuerySpec::TopK(_, k), _) => {
                let sel = compiled.as_ref().expect("predicate query");
                QueryAnswer::Ranked(query::top_k_from_bitmaps(
                    self.db,
                    *k,
                    &sel.certain_matches,
                    &sel.alt_matches,
                ))
            }
        };
        let report = self.report(path, plan, compiled.as_ref());
        Ok((answer, report))
    }

    /// Convenience: expected count with its report.
    pub fn expected_count(&self, pred: &Predicate) -> Result<(f64, EvalReport), ProbDbError> {
        match self.evaluate(&QuerySpec::ExpectedCount(pred.clone()))? {
            (QueryAnswer::Count { mean, .. }, report) => Ok((mean, report)),
            _ => unreachable!("expected-count query answers with a count"),
        }
    }

    /// Convenience: count distribution with its report.
    pub fn count_distribution(
        &self,
        pred: &Predicate,
    ) -> Result<(Vec<f64>, EvalReport), ProbDbError> {
        match self.evaluate(&QuerySpec::CountDistribution(pred.clone()))? {
            (QueryAnswer::Distribution(d), report) => Ok((d, report)),
            _ => unreachable!("count-distribution query answers with a distribution"),
        }
    }

    /// Convenience: top-k with its report.
    pub fn top_k(
        &self,
        pred: &Predicate,
        k: usize,
    ) -> Result<(Vec<RankedTuple>, EvalReport), ProbDbError> {
        match self.evaluate(&QuerySpec::TopK(pred.clone(), k))? {
            (QueryAnswer::Ranked(r), report) => Ok((r, report)),
            _ => unreachable!("top-k query answers with a ranking"),
        }
    }

    fn nonzero_samples(&self) -> Result<usize, ProbDbError> {
        if self.config.mc_samples == 0 {
            Err(ProbDbError::NoSamples)
        } else {
            Ok(self.config.mc_samples)
        }
    }

    /// Per-block hit frequency over `n` sampled worlds (`n > 0`, enforced
    /// by the caller through [`QueryEngine::nonzero_samples`]).
    fn mc_selection_marginals(&self, matches: &crate::column::Bitmap, n: usize) -> Vec<f64> {
        let cols = self.db.columns();
        let mut rng = mrsl_util::seeded_rng(self.config.mc_seed);
        let mut hits = vec![0usize; cols.block_count()];
        for _ in 0..n {
            for (b, hit) in hits.iter_mut().enumerate() {
                let range = cols.block_range(b);
                let chosen = crate::world::choose_weighted(
                    cols.alt_probs()[range.clone()].iter().copied(),
                    &mut rng,
                );
                if matches.get(range.start + chosen) {
                    *hit += 1;
                }
            }
        }
        hits.iter().map(|&h| h as f64 / n as f64).collect()
    }

    fn report(
        &self,
        path: EvalPath,
        plan: PlanClass,
        compiled: Option<&CompiledSelection>,
    ) -> EvalReport {
        let cols = self.db.columns();
        let blocks_total = cols.block_count();
        // Pruning statistics reuse the evaluator's alternative bitmap; a
        // value marginal reads every block by construction.
        let blocks_pruned = match compiled {
            Some(sel) => count_empty_blocks(cols.block_count(), |b| {
                sel.alt_matches.any_in(cols.block_range(b))
            }),
            None => 0,
        };
        EvalReport {
            path,
            plan,
            blocks_total,
            blocks_pruned,
            blocks_touched: blocks_total - blocks_pruned,
            certain_rows: cols.certain().rows(),
            alt_rows: cols.alternatives().rows(),
            mc_samples: match path {
                EvalPath::ExactColumnar => 0,
                EvalPath::MonteCarlo => self.config.mc_samples,
            },
        }
    }
}

impl QuerySpec {
    /// The selection predicate of the query, if it has one.
    pub fn predicate(&self) -> Option<&Predicate> {
        match self {
            Self::SelectionMarginals(p)
            | Self::ExpectedCount(p)
            | Self::CountDistribution(p)
            | Self::TopK(p, _) => Some(p),
            Self::ValueMarginal(_) => None,
        }
    }
}

fn count_empty_blocks(blocks: usize, mut any_match: impl FnMut(usize) -> bool) -> usize {
    (0..blocks).filter(|&b| !any_match(b)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Alternative, Block};
    use mrsl_relation::schema::fig1_schema;
    use mrsl_relation::{CompleteTuple, ValueId};

    fn alt(values: Vec<u16>, prob: f64) -> Alternative {
        Alternative {
            tuple: CompleteTuple::from_values(values),
            prob,
        }
    }

    fn db() -> ProbDb {
        let mut db = ProbDb::new(fig1_schema());
        db.push_certain(CompleteTuple::from_values(vec![0, 0, 1, 0]))
            .unwrap();
        db.push_block(
            Block::new(
                0,
                vec![alt(vec![0, 0, 0, 0], 0.3), alt(vec![0, 0, 1, 0], 0.7)],
            )
            .unwrap(),
        )
        .unwrap();
        db.push_block(
            Block::new(
                1,
                vec![alt(vec![1, 0, 1, 0], 0.6), alt(vec![1, 0, 0, 1], 0.4)],
            )
            .unwrap(),
        )
        .unwrap();
        db.push_block(
            Block::new(
                2,
                vec![alt(vec![2, 1, 0, 0], 0.5), alt(vec![2, 1, 0, 1], 0.5)],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn liftable_queries_take_the_exact_path() {
        let db = db();
        let engine = QueryEngine::new(&db);
        let pred = Predicate::eq(AttrId(2), ValueId(1));
        let (count, report) = engine.expected_count(&pred).unwrap();
        assert_eq!(report.path, EvalPath::ExactColumnar);
        assert_eq!(report.plan, PlanClass::ExactLiftable);
        assert_eq!(report.mc_samples, 0);
        assert!((count - 2.3).abs() < 1e-12);
        // Block 2 has no inc=100K alternative: pruned.
        assert_eq!(report.blocks_total, 3);
        assert_eq!(report.blocks_pruned, 1);
        assert_eq!(report.blocks_touched, 2);
        assert_eq!(report.certain_rows, 1);
        assert_eq!(report.alt_rows, 6);
    }

    #[test]
    fn dp_budget_routes_count_distribution_to_monte_carlo() {
        let db = db();
        let engine = QueryEngine::with_config(
            &db,
            QueryEngineConfig {
                max_exact_dp_blocks: 2,
                mc_samples: 30_000,
                ..QueryEngineConfig::default()
            },
        );
        let pred = Predicate::eq(AttrId(2), ValueId(1));
        let (mc_dist, report) = engine.count_distribution(&pred).unwrap();
        assert_eq!(report.path, EvalPath::MonteCarlo);
        assert_eq!(report.plan, PlanClass::DpBudgetExceeded);
        assert_eq!(report.mc_samples, 30_000);
        let exact = query::count_distribution(&db, &pred);
        for (k, &e) in exact.iter().enumerate() {
            assert!((mc_dist[k] - e).abs() < 0.02, "k={k}");
        }
        // Expected count stays exact: its cost is linear.
        let (_, report) = engine.expected_count(&pred).unwrap();
        assert_eq!(report.path, EvalPath::ExactColumnar);
    }

    #[test]
    fn forced_monte_carlo_reports_standard_error() {
        let db = db();
        let engine = QueryEngine::with_config(
            &db,
            QueryEngineConfig {
                force_monte_carlo: true,
                mc_samples: 20_000,
                ..QueryEngineConfig::default()
            },
        );
        let pred = Predicate::eq(AttrId(2), ValueId(1)).negate();
        let (answer, report) = engine
            .evaluate(&QuerySpec::ExpectedCount(pred.clone()))
            .unwrap();
        assert_eq!(report.plan, PlanClass::ForcedMonteCarlo);
        let QueryAnswer::Count { mean, std_error } = answer else {
            panic!("count answer expected");
        };
        let se = std_error.expect("MC path reports a standard error");
        let exact = query::expected_count(&db, &pred);
        assert!((mean - exact).abs() < 4.0 * se + 0.02);
        // Ranking has no sampling estimator: stays exact even when forced.
        let (_, report) = engine.top_k(&pred, 3).unwrap();
        assert_eq!(report.path, EvalPath::ExactColumnar);
    }

    #[test]
    fn zero_sample_budget_is_an_error() {
        let db = db();
        let engine = QueryEngine::with_config(
            &db,
            QueryEngineConfig {
                force_monte_carlo: true,
                mc_samples: 0,
                ..QueryEngineConfig::default()
            },
        );
        let e = engine.expected_count(&Predicate::any());
        assert!(matches!(e, Err(ProbDbError::NoSamples)));
        // Every sampled query shape refuses a zero budget the same way.
        let e = engine.evaluate(&QuerySpec::SelectionMarginals(Predicate::any()));
        assert!(matches!(e, Err(ProbDbError::NoSamples)));
        let e = engine.count_distribution(&Predicate::any());
        assert!(matches!(e, Err(ProbDbError::NoSamples)));
    }

    #[test]
    fn mc_selection_marginals_agree_with_exact() {
        let db = db();
        let engine = QueryEngine::with_config(
            &db,
            QueryEngineConfig {
                force_monte_carlo: true,
                mc_samples: 30_000,
                ..QueryEngineConfig::default()
            },
        );
        let pred = Predicate::is_in(AttrId(3), [ValueId(1)]);
        let (answer, report) = engine
            .evaluate(&QuerySpec::SelectionMarginals(pred.clone()))
            .unwrap();
        assert_eq!(report.path, EvalPath::MonteCarlo);
        let QueryAnswer::Marginals(mc) = answer else {
            panic!("marginals expected");
        };
        let exact = query::block_selection_probs(&db, &pred);
        for (b, (&m, &e)) in mc.iter().zip(&exact).enumerate() {
            assert!((m - e).abs() < 0.02, "block {b}: {m} vs {e}");
        }
    }

    #[test]
    fn value_marginal_reports_no_pruning() {
        let db = db();
        let engine = QueryEngine::new(&db);
        let (answer, report) = engine
            .evaluate(&QuerySpec::ValueMarginal(AttrId(0)))
            .unwrap();
        assert_eq!(report.blocks_pruned, 0);
        assert_eq!(report.blocks_touched, 3);
        let QueryAnswer::Distribution(m) = answer else {
            panic!("distribution expected");
        };
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
