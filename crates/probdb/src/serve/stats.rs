//! Serving-layer counters: lock-free cells the workers bump per request,
//! snapshotted into [`ServerStats`] for reporters and benches.

use crate::plan::PlanCacheStats;
use std::sync::atomic::{AtomicU64, Ordering};

/// Internal atomic counter cells. Every update is a relaxed atomic —
/// the stats are monitoring data, not synchronization — so recording
/// never serializes the worker pool.
#[derive(Debug, Default)]
pub(super) struct ServerCounters {
    queries: AtomicU64,
    exact: AtomicU64,
    monte_carlo: AtomicU64,
    hybrid: AtomicU64,
    cache_hits: AtomicU64,
    errors: AtomicU64,
    publishes: AtomicU64,
    queue_depth: AtomicU64,
    max_queue_depth: AtomicU64,
    lagged_reads: AtomicU64,
    max_lag: AtomicU64,
    rejected: AtomicU64,
    expired: AtomicU64,
    coalesced: AtomicU64,
    abandoned: AtomicU64,
}

fn raise_max(cell: &AtomicU64, candidate: u64) {
    cell.fetch_max(candidate, Ordering::Relaxed);
}

impl ServerCounters {
    /// A request entered the queue; returns the new depth (for the
    /// admission-control bound).
    pub(super) fn enqueued(&self) -> u64 {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        raise_max(&self.max_queue_depth, depth);
        depth
    }

    /// A request left the queue: picked up by a worker, bounced at
    /// admission after counting itself in, or dropped in the channel at
    /// teardown. Called exactly once per `enqueued` by the RAII depth
    /// guard, so the gauge can neither drift nor underflow.
    pub(super) fn dequeued(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// A submit was refused at admission (queue at its bound).
    pub(super) fn rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker dropped a job unevaluated: its deadline had already
    /// passed in the queue.
    pub(super) fn expired(&self) {
        self.expired.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker skipped a job whose ticket was dropped before pickup.
    pub(super) fn abandoned(&self) {
        self.abandoned.fetch_add(1, Ordering::Relaxed);
    }

    /// One answer fanned out from another request's evaluation.
    pub(super) fn coalesced(&self) {
        self.coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// One served answer: which physical path it took, whether the plan
    /// came out of the shared cache warm, and how many generations the
    /// served snapshot trailed the published head.
    pub(super) fn served(&self, path: crate::plan::EvalPath, cache_hit: bool, lag: u64) {
        use crate::plan::EvalPath;
        self.queries.fetch_add(1, Ordering::Relaxed);
        let cell = match path {
            EvalPath::ExactColumnar => &self.exact,
            EvalPath::MonteCarlo => &self.monte_carlo,
            EvalPath::Hybrid => &self.hybrid,
        };
        cell.fetch_add(1, Ordering::Relaxed);
        if cache_hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        if lag > 0 {
            self.lagged_reads.fetch_add(1, Ordering::Relaxed);
            raise_max(&self.max_lag, lag);
        }
    }

    /// One request that ended in an error (planning error, or a worker
    /// panic contained by the job harness).
    pub(super) fn failed(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// The writer published a generation.
    pub(super) fn published(&self) {
        self.publishes.fetch_add(1, Ordering::Relaxed);
    }

    pub(super) fn snapshot(
        &self,
        generation: u64,
        plan_cache: PlanCacheStats,
        catalog_provenance: u64,
    ) -> ServerStats {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ServerStats {
            queries: load(&self.queries),
            exact: load(&self.exact),
            monte_carlo: load(&self.monte_carlo),
            hybrid: load(&self.hybrid),
            cache_hits: load(&self.cache_hits),
            errors: load(&self.errors),
            publishes: load(&self.publishes),
            generation,
            queue_depth: load(&self.queue_depth),
            max_queue_depth: load(&self.max_queue_depth),
            lagged_reads: load(&self.lagged_reads),
            max_lag: load(&self.max_lag),
            rejected: load(&self.rejected),
            expired: load(&self.expired),
            coalesced: load(&self.coalesced),
            abandoned: load(&self.abandoned),
            hot_hits: plan_cache.hot_hits,
            plan_cache,
            catalog_provenance,
        }
    }
}

/// FNV-1a digest of every relation's name and recorded provenance (see
/// [`crate::ProbDb::set_provenance`]) in the published catalog, sorted by
/// relation name — a stable fingerprint of *which* engines (or learned
/// ensemble mixtures) derived the data a server is answering from. `0`
/// when the catalog is empty; relations without provenance contribute
/// their name only, so hand-built and derived catalogs still digest
/// differently.
pub(super) fn provenance_digest(catalog: &crate::Catalog) -> u64 {
    let mut entries: Vec<(&str, Option<&str>)> = catalog
        .iter()
        .map(|(name, db)| (name, db.provenance()))
        .collect();
    if entries.is_empty() {
        return 0;
    }
    entries.sort_unstable();
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            acc = (acc ^ b as u64).wrapping_mul(0x0100_0000_01b3);
        }
    };
    for (name, provenance) in entries {
        eat(name.as_bytes());
        eat(&[0]);
        eat(provenance.unwrap_or("").as_bytes());
        eat(&[0]);
    }
    acc
}

/// A point-in-time snapshot of the server's cumulative counters, plus
/// the shared plan cache's [`PlanCacheStats`]. Returned by
/// [`super::ProbDbServer::stats`] and [`super::ServerHandle::stats`];
/// the serve bench reporter records these next to its latency numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Requests that produced a reply (answers and errors alike).
    pub queries: u64,
    /// Answers served on [`crate::EvalPath::ExactColumnar`].
    pub exact: u64,
    /// Answers served on [`crate::EvalPath::MonteCarlo`].
    pub monte_carlo: u64,
    /// Answers served on [`crate::EvalPath::Hybrid`].
    pub hybrid: u64,
    /// Answers planned from a warm plan-cache entry
    /// ([`crate::PlanRoute::CacheHit`]).
    pub cache_hits: u64,
    /// Requests that ended in an error (including worker panics the job
    /// harness contained).
    pub errors: u64,
    /// Generations published by the writer.
    pub publishes: u64,
    /// The currently published generation number.
    pub generation: u64,
    /// Requests submitted but not yet picked up by a worker.
    pub queue_depth: u64,
    /// High-water mark of [`ServerStats::queue_depth`].
    pub max_queue_depth: u64,
    /// Answers computed against a snapshot that trailed the published
    /// head (a publish landed between snapshot pin and answer): the
    /// shape of snapshot isolation, never an inconsistency.
    pub lagged_reads: u64,
    /// Largest generation distance ever observed by a lagged read.
    pub max_lag: u64,
    /// Submits refused at admission because the queue was at
    /// [`super::ServeConfig::max_queue_depth`]. Not counted in
    /// [`ServerStats::queries`]: nothing was enqueued or evaluated.
    pub rejected: u64,
    /// Jobs a worker dropped unevaluated because their submission
    /// deadline had already passed in the queue (the waiter gets
    /// [`crate::ProbDbError::DeadlineExceeded`] if it is still there).
    pub expired: u64,
    /// Answers fanned out from another identical request's evaluation
    /// (same query shape, statistic and generation) instead of paying
    /// for their own. Counted in [`ServerStats::queries`] and the
    /// per-path counters like any served answer.
    pub coalesced: u64,
    /// Jobs skipped unevaluated because their [`super::Ticket`] was
    /// dropped before a worker picked them up.
    pub abandoned: u64,
    /// Answers planned from the plan cache's lock-free hot tier
    /// (mirrors [`crate::plan::PlanCacheStats::hot_hits`]; a subset of
    /// [`ServerStats::cache_hits`]).
    pub hot_hits: u64,
    /// The shared concurrent plan cache's counters.
    pub plan_cache: PlanCacheStats,
    /// FNV-1a digest of the published catalog's per-relation provenance
    /// strings (engine names or learned-ensemble weight fingerprints):
    /// records *which* derivation produced the data every answer in this
    /// snapshot of the counters ran against. Changes whenever a publish
    /// swaps in a catalog derived differently; `0` for an empty catalog.
    pub catalog_provenance: u64,
}
