//! The concurrent serving layer: generations of immutable catalog
//! snapshots behind a long-lived worker pool.
//!
//! The paper's engine answers one query at a time against a catalog it
//! borrows; a service holds the catalog for years and answers many
//! queries at once while new data keeps arriving. [`ProbDbServer`] closes
//! that gap with a classic snapshot architecture:
//!
//! * **Generations.** The server owns an [`Arc<Snapshot>`] — an immutable
//!   [`Catalog`] stamped with a monotonically increasing generation
//!   number — published behind an atomic epoch counter. Readers pin the
//!   current snapshot and keep using it for the whole query; a publish
//!   never mutates data a reader can see, so there is no torn state to
//!   observe and nothing to lock during evaluation.
//! * **Lock-free reads in steady state.** Each worker caches the pinned
//!   `Arc` thread-locally and revalidates it against the epoch counter
//!   (one relaxed-cost atomic load) per request; the snapshot mutex is
//!   touched only in the request that observes a new epoch.
//! * **Copy-on-write ingestion.** A single writer builds the next
//!   generation from the current one: [`Catalog`] clones share every
//!   relation behind an `Arc`, and only relations the writer actually
//!   touches are deep-copied ([`Catalog::get_mut`]). Publishing swaps the
//!   snapshot pointer and bumps the epoch — atomic, and invisible to
//!   in-flight readers until their next request. A writer that dies
//!   mid-build ([`GenerationBuilder`] dropped, or the closure passed to
//!   [`ProbDbServer::update`] panics) leaves the published snapshot
//!   untouched.
//! * **Warm plans across generations.** All workers share one concurrent
//!   [`PlanCache`]. Untouched relations keep their
//!   [`crate::ProbDb::version`] and per-shard stamps through a publish
//!   (the `Arc` is the same object), so memoized registers stay valid; for touched relations the
//!   stamps prove exactly which leading-key ranges moved and the memo is
//!   *patched*, not rebuilt — the PR 7 incremental machinery, carried
//!   across generations.
//!
//! Requests flow through an `std::sync::mpsc` queue to the pool (the
//! build environment is offline: no async runtime, just std threads and
//! the vendored rayon shim inside the evaluators). [`ServerHandle`] is a
//! cheap clone per client thread; [`ServerStats`] exposes per-path
//! counts, cache warmth, generation lag and queue depth for the serve
//! bench reporter.
//!
//! **Overload & degradation.** The queue does not grow without bound:
//!
//! * **Admission control.** [`ServeConfig::max_queue_depth`] bounds the
//!   submitted-but-not-picked-up backlog; a submit past the bound fails
//!   fast with [`ProbDbError::Overloaded`] and enqueues nothing.
//! * **Deadlines.** [`ServerHandle::submit_with_deadline`] stamps the
//!   job; a worker that picks it up after the deadline drops it
//!   unevaluated (counted in [`ServerStats::expired`]), and
//!   [`Ticket::wait_timeout`] bounds the client's wait. Dropping a
//!   [`Ticket`] marks the job abandoned so workers skip it without
//!   paying for evaluation ([`ServerStats::abandoned`]).
//! * **Request coalescing.** Identical concurrent requests — same query
//!   shape, same statistic, same catalog generation — share one
//!   evaluation: the first worker to pick one up registers it in-flight,
//!   later workers attach their reply channels and move on, and the
//!   single answer fans out to every waiter bit-identically
//!   ([`ServerStats::coalesced`]). The plan cache dedupes *planning*;
//!   coalescing dedupes *execution*.
//! * **Hot-shape promotion.** Shapes that keep hitting the striped plan
//!   cache are promoted into a small lock-free hot table probed before
//!   any stripe lock ([`ServerStats::hot_hits`]), so the steady-state
//!   hot path runs without taking a single lock on the planning side.
//!
//! ```
//! use mrsl_probdb::serve::ProbDbServer;
//! use mrsl_probdb::{Alternative, Block, Catalog, Predicate, ProbDb, Query};
//! use mrsl_relation::{AttrId, CompleteTuple, Schema, ValueId};
//!
//! // One uncertain tuple: key "a" with probability 0.5, else "b".
//! let coin = |key: usize| {
//!     Block::new(key, vec![
//!         Alternative { tuple: CompleteTuple::from_values(vec![0]), prob: 0.5 },
//!         Alternative { tuple: CompleteTuple::from_values(vec![1]), prob: 0.5 },
//!     ])
//!     .unwrap()
//! };
//! let schema = Schema::builder().attribute("k", ["a", "b"]).build().unwrap();
//! let mut db = ProbDb::new(schema);
//! db.push_block(coin(0)).unwrap();
//! let mut catalog = Catalog::new();
//! catalog.add("r", db).unwrap();
//!
//! let server = ProbDbServer::start(catalog);
//! let handle = server.handle();
//! let is_a = Query::scan("r").filter(Predicate::eq(AttrId(0), ValueId(0)));
//! let (p, _) = handle.probability(&is_a).unwrap();
//! assert_eq!(p, 0.5);
//!
//! // Ingestion publishes generation 1 copy-on-write; the next read
//! // sees it.
//! let (generation, _) = server.update(|catalog| {
//!     catalog.get_mut("r").unwrap().push_block(coin(1)).unwrap();
//! });
//! assert_eq!(generation, 1);
//! let (p, _) = handle.probability(&is_a).unwrap();
//! assert_eq!(p, 0.75);
//! server.shutdown();
//! ```

mod stats;

pub use stats::ServerStats;

use crate::algebra::{Query, Statistic};
use crate::catalog::Catalog;
use crate::plan::{
    CatalogEngine, EvalReport, PlanCache, PlanRoute, ProbabilityBounds, QueryAnswer,
    QueryEngineConfig,
};
use crate::ProbDbError;
use stats::ServerCounters;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// An immutable catalog generation: the unit of publication. Readers pin
/// one and evaluate against it for the whole query; the writer never
/// mutates a published snapshot (copy-on-write builds the next one).
#[derive(Debug)]
pub struct Snapshot {
    generation: u64,
    catalog: Arc<Catalog>,
}

impl Snapshot {
    /// The generation number: `0` for the catalog the server started
    /// with, `+1` per publish.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The catalog of this generation.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }
}

/// Server configuration: pool size, overload policy, and the engine
/// configuration every worker evaluates with.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads in the pool; `0` (the default) starts one per host
    /// core, but never fewer than two — one worker can always make
    /// progress on reads while another is stuck in a long evaluation,
    /// and publishes (which never ride the queue) stay safe either way.
    pub workers: usize,
    /// Admission-control bound: when this many requests are already
    /// submitted but not yet picked up, [`ServerHandle::submit`] fails
    /// fast with [`ProbDbError::Overloaded`] instead of growing the
    /// backlog. `0` (the default) leaves the queue unbounded.
    pub max_queue_depth: usize,
    /// When `true` (the default), identical concurrent requests — same
    /// query shape, statistic and catalog generation — share one
    /// evaluation, and the answer fans out to every waiter
    /// ([`ServerStats::coalesced`]).
    pub coalesce_requests: bool,
    /// Engine configuration shared by all workers.
    /// [`QueryEngineConfig::plan_cache_capacity`] sizes the one
    /// concurrent plan cache the pool shares.
    pub engine: QueryEngineConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            max_queue_depth: 0,
            coalesce_requests: true,
            engine: QueryEngineConfig::default(),
        }
    }
}

/// One served answer, stamped with the generation it was computed
/// against.
#[derive(Debug, Clone)]
pub struct Served {
    /// The statistic's answer.
    pub answer: QueryAnswer,
    /// The planner's report for this evaluation.
    pub report: EvalReport,
    /// Generation of the snapshot the answer was computed against.
    pub generation: u64,
}

/// A pending reply: returned by [`ServerHandle::submit`], redeemed with
/// [`Ticket::wait`] or [`Ticket::wait_timeout`]. Dropping it abandons
/// the request: a worker that picks the job up afterwards skips it
/// without evaluating ([`ServerStats::abandoned`]); if evaluation
/// already started, the answer is simply discarded.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Served, ProbDbError>>,
    abandoned: Arc<AtomicBool>,
}

impl Ticket {
    /// Blocks until the worker replies. Returns
    /// [`ProbDbError::ServerUnavailable`] when the server shut down (or
    /// the evaluating worker died) before answering.
    pub fn wait(self) -> Result<Served, ProbDbError> {
        self.rx
            .recv()
            .unwrap_or(Err(ProbDbError::ServerUnavailable))
    }

    /// Blocks at most `timeout` for the reply. On timeout returns
    /// [`ProbDbError::DeadlineExceeded`] and abandons the request (the
    /// ticket is consumed, so a worker that has not started it yet will
    /// skip it). [`ProbDbError::ServerUnavailable`] when the server shut
    /// down before answering.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Served, ProbDbError> {
        match self.rx.recv_timeout(timeout) {
            Ok(outcome) => outcome,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ProbDbError::DeadlineExceeded),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ProbDbError::ServerUnavailable),
        }
    }
}

impl Drop for Ticket {
    fn drop(&mut self) {
        // `std::sync::mpsc` senders can't observe receiver liveness, so
        // the ticket flags abandonment explicitly for the worker to see.
        self.abandoned.store(true, Ordering::Release);
    }
}

/// Decrements the queue-depth gauge exactly once, whichever way the
/// request leaves the queue: worker pickup, admission bounce after
/// counting itself in, or the channel dropping it at teardown.
#[derive(Debug)]
struct DepthGuard {
    shared: Arc<Shared>,
}

impl Drop for DepthGuard {
    fn drop(&mut self) {
        self.shared.counters.dequeued();
    }
}

struct QueryJob {
    query: Query,
    stat: Statistic,
    reply: mpsc::Sender<Result<Served, ProbDbError>>,
    /// Set by [`Ticket::drop`]; checked at pickup so dead requests never
    /// pay for evaluation.
    abandoned: Arc<AtomicBool>,
    /// Requests past this instant at pickup are dropped unevaluated.
    deadline: Option<Instant>,
    /// `(statistic tag, query shape hash)` when this request is eligible
    /// for coalescing with identical concurrent ones.
    shape: Option<(u8, u64)>,
    /// Dropped first thing at pickup (and automatically if the job dies
    /// in the channel).
    depth: DepthGuard,
}

enum Job {
    Query(Box<QueryJob>),
    /// Stops the worker that receives it (one is queued per worker at
    /// shutdown; queries already queued ahead of them still drain).
    Shutdown,
}

/// State shared by the server, every handle and every worker.
#[derive(Debug)]
struct Shared {
    /// The published generation number. Written only under the snapshot
    /// mutex, read lock-free by every request to revalidate the worker's
    /// thread-local snapshot pin.
    epoch: AtomicU64,
    /// The published snapshot. The mutex guards pointer swaps only —
    /// held for an `Arc` clone, never during evaluation.
    current: Mutex<Arc<Snapshot>>,
    /// The concurrent plan cache all workers share.
    cache: Arc<PlanCache>,
    config: QueryEngineConfig,
    counters: ServerCounters,
    /// [`ServeConfig::max_queue_depth`]; `0` means unbounded.
    max_queue_depth: u64,
    /// [`ServeConfig::coalesce_requests`].
    coalesce: bool,
    /// In-flight evaluations, keyed by `(statistic tag, shape hash,
    /// generation)`. The evaluating worker owns the entry; workers that
    /// pick up an identical request while it exists park their reply
    /// sender here and move on.
    inflight: Mutex<InflightTable>,
}

type InflightTable = HashMap<(u8, u64, u64), Vec<mpsc::Sender<Result<Served, ProbDbError>>>>;

impl Shared {
    fn lock_current(&self) -> MutexGuard<'_, Arc<Snapshot>> {
        // A panicking writer poisons nothing observable: the snapshot is
        // only ever replaced whole, so the value under a poisoned lock is
        // still the last published generation.
        self.current.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The current snapshot, served from `local` when its generation
    /// still matches the epoch — the steady-state path costs one atomic
    /// load and no lock.
    fn pin(&self, local: &mut Option<Arc<Snapshot>>) -> Arc<Snapshot> {
        let epoch = self.epoch.load(Ordering::Acquire);
        if let Some(snap) = local {
            if snap.generation == epoch {
                return snap.clone();
            }
        }
        let fresh = self.lock_current().clone();
        *local = Some(fresh.clone());
        fresh
    }

    /// Evaluates one query against a pinned snapshot, panic-contained.
    fn evaluate_on(
        &self,
        snap: &Snapshot,
        query: &Query,
        stat: Statistic,
    ) -> Result<Served, ProbDbError> {
        let engine = CatalogEngine::with_plan_cache(&snap.catalog, self.config, self.cache.clone());
        let outcome = catch_unwind(AssertUnwindSafe(|| engine.evaluate(query, stat)));
        match outcome {
            Ok(Ok((answer, report))) => Ok(Served {
                answer,
                report,
                generation: snap.generation,
            }),
            Ok(Err(e)) => Err(e),
            // A panic inside evaluation is contained to the request: the
            // worker survives, the client sees `ServerUnavailable`.
            Err(_) => Err(ProbDbError::ServerUnavailable),
        }
    }

    /// Records one delivered outcome in the counters — once per waiter,
    /// so fanned-out answers count like any served answer and the
    /// `exact + monte_carlo + hybrid == queries` invariant holds.
    fn record_outcome(&self, outcome: &Result<Served, ProbDbError>) {
        match outcome {
            Ok(served) => {
                let lag = self
                    .epoch
                    .load(Ordering::Acquire)
                    .saturating_sub(served.generation);
                self.counters.served(
                    served.report.path,
                    served.report.route == PlanRoute::CacheHit,
                    lag,
                );
            }
            Err(_) => self.counters.failed(),
        }
    }

    fn lock_inflight(&self) -> MutexGuard<'_, InflightTable> {
        self.inflight.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Runs one picked-up job end to end: liveness and deadline checks,
    /// then either attaches to an identical in-flight evaluation or
    /// evaluates (and fans the answer out to everyone who attached).
    fn process(&self, local: &mut Option<Arc<Snapshot>>, job: QueryJob) {
        let QueryJob {
            query,
            stat,
            reply,
            abandoned,
            deadline,
            shape,
            depth,
        } = job;
        // Picked up: the request is out of the queue whatever happens next.
        drop(depth);
        if abandoned.load(Ordering::Acquire) {
            self.counters.abandoned();
            return;
        }
        if let Some(deadline) = deadline {
            if Instant::now() >= deadline {
                self.counters.expired();
                let _ = reply.send(Err(ProbDbError::DeadlineExceeded));
                return;
            }
        }
        let snap = self.pin(local);
        let key = match shape {
            Some((tag, hash)) if self.coalesce => (tag, hash, snap.generation),
            _ => {
                let outcome = self.evaluate_on(&snap, &query, stat);
                self.record_outcome(&outcome);
                let _ = reply.send(outcome);
                return;
            }
        };
        {
            let mut inflight = self.lock_inflight();
            if let Some(waiters) = inflight.get_mut(&key) {
                // An identical request is already evaluating against this
                // very generation: park the reply and free this worker.
                waiters.push(reply);
                return;
            }
            inflight.insert(key, Vec::new());
        }
        // This worker owns the entry; evaluate outside any lock.
        let outcome = self.evaluate_on(&snap, &query, stat);
        let waiters = self.lock_inflight().remove(&key).unwrap_or_default();
        for waiter in waiters {
            self.counters.coalesced();
            self.record_outcome(&outcome);
            let _ = waiter.send(outcome.clone());
        }
        self.record_outcome(&outcome);
        let _ = reply.send(outcome);
    }

    fn stats(&self) -> ServerStats {
        let provenance = stats::provenance_digest(&self.lock_current().catalog);
        self.counters.snapshot(
            self.epoch.load(Ordering::Acquire),
            self.cache.stats(),
            provenance,
        )
    }
}

fn worker_loop(shared: Arc<Shared>, jobs: Arc<Mutex<mpsc::Receiver<Job>>>) {
    let mut local: Option<Arc<Snapshot>> = None;
    loop {
        // Hold the receiver lock only to pull the next job, never while
        // evaluating — the queue stays live for the rest of the pool.
        let job = {
            let rx = jobs.lock().unwrap_or_else(PoisonError::into_inner);
            rx.recv()
        };
        match job {
            // Failed sends inside `process` just discard answers whose
            // clients dropped their tickets.
            Ok(Job::Query(job)) => shared.process(&mut local, *job),
            // Channel closed (server dropped without shutdown) or an
            // explicit stop: either way this worker is done.
            Ok(Job::Shutdown) | Err(_) => return,
        }
    }
}

/// A cheap, cloneable client of a [`ProbDbServer`]: submits queries to
/// the worker pool and reads server state. One handle per client thread
/// is the intended shape.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    tx: mpsc::Sender<Job>,
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Enqueues a query without blocking; redeem the [`Ticket`] for the
    /// answer. Fails fast with [`ProbDbError::Overloaded`] when the
    /// queue is at [`ServeConfig::max_queue_depth`] — nothing is
    /// enqueued. Queries submitted before a shutdown still drain.
    pub fn submit(&self, query: Query, stat: Statistic) -> Result<Ticket, ProbDbError> {
        self.submit_inner(query, stat, None)
    }

    /// Like [`ServerHandle::submit`], but stamps the request with a
    /// deadline `timeout` from now: a worker that picks it up after the
    /// deadline drops it unevaluated and replies
    /// [`ProbDbError::DeadlineExceeded`]. Pair with
    /// [`Ticket::wait_timeout`] to bound the client-side wait too.
    pub fn submit_with_deadline(
        &self,
        query: Query,
        stat: Statistic,
        timeout: Duration,
    ) -> Result<Ticket, ProbDbError> {
        self.submit_inner(query, stat, Some(Instant::now() + timeout))
    }

    fn submit_inner(
        &self,
        query: Query,
        stat: Statistic,
        deadline: Option<Instant>,
    ) -> Result<Ticket, ProbDbError> {
        // Count the request in first, then check the bound: concurrent
        // submitters each see a depth that includes themselves, so the
        // backlog can never exceed the bound no matter the interleaving.
        let depth = self.shared.counters.enqueued();
        let guard = DepthGuard {
            shared: self.shared.clone(),
        };
        let bound = self.shared.max_queue_depth;
        if bound > 0 && depth > bound {
            self.shared.counters.rejected();
            // `guard` drops here and unwinds the provisional count.
            return Err(ProbDbError::Overloaded);
        }
        let shape = crate::plan::statistic_cache_tag(stat)
            .and_then(|tag| query.flatten().ok().map(|flat| (tag, flat.shape_hash())));
        let (reply, rx) = mpsc::channel();
        let abandoned = Arc::new(AtomicBool::new(false));
        let job = QueryJob {
            query,
            stat,
            reply,
            abandoned: abandoned.clone(),
            deadline,
            shape,
            depth: guard,
        };
        // Pool gone: the job (and its reply sender) drops, which turns
        // the ticket into `ServerUnavailable` without blocking, and the
        // depth guard unwinds the count.
        let _ = self.tx.send(Job::Query(Box::new(job)));
        Ok(Ticket { rx, abandoned })
    }

    /// Submits and blocks for the answer.
    pub fn evaluate(&self, query: &Query, stat: Statistic) -> Result<Served, ProbDbError> {
        self.submit(query.clone(), stat)?.wait()
    }

    /// Submits with a deadline and waits at most that long: the request
    /// is dropped unevaluated if it expires in the queue, and the wait
    /// returns [`ProbDbError::DeadlineExceeded`] (abandoning the answer)
    /// if the deadline passes first.
    pub fn evaluate_within(
        &self,
        query: &Query,
        stat: Statistic,
        timeout: Duration,
    ) -> Result<Served, ProbDbError> {
        self.submit_with_deadline(query.clone(), stat, timeout)?
            .wait_timeout(timeout)
    }

    /// Convenience: `P(result non-empty)` with its report.
    pub fn probability(&self, query: &Query) -> Result<(f64, EvalReport), ProbDbError> {
        match self.evaluate(query, Statistic::Probability)? {
            Served {
                answer: QueryAnswer::Probability { p, .. },
                report,
                ..
            } => Ok((p, report)),
            _ => unreachable!("probability query answers with a probability"),
        }
    }

    /// Convenience: guaranteed probability bounds with their report.
    pub fn probability_bounds(
        &self,
        query: &Query,
    ) -> Result<(ProbabilityBounds, EvalReport), ProbDbError> {
        match self.evaluate(query, Statistic::ProbabilityBounds)? {
            Served {
                answer: QueryAnswer::Bounds(b),
                report,
                ..
            } => Ok((b, report)),
            _ => unreachable!("probability-bounds query answers with bounds"),
        }
    }

    /// Convenience: expected result count with its report.
    pub fn expected_count(&self, query: &Query) -> Result<(f64, EvalReport), ProbDbError> {
        match self.evaluate(query, Statistic::ExpectedCount)? {
            Served {
                answer: QueryAnswer::Count { mean, .. },
                report,
                ..
            } => Ok((mean, report)),
            _ => unreachable!("expected-count query answers with a count"),
        }
    }

    /// Pins the currently published snapshot (for direct, in-thread
    /// evaluation or inspection).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.shared.lock_current().clone()
    }

    /// The server's cumulative counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }
}

/// An in-progress next generation: a copy-on-write catalog the writer
/// mutates freely while readers keep serving the published snapshot.
/// Obtained from [`ProbDbServer::begin_update`]; holds the writer lock,
/// so at most one exists at a time. [`GenerationBuilder::publish`] makes
/// it visible atomically; dropping it (abandonment, or a panic anywhere
/// mid-build) discards it without a trace.
#[derive(Debug)]
pub struct GenerationBuilder<'a> {
    shared: &'a Shared,
    _writer: MutexGuard<'a, ()>,
    catalog: Catalog,
    base: u64,
}

impl GenerationBuilder<'_> {
    /// The next generation's catalog, mutable. Relations untouched so
    /// far still share storage with the published snapshot;
    /// [`Catalog::get_mut`] copies one on first touch.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Generation of the snapshot this build started from.
    pub fn base_generation(&self) -> u64 {
        self.base
    }

    /// Publishes the built catalog as the next generation and returns
    /// its number. In-flight readers finish on the old snapshot; every
    /// request pinned after this sees the new one.
    pub fn publish(self) -> u64 {
        let generation = self.base + 1;
        let snapshot = Arc::new(Snapshot {
            generation,
            catalog: Arc::new(self.catalog),
        });
        let mut current = self.shared.lock_current();
        *current = snapshot;
        // Release-store after the swap: a reader that sees the new epoch
        // lock-free will find the new snapshot under the mutex.
        self.shared.epoch.store(generation, Ordering::Release);
        drop(current);
        self.shared.counters.published();
        generation
    }

    /// Discards the build; the published snapshot is untouched. (Plain
    /// drop does the same — this just names the intent.)
    pub fn abandon(self) {}
}

/// A long-lived server over generations of immutable catalog snapshots.
/// See the [module docs](self) for the architecture.
///
/// The server itself is the single writer ([`ProbDbServer::update`] /
/// [`ProbDbServer::begin_update`]); any number of [`ServerHandle`]
/// clients read concurrently. Dropping the server stops the pool
/// ([`ProbDbServer::shutdown`] does it explicitly, draining queued
/// queries first).
#[derive(Debug)]
pub struct ProbDbServer {
    shared: Arc<Shared>,
    tx: mpsc::Sender<Job>,
    workers: Vec<JoinHandle<()>>,
    /// Serializes writers; the guard is what a [`GenerationBuilder`]
    /// holds.
    writer: Mutex<()>,
}

impl ProbDbServer {
    /// Starts a server over `catalog` with [`ServeConfig::default`]: one
    /// worker per host core, default engine configuration.
    pub fn start(catalog: Catalog) -> Self {
        Self::with_config(catalog, ServeConfig::default())
    }

    /// Starts a server over `catalog` (published as generation 0) with
    /// an explicit configuration.
    pub fn with_config(catalog: Catalog, config: ServeConfig) -> Self {
        let workers = match config.workers {
            // Never fewer than two, even on a 1-core host: one worker
            // stuck in a long evaluation must not starve every other
            // read until it finishes.
            0 => std::thread::available_parallelism().map_or(2, |n| usize::from(n).max(2)),
            n => n,
        };
        let shared = Arc::new(Shared {
            epoch: AtomicU64::new(0),
            current: Mutex::new(Arc::new(Snapshot {
                generation: 0,
                catalog: Arc::new(catalog),
            })),
            cache: Arc::new(PlanCache::with_capacity(config.engine.plan_cache_capacity)),
            config: config.engine,
            counters: ServerCounters::default(),
            max_queue_depth: config.max_queue_depth as u64,
            coalesce: config.coalesce_requests,
            inflight: Mutex::new(HashMap::new()),
        });
        let (tx, rx) = mpsc::channel();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("probdb-serve-{i}"))
                    .spawn(move || worker_loop(shared, rx))
                    .expect("spawn serve worker")
            })
            .collect();
        Self {
            shared,
            tx,
            workers,
            writer: Mutex::new(()),
        }
    }

    /// A new client handle (cheap; clone freely, one per client thread).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            tx: self.tx.clone(),
            shared: self.shared.clone(),
        }
    }

    /// Pins the currently published snapshot.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.shared.lock_current().clone()
    }

    /// The currently published generation number.
    pub fn generation(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// The server's cumulative counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Worker threads actually running (after the `workers: 0` → host
    /// cores, minimum two, resolution).
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// The plan cache shared by the worker pool — e.g. to pre-warm it or
    /// to hand the warmth to a successor server.
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.shared.cache
    }

    /// Starts building the next generation copy-on-write; blocks while
    /// another writer holds the builder. Readers are never blocked.
    pub fn begin_update(&self) -> GenerationBuilder<'_> {
        // A writer that panicked mid-build published nothing; recovering
        // the poisoned lock is safe because the builder it held died
        // with its private catalog copy.
        let writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let base = self.shared.lock_current().clone();
        GenerationBuilder {
            shared: &self.shared,
            _writer: writer,
            catalog: (*base.catalog).clone(),
            base: base.generation,
        }
    }

    /// Builds and publishes the next generation in one step: clones the
    /// current catalog copy-on-write, applies `build`, publishes, and
    /// returns the new generation number with `build`'s output. If
    /// `build` panics, nothing is published.
    pub fn update<T>(&self, build: impl FnOnce(&mut Catalog) -> T) -> (u64, T) {
        let mut builder = self.begin_update();
        let out = build(builder.catalog_mut());
        (builder.publish(), out)
    }

    /// Stops the pool: queued queries drain, then the workers exit and
    /// are joined. Handles outlive the server but their submissions
    /// resolve to [`ProbDbError::ServerUnavailable`].
    pub fn shutdown(mut self) {
        self.stop_workers();
    }

    fn stop_workers(&mut self) {
        for _ in &self.workers {
            let _ = self.tx.send(Job::Shutdown);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ProbDbServer {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Alternative, Block};
    use crate::database::ProbDb;
    use mrsl_relation::{CompleteTuple, Schema};

    fn one_block_catalog(p: f64) -> Catalog {
        let schema = Schema::builder()
            .attribute("k", ["a", "b"])
            .build()
            .unwrap();
        let mut db = ProbDb::new(schema);
        db.push_block(
            Block::new(
                0,
                vec![
                    Alternative {
                        tuple: CompleteTuple::from_values(vec![0]),
                        prob: p,
                    },
                    Alternative {
                        tuple: CompleteTuple::from_values(vec![1]),
                        prob: 1.0 - p,
                    },
                ],
            )
            .unwrap(),
        )
        .unwrap();
        let mut catalog = Catalog::new();
        catalog.add("r", db).unwrap();
        catalog
    }

    #[test]
    fn generations_number_from_zero_and_share_untouched_relations() {
        let server = ProbDbServer::with_config(
            one_block_catalog(0.5),
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
        );
        assert_eq!(server.generation(), 0);
        let before = server.snapshot();
        let (generation, ()) = server.update(|_| ());
        assert_eq!(generation, 1);
        // An update that touches nothing still publishes a new
        // generation — whose relations are the same objects.
        assert!(Arc::ptr_eq(
            &before.catalog().get_shared("r").unwrap(),
            &server.snapshot().catalog().get_shared("r").unwrap()
        ));
        assert_eq!(server.stats().publishes, 1);
        server.shutdown();
    }

    #[test]
    fn abandoned_builder_publishes_nothing_and_releases_the_writer() {
        let server = ProbDbServer::start(one_block_catalog(0.5));
        {
            let mut builder = server.begin_update();
            builder
                .catalog_mut()
                .get_mut("r")
                .unwrap()
                .push_certain(CompleteTuple::from_values(vec![1]))
                .unwrap();
            builder.abandon();
        }
        assert_eq!(server.generation(), 0);
        assert_eq!(
            server
                .snapshot()
                .catalog()
                .get("r")
                .unwrap()
                .certain()
                .len(),
            0
        );
        // The writer lock was released: the next update goes through.
        assert_eq!(server.update(|_| ()).0, 1);
    }

    #[test]
    fn stats_fingerprint_the_published_catalog_provenance() {
        let server = ProbDbServer::start(one_block_catalog(0.5));
        let unstamped = server.stats().catalog_provenance;
        assert_ne!(unstamped, 0, "non-empty catalogs digest to non-zero");
        server.update(|catalog| {
            catalog
                .get_mut("r")
                .unwrap()
                .set_provenance("ensemble[gibbs:0.6,independent:0.4]#00c0ffee");
        });
        let stamped = server.stats().catalog_provenance;
        assert_ne!(
            unstamped, stamped,
            "publishing a differently-derived catalog changes the digest"
        );
        // Re-publishing the same provenance is digest-stable.
        server.update(|_| ());
        assert_eq!(server.stats().catalog_provenance, stamped);
        server.shutdown();
    }

    #[test]
    fn handles_survive_shutdown_with_a_typed_error() {
        let server = ProbDbServer::start(one_block_catalog(0.5));
        let handle = server.handle();
        server.shutdown();
        let err = handle.probability(&Query::scan("r")).unwrap_err();
        assert_eq!(err, ProbDbError::ServerUnavailable);
        // Queue-depth accounting unwound the failed submit.
        assert_eq!(handle.stats().queue_depth, 0);
    }

    #[test]
    fn planning_errors_come_back_typed() {
        let server = ProbDbServer::start(one_block_catalog(0.5));
        let err = server
            .handle()
            .probability(&Query::scan("missing"))
            .unwrap_err();
        assert_eq!(err, ProbDbError::UnknownRelation("missing".into()));
        assert_eq!(server.stats().errors, 1);
        server.shutdown();
    }
}
