//! Disjoint-independent probabilistic databases.
//!
//! The paper's output "adheres to the disjoint-independent model" (§I-A,
//! citing Dalvi & Suciu): each incomplete tuple gives rise to a *block* of
//! mutually exclusive complete tuples with probabilities summing to 1; a
//! possible world picks one alternative per block, independently across
//! blocks. This crate is the substrate that receives the derived model
//! **and** the query subsystem that answers questions over it:
//!
//! * [`block`] — blocks of mutually exclusive alternatives.
//! * [`database`] — [`ProbDb`]: certain tuples + blocks over one schema,
//!   with a columnar mirror kept in sync by the push paths.
//! * [`mod@column`] — the columnar storage layer: dictionary-encoded `u16`
//!   columns and row bitmaps for vectorized predicate evaluation.
//! * [`predicate`] — the composable predicate algebra ([`Predicate`]:
//!   `Eq`/`In`/`Range`/`And`/`Or`/`Not`/`Any`), evaluable per tuple,
//!   three-valued on incomplete tuples, and vectorized over columns.
//! * [`world`] — possible-world semantics: enumeration (small databases)
//!   and world sampling.
//! * [`query`] — exact query evaluation under BID semantics: selection
//!   marginals, expected counts, the full count distribution
//!   (Poisson-binomial DP), value marginals and top-k by probability.
//! * [`montecarlo`] — Monte-Carlo query evaluation over compiled
//!   predicates, the fallback path for out-of-budget plans.
//! * [`plan`] — the planner: [`QueryEngine`] classifies each
//!   [`plan::QuerySpec`] as exactly liftable or not, routes it, and
//!   reports the choice in an [`EvalReport`].

pub mod block;
pub mod column;
pub mod database;
pub mod montecarlo;
pub mod plan;
pub mod predicate;
pub mod query;
pub mod world;

pub use block::{Alternative, Block, BlockError};
pub use column::{Bitmap, ColumnSet, ColumnStore};
pub use database::ProbDb;
pub use plan::{EvalPath, EvalReport, QueryAnswer, QueryEngine, QueryEngineConfig};
pub use predicate::Predicate;
pub use world::PossibleWorld;

use std::fmt;

/// Errors reported by the query subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbDbError {
    /// A Monte-Carlo estimator was asked for zero samples; estimates over
    /// an empty sample are undefined, so this is an error rather than a
    /// panic (callers pick the sample budget at runtime).
    NoSamples,
}

impl fmt::Display for ProbDbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoSamples => {
                write!(
                    f,
                    "Monte-Carlo estimation needs at least one sample (n = 0)"
                )
            }
        }
    }
}

impl std::error::Error for ProbDbError {}
