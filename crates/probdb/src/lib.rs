//! Disjoint-independent probabilistic databases.
//!
//! The paper's output "adheres to the disjoint-independent model" (§I-A,
//! citing Dalvi & Suciu): each incomplete tuple gives rise to a *block* of
//! mutually exclusive complete tuples with probabilities summing to 1; a
//! possible world picks one alternative per block, independently across
//! blocks. This crate is the substrate that receives the derived model:
//!
//! * [`block`] — blocks of mutually exclusive alternatives.
//! * [`database`] — [`ProbDb`]: certain tuples + blocks over one schema.
//! * [`world`] — possible-world semantics: enumeration (small databases)
//!   and world sampling.
//! * [`query`] — exact query evaluation under BID semantics: selection
//!   marginals, expected counts, the full count distribution
//!   (Poisson-binomial DP), value marginals and top-k by probability.
//! * [`montecarlo`] — Monte-Carlo query evaluation used to cross-check the
//!   exact evaluator.

pub mod block;
pub mod database;
pub mod montecarlo;
pub mod query;
pub mod world;

pub use block::{Alternative, Block, BlockError};
pub use database::ProbDb;
pub use query::Predicate;
pub use world::PossibleWorld;
