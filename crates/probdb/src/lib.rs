//! Disjoint-independent probabilistic databases.
//!
//! The paper's output "adheres to the disjoint-independent model" (§I-A,
//! citing Dalvi & Suciu): each incomplete tuple gives rise to a *block* of
//! mutually exclusive complete tuples with probabilities summing to 1; a
//! possible world picks one alternative per block, independently across
//! blocks. This crate is the substrate that receives the derived model
//! **and** the query subsystem that answers questions over it:
//!
//! * [`block`] — blocks of mutually exclusive alternatives.
//! * [`database`] — [`ProbDb`]: certain tuples + blocks over one schema,
//!   with a columnar mirror kept in sync by the push paths.
//! * [`mod@column`] — the columnar storage layer: dictionary-encoded `u16`
//!   columns and row bitmaps for vectorized predicate evaluation.
//! * [`predicate`] — the composable predicate algebra ([`Predicate`]:
//!   `Eq`/`In`/`Range`/`And`/`Or`/`Not`/`Any`), evaluable per tuple,
//!   three-valued on incomplete tuples, and vectorized over columns.
//! * [`world`] — possible-world semantics: enumeration (small databases)
//!   and world sampling.
//! * [`query`] — exact query evaluation under BID semantics: selection
//!   marginals, expected counts, the full count distribution
//!   (Poisson-binomial DP), value marginals and top-k by probability.
//! * [`montecarlo`] — Monte-Carlo query evaluation over compiled
//!   predicates, the fallback path for out-of-budget plans.
//! * [`catalog`] — [`Catalog`]: a named collection of relations with
//!   dictionary-compatibility checks for join attributes.
//! * [`algebra`] — the composable query tree ([`Query`]:
//!   scan/filter/join/project) and the [`Statistic`] to compute about it.
//! * [`plan`] — the planner: [`CatalogEngine`] classifies each query
//!   (hierarchical join shapes compile to exact extensional plans,
//!   unsafe-but-dissociable shapes — non-hierarchical chains, aliased
//!   self-joins — answer [`Statistic::ProbabilityBounds`] with
//!   deterministic dissociation brackets, everything else samples),
//!   routes it, and reports the choice — with the safe-plan
//!   decomposition — in an [`EvalReport`]. Liftable plans also expose
//!   exact mass gradients ([`CatalogEngine::probability_with_gradient`])
//!   for tuple-probability learning.
//! * [`serve`] — the concurrent serving layer: [`ProbDbServer`] owns
//!   generations of immutable catalog snapshots, answers queries on a
//!   worker pool sharing one concurrent plan cache, and lets a single
//!   writer publish the next generation copy-on-write behind live
//!   readers.
//! * [`testutil`] — brute-force joint-world oracles every evaluator is
//!   tested against (shared by unit, integration and property suites).

pub mod algebra;
pub mod block;
pub mod catalog;
pub mod column;
pub mod database;
pub mod montecarlo;
pub mod plan;
pub mod predicate;
pub mod query;
pub mod serve;
pub mod testutil;
pub mod world;

pub use algebra::{Query, QueryNode, ScanRequirement, Statistic};
pub use block::{Alternative, Block, BlockError};
pub use catalog::Catalog;
pub use column::{Bitmap, ColumnSet, ColumnStore, ShardMap, SHARD_COUNT};
pub use database::ProbDb;
pub use plan::{
    dissociation_search_count, CatalogEngine, EvalPath, EvalReport, MassGradients, PlanCache,
    PlanCacheStats, PlanClass, PlanRoute, ProbabilityBounds, QueryAnswer, QueryEngineConfig,
    RelationStats, SafePlan,
};
pub use predicate::Predicate;
pub use serve::{ProbDbServer, ServeConfig, Served, ServerHandle, ServerStats, Snapshot, Ticket};
pub use world::PossibleWorld;

use std::fmt;

/// Errors reported by the query subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbDbError {
    /// A Monte-Carlo estimator was asked for zero samples; estimates over
    /// an empty sample are undefined, so this is an error rather than a
    /// panic (callers pick the sample budget at runtime).
    NoSamples,
    /// A catalog already holds a relation under this name.
    DuplicateRelation(String),
    /// A query scanned a relation the catalog does not have.
    UnknownRelation(String),
    /// A query scanned the same relation twice; self-joins are not
    /// supported by the safe-plan machinery.
    SelfJoin(String),
    /// A selection was applied above a join; push filters below joins so
    /// each predicate ranges over one relation.
    FilterAboveJoin,
    /// A join with no attribute pairs (a cross product) was requested.
    EmptyJoinKeys,
    /// A `join_on_rel` anchor named a relation outside the left subtree.
    JoinAnchorNotInLeft(String),
    /// A join pair's attribute dictionaries disagree, so their `ValueId`s
    /// are not comparable. Each side is reported as `relation.attribute`.
    IncompatibleJoinDomains {
        /// Left side, as `relation.attribute`.
        left: String,
        /// Right side, as `relation.attribute`.
        right: String,
    },
    /// The requested statistic is only defined for single-relation
    /// queries (e.g. per-block marginals of a join have no single block
    /// order to report in).
    UnsupportedStatistic {
        /// The statistic's name.
        statistic: &'static str,
    },
    /// The serving layer dropped the request before answering: the
    /// server shut down, or the worker evaluating it died.
    ServerUnavailable,
    /// The server refused the request at admission: the job queue is at
    /// its configured [`serve::ServeConfig::max_queue_depth`] bound.
    /// Nothing was enqueued — back off and resubmit, or shed the load.
    Overloaded,
    /// The request's deadline passed before an answer was produced:
    /// either [`serve::Ticket::wait_timeout`] gave up waiting, or a
    /// worker dropped the job unevaluated because its submission
    /// deadline had already expired in the queue.
    DeadlineExceeded,
    /// The query's plan shape is not differentiable: mass gradients are
    /// only defined along the exact safe-plan route, so shapes that
    /// route to Monte Carlo or dissociation bounds cannot answer
    /// [`CatalogEngine::probability_with_gradient`].
    NotDifferentiable {
        /// The classifier's reason for rejecting the exact route.
        reason: String,
    },
}

impl fmt::Display for ProbDbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoSamples => {
                write!(
                    f,
                    "Monte-Carlo estimation needs at least one sample (n = 0)"
                )
            }
            Self::DuplicateRelation(name) => {
                write!(f, "catalog already has a relation named `{name}`")
            }
            Self::UnknownRelation(name) => write!(f, "no relation named `{name}` in the catalog"),
            Self::SelfJoin(name) => {
                write!(
                    f,
                    "relation `{name}` is scanned twice; self-joins are unsupported"
                )
            }
            Self::FilterAboveJoin => {
                write!(
                    f,
                    "filters must apply to a single relation; push them below joins"
                )
            }
            Self::EmptyJoinKeys => write!(f, "joins need at least one attribute pair"),
            Self::JoinAnchorNotInLeft(name) => {
                write!(f, "join anchor `{name}` is not part of the left subtree")
            }
            Self::IncompatibleJoinDomains { left, right } => {
                write!(
                    f,
                    "join attributes {left} and {right} have different dictionaries"
                )
            }
            Self::UnsupportedStatistic { statistic } => {
                write!(
                    f,
                    "the {statistic} statistic requires a single-relation query"
                )
            }
            Self::ServerUnavailable => {
                write!(f, "the server dropped the request before answering")
            }
            Self::Overloaded => {
                write!(
                    f,
                    "the server's job queue is full; request refused at admission"
                )
            }
            Self::DeadlineExceeded => {
                write!(
                    f,
                    "the request's deadline passed before an answer was produced"
                )
            }
            Self::NotDifferentiable { reason } => {
                write!(f, "query plan is not differentiable: {reason}")
            }
        }
    }
}

impl std::error::Error for ProbDbError {}
