//! Possible-world semantics.
//!
//! The semantics of a probabilistic database is a distribution over
//! possible worlds (paper §I-A). Under the disjoint-independent model a
//! world chooses one alternative from each block; its probability is the
//! product of the chosen alternatives' probabilities.

use crate::database::ProbDb;
use mrsl_relation::CompleteTuple;
use rand::Rng;

/// One possible world: the certain tuples plus one choice per block.
#[derive(Debug, Clone)]
pub struct PossibleWorld {
    /// All tuples of the world (certain tuples first, then one per block,
    /// in block order).
    pub tuples: Vec<CompleteTuple>,
    /// The world's probability.
    pub prob: f64,
}

/// Enumerates all possible worlds.
///
/// # Panics
/// Panics when the database has more than `limit` worlds — enumeration is
/// exponential and intended for tests and small examples.
pub fn enumerate_worlds(db: &ProbDb, limit: u128) -> Vec<PossibleWorld> {
    let count = db.world_count();
    assert!(
        count <= limit,
        "database has {count} worlds, exceeding the limit {limit}"
    );
    let mut worlds = vec![PossibleWorld {
        tuples: db.certain().to_vec(),
        prob: 1.0,
    }];
    for block in db.blocks() {
        let mut next = Vec::with_capacity(worlds.len() * block.len());
        for world in &worlds {
            for alternative in block.alternatives() {
                let mut tuples = world.tuples.clone();
                tuples.push(alternative.tuple.clone());
                next.push(PossibleWorld {
                    tuples,
                    prob: world.prob * alternative.prob,
                });
            }
        }
        worlds = next;
    }
    worlds
}

/// Chooses an index with probability proportional to `probs`, consuming
/// exactly one uniform draw. Falls back to the last index on floating-point
/// underflow of the running remainder.
///
/// This is the one sampling primitive shared by [`sample_world`] and the
/// compiled Monte-Carlo estimators in [`crate::montecarlo`], so both draw
/// identical choices from identical RNG states.
pub fn choose_weighted<R, I>(probs: I, rng: &mut R) -> usize
where
    R: Rng + ?Sized,
    I: IntoIterator<Item = f64>,
{
    let mut u: f64 = rng.gen::<f64>();
    let mut last = 0;
    for (i, p) in probs.into_iter().enumerate() {
        if u < p {
            return i;
        }
        u -= p;
        last = i;
    }
    last
}

/// Samples one possible world.
pub fn sample_world<R: Rng + ?Sized>(db: &ProbDb, rng: &mut R) -> PossibleWorld {
    let mut tuples = db.certain().to_vec();
    let mut prob = 1.0;
    for block in db.blocks() {
        let chosen = choose_weighted(block.alternatives().iter().map(|a| a.prob), rng);
        let a = &block.alternatives()[chosen];
        tuples.push(a.tuple.clone());
        prob *= a.prob;
    }
    PossibleWorld { tuples, prob }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Alternative, Block};
    use mrsl_relation::schema::fig1_schema;
    use mrsl_util::seeded_rng;

    fn alt(values: Vec<u16>, prob: f64) -> Alternative {
        Alternative {
            tuple: CompleteTuple::from_values(values),
            prob,
        }
    }

    fn small_db() -> ProbDb {
        let mut db = ProbDb::new(fig1_schema());
        db.push_certain(CompleteTuple::from_values(vec![0, 0, 0, 0]))
            .unwrap();
        db.push_block(
            Block::new(
                0,
                vec![alt(vec![1, 0, 0, 0], 0.3), alt(vec![1, 1, 0, 0], 0.7)],
            )
            .unwrap(),
        )
        .unwrap();
        db.push_block(
            Block::new(
                1,
                vec![alt(vec![2, 0, 0, 0], 0.6), alt(vec![2, 0, 1, 1], 0.4)],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn world_probabilities_sum_to_one() {
        let worlds = enumerate_worlds(&small_db(), 1000);
        assert_eq!(worlds.len(), 4);
        let total: f64 = worlds.iter().map(|w| w.prob).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Every world carries the certain tuple plus one tuple per block.
        for w in &worlds {
            assert_eq!(w.tuples.len(), 3);
            assert_eq!(w.tuples[0].raw(), &[0, 0, 0, 0]);
        }
    }

    #[test]
    fn world_probability_is_product_of_choices() {
        let worlds = enumerate_worlds(&small_db(), 1000);
        let w = worlds
            .iter()
            .find(|w| w.tuples[1].raw() == [1, 1, 0, 0] && w.tuples[2].raw() == [2, 0, 1, 1])
            .unwrap();
        assert!((w.prob - 0.7 * 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exceeding the limit")]
    fn enumerate_respects_limit() {
        enumerate_worlds(&small_db(), 3);
    }

    #[test]
    fn sampling_frequency_approaches_world_probability() {
        let db = small_db();
        let mut rng = seeded_rng(5);
        let n = 20_000;
        let mut hits = 0usize;
        for _ in 0..n {
            let w = sample_world(&db, &mut rng);
            if w.tuples[1].raw() == [1, 0, 0, 0] {
                hits += 1;
            }
        }
        let f = hits as f64 / n as f64;
        assert!((f - 0.3).abs() < 0.02, "f = {f}");
    }

    #[test]
    fn empty_db_has_one_empty_world() {
        let db = ProbDb::new(fig1_schema());
        let worlds = enumerate_worlds(&db, 10);
        assert_eq!(worlds.len(), 1);
        assert_eq!(worlds[0].prob, 1.0);
        assert!(worlds[0].tuples.is_empty());
    }
}
