//! Blocks: distributions over mutually exclusive complete tuples.

use mrsl_relation::CompleteTuple;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One possible completion of an incomplete tuple, with its probability.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Alternative {
    /// The complete tuple.
    pub tuple: CompleteTuple,
    /// Probability of this alternative being the true completion.
    pub prob: f64,
}

/// Errors detected while building a block.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockError {
    /// The block has no alternatives.
    Empty,
    /// An alternative has a non-positive or non-finite probability.
    BadProbability(f64),
    /// Probabilities sum to something far from 1.
    NotNormalized(f64),
    /// Two alternatives are the same tuple.
    DuplicateAlternative,
    /// An alternative's arity does not match the database schema.
    ///
    /// Reported by [`ProbDb::push_block`](crate::ProbDb::push_block): the
    /// columnar mirror requires every row to have exactly one value per
    /// schema attribute, so mismatches are a hard error rather than a
    /// debug assertion.
    ArityMismatch {
        /// Schema arity.
        expected: usize,
        /// Arity of the offending alternative.
        got: usize,
    },
    /// A mass update supplied the wrong number of probabilities for the
    /// block (see [`ProbDb::set_block_masses`](crate::ProbDb::set_block_masses)).
    AlternativeCountMismatch {
        /// Number of alternatives in the block.
        expected: usize,
        /// Number of probabilities supplied.
        got: usize,
    },
}

impl fmt::Display for BlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "block has no alternatives"),
            Self::BadProbability(p) => write!(f, "bad alternative probability {p}"),
            Self::NotNormalized(s) => write!(f, "block probabilities sum to {s}, expected 1"),
            Self::DuplicateAlternative => write!(f, "duplicate alternative tuple in block"),
            Self::ArityMismatch { expected, got } => {
                write!(f, "alternative has arity {got}, schema expects {expected}")
            }
            Self::AlternativeCountMismatch { expected, got } => {
                write!(
                    f,
                    "mass update has {got} probabilities, block has {expected}"
                )
            }
        }
    }
}

impl std::error::Error for BlockError {}

/// A block (x-tuple): mutually exclusive alternatives summing to 1.
///
/// `key` identifies the source incomplete tuple the block was derived from
/// (its index within the source relation's incomplete part).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Block {
    key: usize,
    alternatives: Vec<Alternative>,
}

impl Block {
    /// Tolerance for the sum-to-1 check.
    const NORM_TOL: f64 = 1e-6;

    /// Builds a validated block.
    pub fn new(key: usize, alternatives: Vec<Alternative>) -> Result<Self, BlockError> {
        if alternatives.is_empty() {
            return Err(BlockError::Empty);
        }
        let mut sum = 0.0;
        for a in &alternatives {
            if !(a.prob > 0.0 && a.prob.is_finite()) {
                return Err(BlockError::BadProbability(a.prob));
            }
            sum += a.prob;
        }
        if (sum - 1.0).abs() > Self::NORM_TOL {
            return Err(BlockError::NotNormalized(sum));
        }
        for i in 0..alternatives.len() {
            for j in (i + 1)..alternatives.len() {
                if alternatives[i].tuple == alternatives[j].tuple {
                    return Err(BlockError::DuplicateAlternative);
                }
            }
        }
        Ok(Self { key, alternatives })
    }

    /// Builds a block, dropping zero-probability alternatives and
    /// renormalizing; convenient for estimates with floating-point dust.
    pub fn normalized(key: usize, alternatives: Vec<Alternative>) -> Result<Self, BlockError> {
        let mut kept: Vec<Alternative> = alternatives
            .into_iter()
            .filter(|a| a.prob > 0.0 && a.prob.is_finite())
            .collect();
        let sum: f64 = kept.iter().map(|a| a.prob).sum();
        if kept.is_empty() || sum <= 0.0 {
            return Err(BlockError::Empty);
        }
        kept.iter_mut().for_each(|a| a.prob /= sum);
        Self::new(key, kept)
    }

    /// Replaces the alternative probabilities in place, keeping the tuples.
    ///
    /// Validates like [`Block::new`]: every probability positive and
    /// finite, the sum within tolerance of 1, and exactly one probability
    /// per alternative. The block is untouched on error.
    pub(crate) fn set_probs(&mut self, probs: &[f64]) -> Result<(), BlockError> {
        if probs.len() != self.alternatives.len() {
            return Err(BlockError::AlternativeCountMismatch {
                expected: self.alternatives.len(),
                got: probs.len(),
            });
        }
        let mut sum = 0.0;
        for &p in probs {
            if !(p > 0.0 && p.is_finite()) {
                return Err(BlockError::BadProbability(p));
            }
            sum += p;
        }
        if (sum - 1.0).abs() > Self::NORM_TOL {
            return Err(BlockError::NotNormalized(sum));
        }
        for (a, &p) in self.alternatives.iter_mut().zip(probs) {
            a.prob = p;
        }
        Ok(())
    }

    /// The source incomplete-tuple key.
    pub fn key(&self) -> usize {
        self.key
    }

    /// The alternatives.
    pub fn alternatives(&self) -> &[Alternative] {
        &self.alternatives
    }

    /// Test-only raw access for the gradient tests' finite-difference
    /// oracle, which perturbs a single mass off the simplex.
    #[cfg(test)]
    pub(crate) fn alternatives_mut(&mut self) -> &mut [Alternative] {
        &mut self.alternatives
    }

    /// Number of alternatives.
    pub fn len(&self) -> usize {
        self.alternatives.len()
    }

    /// Blocks are never empty; kept for API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The most probable alternative (ties broken by first occurrence).
    pub fn most_probable(&self) -> &Alternative {
        self.alternatives
            .iter()
            .max_by(|a, b| a.prob.partial_cmp(&b.prob).expect("finite probs"))
            .expect("blocks are non-empty")
    }

    /// Probability that the block's true tuple satisfies `pred`.
    pub fn prob_satisfies(&self, pred: impl Fn(&CompleteTuple) -> bool) -> f64 {
        self.alternatives
            .iter()
            .filter(|a| pred(&a.tuple))
            .map(|a| a.prob)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alt(values: Vec<u16>, prob: f64) -> Alternative {
        Alternative {
            tuple: CompleteTuple::from_values(values),
            prob,
        }
    }

    #[test]
    fn builds_valid_block() {
        let b = Block::new(3, vec![alt(vec![0, 0], 0.25), alt(vec![0, 1], 0.75)]).unwrap();
        assert_eq!(b.key(), 3);
        assert_eq!(b.len(), 2);
        assert_eq!(b.most_probable().tuple.raw(), &[0, 1]);
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(Block::new(0, vec![]).unwrap_err(), BlockError::Empty);
    }

    #[test]
    fn rejects_bad_probability() {
        let e = Block::new(0, vec![alt(vec![0], 0.0), alt(vec![1], 1.0)]).unwrap_err();
        assert!(matches!(e, BlockError::BadProbability(_)));
        let e = Block::new(0, vec![alt(vec![0], f64::NAN)]).unwrap_err();
        assert!(matches!(e, BlockError::BadProbability(_)));
    }

    #[test]
    fn rejects_unnormalized() {
        let e = Block::new(0, vec![alt(vec![0], 0.4), alt(vec![1], 0.4)]).unwrap_err();
        assert!(matches!(e, BlockError::NotNormalized(_)));
    }

    #[test]
    fn rejects_duplicates() {
        let e = Block::new(0, vec![alt(vec![0], 0.5), alt(vec![0], 0.5)]).unwrap_err();
        assert_eq!(e, BlockError::DuplicateAlternative);
    }

    #[test]
    fn normalized_drops_zeros_and_rescales() {
        let b = Block::normalized(
            1,
            vec![alt(vec![0], 0.2), alt(vec![1], 0.0), alt(vec![2], 0.6)],
        )
        .unwrap();
        assert_eq!(b.len(), 2);
        assert!((b.alternatives()[0].prob - 0.25).abs() < 1e-12);
        assert!((b.alternatives()[1].prob - 0.75).abs() < 1e-12);
    }

    #[test]
    fn normalized_rejects_all_zero() {
        let e = Block::normalized(0, vec![alt(vec![0], 0.0)]).unwrap_err();
        assert_eq!(e, BlockError::Empty);
    }

    #[test]
    fn prob_satisfies_sums_matching() {
        let b = Block::new(
            0,
            vec![
                alt(vec![0, 0], 0.3),
                alt(vec![0, 1], 0.45),
                alt(vec![1, 1], 0.25),
            ],
        )
        .unwrap();
        let p = b.prob_satisfies(|t| t.raw()[1] == 1);
        assert!((p - 0.7).abs() < 1e-12);
        assert_eq!(b.prob_satisfies(|_| false), 0.0);
        assert!((b.prob_satisfies(|_| true) - 1.0).abs() < 1e-12);
    }
}
