//! Composable predicate algebra over discrete tuples.
//!
//! Selection conditions are expression trees over the schema's dictionary
//! indices: equality, membership, (inclusive) ranges over a domain's value
//! order, and the boolean connectives. One [`Predicate`] evaluates three
//! ways, and all three agree bit-for-bit on decided inputs:
//!
//! * [`Predicate::eval`] — per complete tuple (the compatibility path);
//! * [`Predicate::eval_partial`] — three-valued (Kleene) evaluation on an
//!   incomplete tuple: `Some(b)` when the observed portion decides the
//!   predicate, `None` when the outcome depends on a missing attribute.
//!   This is what lets the lazy derivation layer skip inference;
//! * [`Predicate::eval_columns`] — vectorized evaluation over a
//!   [`ColumnSet`], producing a [`Bitmap`] with one bit per row.

use crate::column::{Bitmap, ColumnSet};
use mrsl_relation::{AttrId, AttrMask, CompleteTuple, PartialTuple, ValueId};
use serde::value::Value;
use serde::{DeError, Deserialize, Serialize};

/// A composable selection predicate over one relation's tuples.
///
/// Constructed through the builder methods ([`Predicate::eq`],
/// [`Predicate::is_in`], [`Predicate::range`], [`Predicate::and`],
/// [`Predicate::or`], [`Predicate::negate`]); the enum is public so
/// planners can pattern-match on the shape.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub enum Predicate {
    /// The always-true predicate.
    #[default]
    Any,
    /// The always-false predicate (the canonical form [`Predicate::simplify`]
    /// folds empty disjunctions and empty `In` sets into).
    Never,
    /// `attr = value`.
    Eq(AttrId, ValueId),
    /// `attr ∈ {values…}`.
    In(AttrId, Vec<ValueId>),
    /// `lo ≤ attr ≤ hi` (inclusive, over the domain's dictionary order).
    Range(AttrId, ValueId, ValueId),
    /// Conjunction (empty = true).
    And(Vec<Predicate>),
    /// Disjunction (empty = false).
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// The always-true predicate.
    pub fn any() -> Self {
        Self::Any
    }

    /// The always-false predicate.
    pub fn never() -> Self {
        Self::Never
    }

    /// `attr = value`.
    pub fn eq(attr: AttrId, value: ValueId) -> Self {
        Self::Eq(attr, value)
    }

    /// `attr ∈ values`. An empty set is the always-false predicate.
    pub fn is_in(attr: AttrId, values: impl IntoIterator<Item = ValueId>) -> Self {
        Self::In(attr, values.into_iter().collect())
    }

    /// `lo ≤ attr ≤ hi`, inclusive on both ends, over the value-index
    /// order of the attribute's dictionary.
    pub fn range(attr: AttrId, lo: ValueId, hi: ValueId) -> Self {
        Self::Range(attr, lo, hi)
    }

    /// Conjunction of `self` and `other`, flattening nested [`Predicate::And`]s.
    #[must_use]
    pub fn and(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Self::Never, _) | (_, Self::Never) => Self::Never,
            (Self::Any, o) => o,
            (s, Self::Any) => s,
            (Self::And(mut xs), Self::And(ys)) => {
                xs.extend(ys);
                Self::And(xs)
            }
            (Self::And(mut xs), o) => {
                xs.push(o);
                Self::And(xs)
            }
            (s, Self::And(ys)) => {
                let mut xs = vec![s];
                xs.extend(ys);
                Self::And(xs)
            }
            (s, o) => Self::And(vec![s, o]),
        }
    }

    /// Disjunction of `self` and `other`, flattening nested [`Predicate::Or`]s.
    #[must_use]
    pub fn or(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Self::Any, _) | (_, Self::Any) => Self::Any,
            (Self::Never, o) => o,
            (s, Self::Never) => s,
            (Self::Or(mut xs), Self::Or(ys)) => {
                xs.extend(ys);
                Self::Or(xs)
            }
            (Self::Or(mut xs), o) => {
                xs.push(o);
                Self::Or(xs)
            }
            (s, Self::Or(ys)) => {
                let mut xs = vec![s];
                xs.extend(ys);
                Self::Or(xs)
            }
            (s, o) => Self::Or(vec![s, o]),
        }
    }

    /// Logical negation.
    #[must_use]
    pub fn negate(self) -> Predicate {
        match self {
            Self::Not(inner) => *inner,
            p => Self::Not(Box::new(p)),
        }
    }

    /// Compatibility builder from the pre-algebra conjunctive-equality API:
    /// `Predicate::any().and_eq(a, v).and_eq(b, w)` builds `a=v ∧ b=w`.
    #[must_use]
    pub fn and_eq(self, attr: AttrId, value: ValueId) -> Self {
        self.and(Self::Eq(attr, value))
    }

    /// The attributes the predicate reads.
    pub fn attrs(&self) -> AttrMask {
        match self {
            Self::Any | Self::Never => AttrMask::EMPTY,
            Self::Eq(a, _) | Self::In(a, _) | Self::Range(a, _, _) => AttrMask::single(*a),
            Self::And(ps) | Self::Or(ps) => {
                ps.iter().fold(AttrMask::EMPTY, |m, p| m.union(p.attrs()))
            }
            Self::Not(p) => p.attrs(),
        }
    }

    /// Rewrites the predicate into a canonical form without changing its
    /// meaning on any tuple (complete, partial or columnar):
    ///
    /// * `Not(Not(p))` collapses to `simplify(p)`; `Not(Any)` / `Not(Never)`
    ///   fold to `Never` / `Any`;
    /// * empty connectives fold to their identity — `And([])` to
    ///   [`Predicate::Any`], `Or([])` to [`Predicate::Never`] — and
    ///   single-element connectives unwrap;
    /// * nested `And` / `Or` flatten, identity elements (`Any` in ∧,
    ///   `Never` in ∨) disappear, absorbing elements (`Never` in ∧, `Any`
    ///   in ∨) short-circuit the whole connective;
    /// * membership tests canonicalize: `In` sets sort and dedup, an empty
    ///   set is `Never`, a singleton becomes `Eq`, and sibling `Eq` / `In`
    ///   terms over the same attribute inside one `Or` merge into a single
    ///   `In`.
    ///
    /// The planner runs this once per query so classification and predicate
    /// compilation see canonical trees.
    #[must_use]
    pub fn simplify(&self) -> Predicate {
        match self {
            Self::Any => Self::Any,
            Self::Never => Self::Never,
            Self::Eq(a, v) => Self::Eq(*a, *v),
            Self::In(a, vs) => {
                let mut vs = vs.clone();
                vs.sort_unstable();
                vs.dedup();
                match vs.len() {
                    0 => Self::Never,
                    1 => Self::Eq(*a, vs[0]),
                    _ => Self::In(*a, vs),
                }
            }
            Self::Range(a, lo, hi) => {
                if lo > hi {
                    Self::Never
                } else if lo == hi {
                    Self::Eq(*a, *lo)
                } else {
                    Self::Range(*a, *lo, *hi)
                }
            }
            Self::And(ps) => {
                let mut flat = Vec::new();
                for p in ps {
                    match p.simplify() {
                        Self::Any => {}
                        Self::Never => return Self::Never,
                        Self::And(qs) => flat.extend(qs),
                        q => flat.push(q),
                    }
                }
                match flat.len() {
                    0 => Self::Any,
                    1 => flat.pop().expect("one element"),
                    _ => Self::And(flat),
                }
            }
            Self::Or(ps) => {
                let mut flat = Vec::new();
                for p in ps {
                    match p.simplify() {
                        Self::Never => {}
                        Self::Any => return Self::Any,
                        Self::Or(qs) => flat.extend(qs),
                        q => flat.push(q),
                    }
                }
                let flat = merge_membership_terms(flat);
                match flat.len() {
                    0 => Self::Never,
                    1 => flat.into_iter().next().expect("one element"),
                    _ => Self::Or(flat),
                }
            }
            Self::Not(p) => match p.simplify() {
                Self::Not(inner) => *inner,
                Self::Any => Self::Never,
                Self::Never => Self::Any,
                q => Self::Not(Box::new(q)),
            },
        }
    }

    /// Evaluates the predicate on a complete tuple.
    pub fn eval(&self, t: &CompleteTuple) -> bool {
        match self {
            Self::Any => true,
            Self::Never => false,
            Self::Eq(a, v) => t.value(*a) == *v,
            Self::In(a, vs) => vs.contains(&t.value(*a)),
            Self::Range(a, lo, hi) => {
                let v = t.value(*a);
                *lo <= v && v <= *hi
            }
            Self::And(ps) => ps.iter().all(|p| p.eval(t)),
            Self::Or(ps) => ps.iter().any(|p| p.eval(t)),
            Self::Not(p) => !p.eval(t),
        }
    }

    /// Three-valued evaluation on an incomplete tuple.
    ///
    /// `Some(b)` when the observed portion alone decides the predicate
    /// (every completion evaluates to `b`); `None` when the outcome
    /// depends on at least one missing attribute. Connectives use Kleene
    /// semantics, so e.g. an [`Predicate::Or`] with one observed-true arm
    /// is decided even if other arms touch missing attributes.
    pub fn eval_partial(&self, t: &PartialTuple) -> Option<bool> {
        match self {
            Self::Any => Some(true),
            Self::Never => Some(false),
            Self::Eq(a, v) => t.get(*a).map(|x| x == *v),
            Self::In(a, vs) => t.get(*a).map(|x| vs.contains(&x)),
            Self::Range(a, lo, hi) => t.get(*a).map(|x| *lo <= x && x <= *hi),
            Self::And(ps) => {
                // The empty conjunction is the always-true predicate even on
                // an incomplete tuple: with no conjunct to depend on a
                // missing attribute, every completion satisfies it. Decided,
                // never `None` — lazy derivation relies on this to skip
                // inference.
                if ps.is_empty() {
                    return Some(true);
                }
                let mut all_true = true;
                for p in ps {
                    match p.eval_partial(t) {
                        Some(false) => return Some(false),
                        Some(true) => {}
                        None => all_true = false,
                    }
                }
                if all_true {
                    Some(true)
                } else {
                    None
                }
            }
            Self::Or(ps) => {
                let mut all_false = true;
                for p in ps {
                    match p.eval_partial(t) {
                        Some(true) => return Some(true),
                        Some(false) => {}
                        None => all_false = false,
                    }
                }
                if all_false {
                    Some(false)
                } else {
                    None
                }
            }
            Self::Not(p) => p.eval_partial(t).map(|b| !b),
        }
    }

    /// Vectorized evaluation: one bit per row of `set`, bit-identical to
    /// [`Predicate::eval`] on the corresponding tuples.
    pub fn eval_columns(&self, set: &ColumnSet) -> Bitmap {
        match self {
            Self::Any => Bitmap::ones(set.rows()),
            Self::Never => Bitmap::zeros(set.rows()),
            Self::Eq(a, v) => Bitmap::from_test(set.col(*a), |x| x == v.0),
            Self::In(a, vs) => {
                let len = vs.iter().map(|v| v.0 as usize + 1).max().unwrap_or(0);
                let mut lut = vec![false; len];
                for v in vs {
                    lut[v.0 as usize] = true;
                }
                Bitmap::from_test(set.col(*a), |x| (x as usize) < len && lut[x as usize])
            }
            Self::Range(a, lo, hi) => {
                let (lo, hi) = (lo.0, hi.0);
                Bitmap::from_test(set.col(*a), |x| lo <= x && x <= hi)
            }
            Self::And(ps) => {
                let mut acc = Bitmap::ones(set.rows());
                for p in ps {
                    acc.and_assign(&p.eval_columns(set));
                }
                acc
            }
            Self::Or(ps) => {
                let mut acc = Bitmap::zeros(set.rows());
                for p in ps {
                    acc.or_assign(&p.eval_columns(set));
                }
                acc
            }
            Self::Not(p) => {
                let mut acc = p.eval_columns(set);
                acc.not_assign();
                acc
            }
        }
    }
}

/// Merges sibling membership terms of one disjunction: `Eq`/`In` terms over
/// the same attribute combine into a single sorted, deduped `In` (or `Eq`
/// when a single value remains). Non-membership terms pass through in
/// order; the merged membership term takes the position of the first term
/// mentioning its attribute.
fn merge_membership_terms(terms: Vec<Predicate>) -> Vec<Predicate> {
    use std::collections::BTreeMap;
    let mut sets: BTreeMap<AttrId, Vec<ValueId>> = BTreeMap::new();
    for t in &terms {
        match t {
            Predicate::Eq(a, v) => sets.entry(*a).or_default().push(*v),
            Predicate::In(a, vs) => sets.entry(*a).or_default().extend(vs.iter().copied()),
            _ => {}
        }
    }
    let mut emitted: Vec<AttrId> = Vec::new();
    let mut out = Vec::with_capacity(terms.len());
    for t in terms {
        match t {
            Predicate::Eq(a, _) | Predicate::In(a, _) => {
                if emitted.contains(&a) {
                    continue;
                }
                emitted.push(a);
                let mut vs = sets.remove(&a).expect("collected above");
                vs.sort_unstable();
                vs.dedup();
                out.push(if vs.len() == 1 {
                    Predicate::Eq(a, vs[0])
                } else {
                    Predicate::In(a, vs)
                });
            }
            other => out.push(other),
        }
    }
    out
}

// Manual serde impls: the vendored derive does not support data-carrying
// enum variants, so predicates encode as `{"op": …}`-tagged objects.
impl Serialize for Predicate {
    fn to_value(&self) -> Value {
        fn obj(fields: Vec<(&str, Value)>) -> Value {
            Value::Object(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            )
        }
        match self {
            Self::Any => obj(vec![("op", Value::from("any"))]),
            Self::Never => obj(vec![("op", Value::from("never"))]),
            Self::Eq(a, v) => obj(vec![
                ("op", Value::from("eq")),
                ("attr", a.to_value()),
                ("value", v.to_value()),
            ]),
            Self::In(a, vs) => obj(vec![
                ("op", Value::from("in")),
                ("attr", a.to_value()),
                ("values", vs.to_value()),
            ]),
            Self::Range(a, lo, hi) => obj(vec![
                ("op", Value::from("range")),
                ("attr", a.to_value()),
                ("lo", lo.to_value()),
                ("hi", hi.to_value()),
            ]),
            Self::And(ps) => obj(vec![("op", Value::from("and")), ("args", ps.to_value())]),
            Self::Or(ps) => obj(vec![("op", Value::from("or")), ("args", ps.to_value())]),
            Self::Not(p) => obj(vec![("op", Value::from("not")), ("arg", p.to_value())]),
        }
    }
}

impl Deserialize for Predicate {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let op = v
            .field("op")?
            .as_str()
            .ok_or_else(|| DeError::new("predicate op must be a string"))?;
        Ok(match op {
            "any" => Self::Any,
            "never" => Self::Never,
            "eq" => Self::Eq(
                Deserialize::from_value(v.field("attr")?)?,
                Deserialize::from_value(v.field("value")?)?,
            ),
            "in" => Self::In(
                Deserialize::from_value(v.field("attr")?)?,
                Deserialize::from_value(v.field("values")?)?,
            ),
            "range" => Self::Range(
                Deserialize::from_value(v.field("attr")?)?,
                Deserialize::from_value(v.field("lo")?)?,
                Deserialize::from_value(v.field("hi")?)?,
            ),
            "and" => Self::And(Deserialize::from_value(v.field("args")?)?),
            "or" => Self::Or(Deserialize::from_value(v.field("args")?)?),
            "not" => Self::Not(Box::new(Deserialize::from_value(v.field("arg")?)?)),
            other => return Err(DeError::new(format!("unknown predicate op `{other}`"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(slots: &[Option<u16>]) -> PartialTuple {
        PartialTuple::from_options(slots)
    }

    #[test]
    fn builders_flatten_connectives() {
        let p = Predicate::any()
            .and_eq(AttrId(0), ValueId(1))
            .and_eq(AttrId(1), ValueId(2));
        assert_eq!(
            p,
            Predicate::And(vec![
                Predicate::Eq(AttrId(0), ValueId(1)),
                Predicate::Eq(AttrId(1), ValueId(2)),
            ])
        );
        let q = Predicate::eq(AttrId(0), ValueId(0))
            .or(Predicate::eq(AttrId(0), ValueId(1)))
            .or(Predicate::eq(AttrId(0), ValueId(2)));
        assert!(matches!(&q, Predicate::Or(ps) if ps.len() == 3));
        // `Any` is the identity of ∧ and absorbing for ∨.
        assert_eq!(Predicate::any().and(q.clone()), q);
        assert_eq!(q.clone().or(Predicate::any()), Predicate::Any);
        // Double negation cancels.
        assert_eq!(q.clone().negate().negate(), q);
    }

    #[test]
    fn eval_covers_all_constructors() {
        let t = CompleteTuple::from_values(vec![2, 0, 1]);
        assert!(Predicate::any().eval(&t));
        assert!(Predicate::eq(AttrId(0), ValueId(2)).eval(&t));
        assert!(!Predicate::eq(AttrId(0), ValueId(1)).eval(&t));
        assert!(Predicate::is_in(AttrId(0), [ValueId(1), ValueId(2)]).eval(&t));
        assert!(!Predicate::is_in(AttrId(0), []).eval(&t));
        assert!(Predicate::range(AttrId(0), ValueId(1), ValueId(3)).eval(&t));
        assert!(!Predicate::range(AttrId(0), ValueId(0), ValueId(1)).eval(&t));
        assert!(Predicate::eq(AttrId(1), ValueId(0))
            .and(Predicate::eq(AttrId(2), ValueId(1)))
            .eval(&t));
        assert!(Predicate::eq(AttrId(1), ValueId(9))
            .or(Predicate::eq(AttrId(2), ValueId(1)))
            .eval(&t));
        assert!(Predicate::eq(AttrId(1), ValueId(9)).negate().eval(&t));
    }

    #[test]
    fn partial_eval_is_kleene() {
        // t = ⟨0, ?, 1⟩
        let t = pt(&[Some(0), None, Some(1)]);
        assert_eq!(
            Predicate::eq(AttrId(0), ValueId(0)).eval_partial(&t),
            Some(true)
        );
        assert_eq!(Predicate::eq(AttrId(1), ValueId(0)).eval_partial(&t), None);
        // Decided OR despite a missing arm.
        let or = Predicate::eq(AttrId(0), ValueId(0)).or(Predicate::eq(AttrId(1), ValueId(1)));
        assert_eq!(or.eval_partial(&t), Some(true));
        // Decided AND (false) despite a missing arm.
        let and = Predicate::eq(AttrId(2), ValueId(0)).and(Predicate::eq(AttrId(1), ValueId(1)));
        assert_eq!(and.eval_partial(&t), Some(false));
        // Undecided either way.
        let und = Predicate::eq(AttrId(2), ValueId(1)).and(Predicate::eq(AttrId(1), ValueId(1)));
        assert_eq!(und.eval_partial(&t), None);
        assert_eq!(und.negate().eval_partial(&t), None);
        // NOT flips decided values.
        assert_eq!(
            Predicate::eq(AttrId(0), ValueId(0))
                .negate()
                .eval_partial(&t),
            Some(false)
        );
    }

    #[test]
    fn never_is_false_on_every_path() {
        let t = CompleteTuple::from_values(vec![0, 1]);
        assert!(!Predicate::never().eval(&t));
        assert_eq!(
            Predicate::never().eval_partial(&pt(&[None, None])),
            Some(false)
        );
        assert!(Predicate::never().attrs().is_empty());
        // ∧/∨ builders treat it as absorbing / identity.
        let p = Predicate::eq(AttrId(0), ValueId(0));
        assert_eq!(p.clone().and(Predicate::never()), Predicate::Never);
        assert_eq!(Predicate::never().or(p.clone()), p);
    }

    #[test]
    fn simplify_folds_empty_connectives() {
        assert_eq!(Predicate::And(vec![]).simplify(), Predicate::Any);
        assert_eq!(Predicate::Or(vec![]).simplify(), Predicate::Never);
        assert_eq!(Predicate::is_in(AttrId(0), []).simplify(), Predicate::Never);
        // Identity and absorbing elements propagate upward.
        let p = Predicate::eq(AttrId(0), ValueId(1));
        assert_eq!(
            Predicate::And(vec![Predicate::Any, p.clone()]).simplify(),
            p
        );
        assert_eq!(
            Predicate::And(vec![p.clone(), Predicate::Or(vec![])]).simplify(),
            Predicate::Never
        );
        assert_eq!(
            Predicate::Or(vec![p.clone(), Predicate::Any]).simplify(),
            Predicate::Any
        );
        assert_eq!(
            Predicate::Or(vec![Predicate::Never, p.clone()]).simplify(),
            p
        );
    }

    #[test]
    fn simplify_collapses_negations_and_flattens() {
        let p = Predicate::eq(AttrId(1), ValueId(0));
        assert_eq!(
            Predicate::Not(Box::new(Predicate::Not(Box::new(p.clone())))).simplify(),
            p
        );
        assert_eq!(
            Predicate::Not(Box::new(Predicate::Any)).simplify(),
            Predicate::Never
        );
        assert_eq!(
            Predicate::Not(Box::new(Predicate::Or(vec![]))).simplify(),
            Predicate::Any
        );
        // Nested conjunctions flatten into one level.
        let nested = Predicate::And(vec![
            Predicate::And(vec![p.clone(), Predicate::eq(AttrId(0), ValueId(0))]),
            Predicate::And(vec![Predicate::eq(AttrId(2), ValueId(1))]),
        ]);
        assert!(matches!(nested.simplify(), Predicate::And(qs) if qs.len() == 3));
    }

    #[test]
    fn simplify_merges_membership_sets() {
        // v2 ∨ (v0|v1) ∨ v0 over one attribute → In {v0, v1, v2}.
        let p = Predicate::eq(AttrId(0), ValueId(2))
            .or(Predicate::is_in(AttrId(0), [ValueId(0), ValueId(1)]))
            .or(Predicate::eq(AttrId(0), ValueId(0)));
        assert_eq!(
            p.simplify(),
            Predicate::In(AttrId(0), vec![ValueId(0), ValueId(1), ValueId(2)])
        );
        // Different attributes stay separate; singleton In becomes Eq.
        let q = Predicate::is_in(AttrId(0), [ValueId(1), ValueId(1)])
            .or(Predicate::eq(AttrId(1), ValueId(0)));
        assert_eq!(
            q.simplify(),
            Predicate::Or(vec![
                Predicate::Eq(AttrId(0), ValueId(1)),
                Predicate::Eq(AttrId(1), ValueId(0)),
            ])
        );
        // Degenerate and inverted ranges canonicalize.
        assert_eq!(
            Predicate::range(AttrId(0), ValueId(1), ValueId(1)).simplify(),
            Predicate::Eq(AttrId(0), ValueId(1))
        );
        assert_eq!(
            Predicate::range(AttrId(0), ValueId(2), ValueId(1)).simplify(),
            Predicate::Never
        );
    }

    #[test]
    fn simplify_preserves_meaning() {
        let preds = vec![
            Predicate::And(vec![]),
            Predicate::Or(vec![]),
            Predicate::is_in(AttrId(0), []).negate(),
            Predicate::eq(AttrId(0), ValueId(2))
                .or(Predicate::is_in(AttrId(0), [ValueId(0), ValueId(1)]))
                .negate()
                .negate(),
            Predicate::And(vec![
                Predicate::Any,
                Predicate::Or(vec![
                    Predicate::range(AttrId(1), ValueId(1), ValueId(0)),
                    Predicate::eq(AttrId(2), ValueId(1)),
                ]),
            ]),
        ];
        let tuples: Vec<CompleteTuple> = (0..3u16)
            .flat_map(|a| (0..3u16).map(move |b| CompleteTuple::from_values(vec![a, b, a.min(1)])))
            .collect();
        for p in &preds {
            let s = p.simplify();
            for t in &tuples {
                assert_eq!(p.eval(t), s.eval(t), "{p:?} vs {s:?} on {t:?}");
            }
            // Simplification is idempotent.
            assert_eq!(s.simplify(), s);
        }
    }

    #[test]
    fn empty_conjunction_is_decided_on_incomplete_tuples() {
        // Regression: And([]) ≡ Any must be Some(true) on a tuple with
        // missing attributes, not None — lazy derivation skips on it.
        let t = pt(&[None, None, None]);
        assert_eq!(Predicate::And(vec![]).eval_partial(&t), Some(true));
        assert_eq!(
            Predicate::And(vec![Predicate::And(vec![])]).eval_partial(&t),
            Some(true)
        );
    }

    #[test]
    fn attrs_unions_referenced_attributes() {
        let p = Predicate::eq(AttrId(0), ValueId(0))
            .or(Predicate::range(AttrId(2), ValueId(0), ValueId(1)))
            .negate();
        let attrs: Vec<u16> = p.attrs().iter().map(|a| a.0).collect();
        assert_eq!(attrs, vec![0, 2]);
        assert!(Predicate::any().attrs().is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let p = Predicate::is_in(AttrId(1), [ValueId(0), ValueId(2)])
            .and(Predicate::range(AttrId(2), ValueId(1), ValueId(3)).negate())
            .or(Predicate::eq(AttrId(0), ValueId(5)));
        let text = serde_json::to_string(&p).unwrap();
        let back: Predicate = serde_json::from_str(&text).unwrap();
        assert_eq!(back, p);
    }
}
