//! Composable relational-algebra query trees over a [`Catalog`].
//!
//! [`Query`] gives the planner a tree it can classify structurally:
//! scans of named relations, selections
//! ([`Predicate`]), equi-joins on dictionary-encoded attributes, and a
//! bag-semantics projection. Trees are built fluently —
//!
//! ```
//! use mrsl_probdb::{Predicate, Query};
//! use mrsl_relation::{AttrId, ValueId};
//!
//! let q = Query::scan("sensors")
//!     .filter(Predicate::eq(AttrId(1), ValueId(0)))
//!     .join_on("readings", [(AttrId(0), AttrId(0))])
//!     .project([AttrId(0)]);
//! assert_eq!(q.relations(), vec!["sensors", "readings"]);
//! ```
//!
//! — and evaluated by [`crate::plan::CatalogEngine`], which classifies the
//! shape (hierarchical join structures get exact extensional plans,
//! everything else goes Monte Carlo) and answers a [`Statistic`] about the
//! result.
//!
//! Two deliberate restrictions keep resolution unambiguous: selections
//! apply to single-relation subtrees (push your σ below the ⨝, as a
//! planner would anyway), and every scan must be addressable by a unique
//! name. Scanning one relation twice — a self-join — is admitted through
//! [`Query::scan_as`] aliases (`R(x) ⋈ R(y)` becomes two aliased scans of
//! `r`); the planner knows aliased scans of one relation share their block
//! choices and answers them with dissociation bounds or sampling, never
//! the independent-product safe plan. Two scans under the *same* name are
//! still rejected ([`ProbDbError::SelfJoin`]) because join anchors and
//! reports address terms by name.
//!
//! [`Catalog`]: crate::catalog::Catalog

use crate::predicate::Predicate;
use crate::ProbDbError;
use mrsl_relation::{AttrId, AttrMask};

/// One node of a relational-algebra tree. Public so planners and tools can
/// pattern-match on the shape; built through the [`Query`] methods.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryNode {
    /// Scan of a named catalog relation.
    Scan {
        /// Relation name, resolved against the catalog at plan time.
        relation: String,
        /// Alias this scan is addressed by in join anchors and reports;
        /// `None` means the relation name itself. Distinct aliases let one
        /// relation be scanned several times (self-joins).
        alias: Option<String>,
    },
    /// Selection over a single-relation subtree.
    Filter {
        /// The filtered input.
        input: Box<QueryNode>,
        /// The selection predicate, over the scanned relation's attributes.
        pred: Predicate,
    },
    /// Equi-join of two subtrees on one or more attribute pairs.
    Join {
        /// Left input (the tree built so far).
        left: Box<QueryNode>,
        /// Right input (usually a scan).
        right: Box<QueryNode>,
        /// Join conditions; every pair must be dictionary-compatible.
        on: Vec<JoinPair>,
    },
    /// Bag-semantics projection (presentation metadata: it renames no
    /// columns and, without duplicate elimination, changes no counts).
    Project {
        /// The projected input.
        input: Box<QueryNode>,
        /// Attributes of the query's primary (first-scanned) relation to
        /// report.
        attrs: Vec<AttrId>,
    },
}

/// One equi-join condition `left.left_attr = right.right_attr`.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinPair {
    /// Which scan of the left subtree anchors `left_attr`, addressed by
    /// its name (the relation name, or the [`Query::scan_as`] alias);
    /// `None` means the subtree's primary (first-scanned) relation.
    pub left_rel: Option<String>,
    /// The left-side join attribute.
    pub left_attr: AttrId,
    /// The right-side join attribute, anchored to the right subtree's
    /// primary relation.
    pub right_attr: AttrId,
}

/// What to compute about a query's result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Statistic {
    /// `P(result is non-empty)` — the boolean-query probability the
    /// safe-plan literature is about.
    Probability,
    /// Guaranteed `[lower, upper]` brackets on `P(result is non-empty)`.
    /// Safe queries collapse to the exact point; unsafe shapes get
    /// deterministic dissociation bounds (Gatterbauer & Suciu) where they
    /// apply, with Monte-Carlo refinement when the bracket is wider than
    /// [`crate::QueryEngineConfig::bounds_tolerance`].
    ProbabilityBounds,
    /// `E[|result|]` under bag semantics.
    ExpectedCount,
    /// Distribution of `|result|` over possible worlds.
    CountDistribution,
    /// Per-block selection marginals (single-relation queries only).
    Marginals,
    /// The `k` most probable matching tuples (single-relation only).
    TopK(usize),
    /// Marginal distribution of one attribute (single-relation only).
    ValueMarginal(AttrId),
}

impl Statistic {
    /// Short name used in errors and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Probability => "probability",
            Self::ProbabilityBounds => "probability-bounds",
            Self::ExpectedCount => "expected-count",
            Self::CountDistribution => "count-distribution",
            Self::Marginals => "marginals",
            Self::TopK(_) => "top-k",
            Self::ValueMarginal(_) => "value-marginal",
        }
    }
}

/// A composable relational-algebra query over catalog relations.
///
/// ```
/// use mrsl_probdb::{Predicate, Query};
/// use mrsl_relation::{AttrId, ValueId};
///
/// // σ[kind=outdoor](sensors) ⨝ σ[level=high](readings) on the station id.
/// let q = Query::scan("sensors")
///     .filter(Predicate::eq(AttrId(1), ValueId(1)))
///     .join_on(
///         Query::scan("readings").filter(Predicate::eq(AttrId(1), ValueId(1))),
///         [(AttrId(0), AttrId(0))],
///     );
/// assert_eq!(q.relations(), vec!["sensors", "readings"]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    root: QueryNode,
}

impl Query {
    /// Starts a query with a scan of the named relation.
    pub fn scan(relation: impl Into<String>) -> Self {
        Self {
            root: QueryNode::Scan {
                relation: relation.into(),
                alias: None,
            },
        }
    }

    /// Starts a query with an *aliased* scan of the named relation —
    /// the only way to scan one relation more than once (self-joins).
    /// Join anchors ([`Query::join_on_rel`]) and evaluation reports
    /// address this scan by `alias`.
    ///
    /// ```
    /// use mrsl_probdb::Query;
    /// use mrsl_relation::AttrId;
    ///
    /// // R ⋈ R on its own key, as two aliased scans.
    /// let q = Query::scan_as("r", "r1")
    ///     .join_on(Query::scan_as("r", "r2"), [(AttrId(0), AttrId(0))]);
    /// assert_eq!(q.relations(), vec!["r", "r"]);
    /// ```
    pub fn scan_as(relation: impl Into<String>, alias: impl Into<String>) -> Self {
        Self {
            root: QueryNode::Scan {
                relation: relation.into(),
                alias: Some(alias.into()),
            },
        }
    }

    /// Applies a selection to the tree built so far. Selections must sit
    /// over a single-relation subtree (resolution rejects a filter above a
    /// join with [`ProbDbError::FilterAboveJoin`]).
    #[must_use]
    pub fn filter(self, pred: Predicate) -> Self {
        Self {
            root: QueryNode::Filter {
                input: Box::new(self.root),
                pred,
            },
        }
    }

    /// Joins the tree built so far with `right` on `(left, right)`
    /// attribute pairs. `right` can be a relation name (via `Into<Query>`
    /// for `&str`/`String`) or a filtered subtree; left attributes anchor
    /// to the current tree's primary (first-scanned) relation.
    #[must_use]
    pub fn join_on(
        self,
        right: impl Into<Query>,
        on: impl IntoIterator<Item = (AttrId, AttrId)>,
    ) -> Self {
        let on = on
            .into_iter()
            .map(|(left_attr, right_attr)| JoinPair {
                left_rel: None,
                left_attr,
                right_attr,
            })
            .collect();
        self.join_pairs(right.into(), on)
    }

    /// Like [`Query::join_on`], but anchors the left attributes to the
    /// named relation of the current tree instead of the primary one —
    /// needed for chains like `r ⨝ s ⨝ t` where `t` joins against `s`.
    #[must_use]
    pub fn join_on_rel(
        self,
        left_rel: impl Into<String>,
        right: impl Into<Query>,
        on: impl IntoIterator<Item = (AttrId, AttrId)>,
    ) -> Self {
        let left_rel = left_rel.into();
        let on = on
            .into_iter()
            .map(|(left_attr, right_attr)| JoinPair {
                left_rel: Some(left_rel.clone()),
                left_attr,
                right_attr,
            })
            .collect();
        self.join_pairs(right.into(), on)
    }

    /// The fully explicit join constructor.
    #[must_use]
    pub fn join_pairs(self, right: Query, on: Vec<JoinPair>) -> Self {
        Self {
            root: QueryNode::Join {
                left: Box::new(self.root),
                right: Box::new(right.root),
                on,
            },
        }
    }

    /// Records a bag-semantics projection onto `attrs` of the primary
    /// relation. Metadata only: probabilities and (bag) counts are
    /// unchanged, so the planner carries it into reports but ignores it
    /// during evaluation.
    #[must_use]
    pub fn project(self, attrs: impl IntoIterator<Item = AttrId>) -> Self {
        Self {
            root: QueryNode::Project {
                input: Box::new(self.root),
                attrs: attrs.into_iter().collect(),
            },
        }
    }

    /// The root node of the tree.
    pub fn root(&self) -> &QueryNode {
        &self.root
    }

    /// The scanned relation names in scan order (the first is the query's
    /// *primary* relation). A relation scanned under several aliases
    /// appears once per scan; duplicates *without* distinct aliases are
    /// rejected at resolution.
    pub fn relations(&self) -> Vec<&str> {
        fn collect<'a>(node: &'a QueryNode, out: &mut Vec<&'a str>) {
            match node {
                QueryNode::Scan { relation, .. } => out.push(relation),
                QueryNode::Filter { input, .. } | QueryNode::Project { input, .. } => {
                    collect(input, out)
                }
                QueryNode::Join { left, right, .. } => {
                    collect(left, out);
                    collect(right, out);
                }
            }
        }
        let mut out = Vec::new();
        collect(&self.root, &mut out);
        out
    }

    /// Flattens the tree into its conjunctive form: one term per scan with
    /// its combined selection, resolved join pairs, and the projection.
    /// This is the shared front half of planning and of lazy per-relation
    /// derivation triage.
    pub(crate) fn flatten(&self) -> Result<Flattened, ProbDbError> {
        let mut flat = Flattened {
            terms: Vec::new(),
            joins: Vec::new(),
            projection: None,
        };
        walk(&self.root, &mut flat)?;
        Ok(flat)
    }

    /// What each scanned relation must provide for this query: its
    /// combined selection predicate (already [simplified](Predicate::simplify))
    /// and the attributes it is joined on. Lazy derivation uses this to
    /// decide which incomplete tuples actually need inference.
    ///
    /// Aliased scans of one relation collapse into a single requirement
    /// for that relation: a tuple matters when it can satisfy *any* of the
    /// aliases' selections (the predicates are OR-ed), and every alias's
    /// join attributes are needed.
    pub fn scan_requirements(&self) -> Result<Vec<ScanRequirement>, ProbDbError> {
        let flat = self.flatten()?;
        let mut per_term: Vec<ScanRequirement> = flat
            .terms
            .iter()
            .map(|t| {
                let pred = t.pred.simplify();
                ScanRequirement {
                    relation: t.relation.clone(),
                    pred: pred.clone(),
                    scan_preds: vec![pred],
                    join_attrs: AttrMask::EMPTY,
                }
            })
            .collect();
        for j in &flat.joins {
            per_term[j.left_term].join_attrs = per_term[j.left_term].join_attrs.with(j.left_attr);
            per_term[j.right_term].join_attrs =
                per_term[j.right_term].join_attrs.with(j.right_attr);
        }
        let mut reqs: Vec<ScanRequirement> = Vec::with_capacity(per_term.len());
        for mut req in per_term {
            match reqs.iter_mut().find(|r| r.relation == req.relation) {
                Some(merged) => {
                    merged.pred = std::mem::replace(&mut merged.pred, Predicate::Any)
                        .or(req.pred)
                        .simplify();
                    merged.scan_preds.append(&mut req.scan_preds);
                    merged.join_attrs = merged.join_attrs.union(req.join_attrs);
                }
                None => reqs.push(req),
            }
        }
        Ok(reqs)
    }
}

impl From<&str> for Query {
    fn from(relation: &str) -> Self {
        Query::scan(relation)
    }
}

impl From<String> for Query {
    fn from(relation: String) -> Self {
        Query::scan(relation)
    }
}

/// What one scan contributes to a query: its relation, the conjunction of
/// all selections applied to it, and the attributes it joins on.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanRequirement {
    /// The scanned relation's name.
    pub relation: String,
    /// Combined (simplified) selection predicate over the relation: the
    /// OR across this relation's scans. A tuple that cannot satisfy it
    /// matters to no scan.
    pub pred: Predicate,
    /// The individual scans' (simplified) selection predicates, one per
    /// alias. Deciding a tuple's effect on the query *fully* — e.g. to
    /// pin it without inference — requires every entry to be decided on
    /// it: Kleene's OR in [`ScanRequirement::pred`] can be true while
    /// some alias's selection still hinges on an unobserved attribute.
    pub scan_preds: Vec<Predicate>,
    /// Attributes of this relation used as join keys.
    pub join_attrs: AttrMask,
}

impl Flattened {
    /// 64-bit fingerprint of the query *shape*: per-term scan names,
    /// relations and (raw, unsimplified) predicates, plus the resolved
    /// join pairs in flattening order. The projection is excluded — it
    /// never affects statistic evaluation. Used as the plan-cache probe
    /// key; because 64 bits can collide, cache entries keep the full
    /// flattened shape and verify structural equality on every hit.
    pub(crate) fn shape_hash(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = mrsl_util::FxHasher::default();
        self.terms.len().hash(&mut h);
        for t in &self.terms {
            t.name.hash(&mut h);
            t.relation.hash(&mut h);
            t.pred.hash(&mut h);
        }
        self.joins.len().hash(&mut h);
        for j in &self.joins {
            j.left_term.hash(&mut h);
            j.left_attr.0.hash(&mut h);
            j.right_term.hash(&mut h);
            j.right_attr.0.hash(&mut h);
        }
        h.finish()
    }
}

/// The conjunctive form of a query tree (internal planner currency).
#[derive(Debug, Clone)]
pub(crate) struct Flattened {
    /// One term per scan, in scan order; term 0 is the primary relation.
    pub terms: Vec<ScanTerm>,
    /// Resolved equi-join conditions between terms.
    pub joins: Vec<ResolvedPair>,
    /// Projection attributes, if any (primary relation, bag semantics).
    pub projection: Option<Vec<AttrId>>,
}

#[derive(Debug, Clone)]
pub(crate) struct ScanTerm {
    /// Catalog relation this scan reads.
    pub relation: String,
    /// Name the scan is addressed by: its alias, or the relation name.
    pub name: String,
    pub pred: Predicate,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ResolvedPair {
    pub left_term: usize,
    pub left_attr: AttrId,
    pub right_term: usize,
    pub right_attr: AttrId,
}

/// Term indices contributed by one subtree, with its primary term first.
struct SubTerms {
    primary: usize,
    terms: Vec<usize>,
}

fn walk(node: &QueryNode, out: &mut Flattened) -> Result<SubTerms, ProbDbError> {
    match node {
        QueryNode::Scan { relation, alias } => {
            let name = alias.as_ref().unwrap_or(relation);
            // Scans are addressed by name (anchors, labels, reports): a
            // duplicate name — an alias-less self-join included — is
            // unresolvable.
            if out.terms.iter().any(|t| t.name == *name) {
                return Err(ProbDbError::SelfJoin(name.clone()));
            }
            let idx = out.terms.len();
            out.terms.push(ScanTerm {
                relation: relation.clone(),
                name: name.clone(),
                pred: Predicate::Any,
            });
            Ok(SubTerms {
                primary: idx,
                terms: vec![idx],
            })
        }
        QueryNode::Filter { input, pred } => {
            let sub = walk(input, out)?;
            if sub.terms.len() != 1 {
                return Err(ProbDbError::FilterAboveJoin);
            }
            let term = &mut out.terms[sub.primary];
            term.pred = std::mem::take(&mut term.pred).and(pred.clone());
            Ok(sub)
        }
        QueryNode::Join { left, right, on } => {
            if on.is_empty() {
                return Err(ProbDbError::EmptyJoinKeys);
            }
            let l = walk(left, out)?;
            let r = walk(right, out)?;
            for pair in on {
                let left_term = match &pair.left_rel {
                    None => l.primary,
                    Some(name) => *l
                        .terms
                        .iter()
                        .find(|&&t| out.terms[t].name == *name)
                        .ok_or_else(|| ProbDbError::JoinAnchorNotInLeft(name.clone()))?,
                };
                out.joins.push(ResolvedPair {
                    left_term,
                    left_attr: pair.left_attr,
                    right_term: r.primary,
                    right_attr: pair.right_attr,
                });
            }
            let mut terms = l.terms;
            terms.extend(r.terms);
            Ok(SubTerms {
                primary: l.primary,
                terms,
            })
        }
        QueryNode::Project { input, attrs } => {
            let sub = walk(input, out)?;
            out.projection = Some(attrs.clone());
            Ok(sub)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrsl_relation::ValueId;

    #[test]
    fn builder_shapes_and_relation_order() {
        let q = Query::scan("r")
            .filter(Predicate::eq(AttrId(0), ValueId(1)))
            .join_on("s", [(AttrId(1), AttrId(0))])
            .project([AttrId(0), AttrId(1)]);
        assert_eq!(q.relations(), vec!["r", "s"]);
        let flat = q.flatten().unwrap();
        assert_eq!(flat.terms.len(), 2);
        assert_eq!(flat.terms[0].pred, Predicate::eq(AttrId(0), ValueId(1)));
        assert_eq!(flat.terms[1].pred, Predicate::Any);
        assert_eq!(
            flat.joins,
            vec![ResolvedPair {
                left_term: 0,
                left_attr: AttrId(1),
                right_term: 1,
                right_attr: AttrId(0),
            }]
        );
        assert_eq!(flat.projection, Some(vec![AttrId(0), AttrId(1)]));
    }

    #[test]
    fn chained_join_anchors_to_named_relation() {
        // r ⨝ s on (r.0 = s.0), then t joins against *s* on (s.1 = t.0).
        let q = Query::scan("r")
            .join_on("s", [(AttrId(0), AttrId(0))])
            .join_on_rel("s", "t", [(AttrId(1), AttrId(0))]);
        let flat = q.flatten().unwrap();
        assert_eq!(flat.joins[1].left_term, 1);
        assert_eq!(flat.joins[1].right_term, 2);
        // Unknown anchors are rejected.
        let bad = Query::scan("r")
            .join_on_rel("nope", "s", [(AttrId(0), AttrId(0))])
            .flatten();
        assert!(matches!(bad, Err(ProbDbError::JoinAnchorNotInLeft(n)) if n == "nope"));
    }

    #[test]
    fn filters_merge_and_misplaced_shapes_error() {
        let q = Query::scan("r")
            .filter(Predicate::eq(AttrId(0), ValueId(0)))
            .filter(Predicate::eq(AttrId(1), ValueId(1)));
        let flat = q.flatten().unwrap();
        assert_eq!(
            flat.terms[0].pred,
            Predicate::eq(AttrId(0), ValueId(0)).and(Predicate::eq(AttrId(1), ValueId(1)))
        );
        let above_join = Query::scan("r")
            .join_on("s", [(AttrId(0), AttrId(0))])
            .filter(Predicate::any())
            .flatten();
        assert!(matches!(above_join, Err(ProbDbError::FilterAboveJoin)));
        let self_join = Query::scan("r")
            .join_on("r", [(AttrId(0), AttrId(0))])
            .flatten();
        assert!(matches!(self_join, Err(ProbDbError::SelfJoin(n)) if n == "r"));
        let no_keys = Query::scan("r")
            .join_pairs(Query::scan("s"), vec![])
            .flatten();
        assert!(matches!(no_keys, Err(ProbDbError::EmptyJoinKeys)));
    }

    #[test]
    fn aliased_scans_resolve_and_unaliased_self_joins_still_error() {
        // R(x) ⋈ R(y): two aliased scans of one relation flatten into two
        // terms addressed by their aliases.
        let q =
            Query::scan_as("r", "r1").join_on(Query::scan_as("r", "r2"), [(AttrId(0), AttrId(0))]);
        let flat = q.flatten().unwrap();
        assert_eq!(flat.terms.len(), 2);
        assert_eq!(flat.terms[0].relation, "r");
        assert_eq!(flat.terms[1].relation, "r");
        assert_eq!(flat.terms[0].name, "r1");
        assert_eq!(flat.terms[1].name, "r2");
        // Anchors address scans by alias.
        let chained = Query::scan_as("r", "r1")
            .join_on(Query::scan_as("r", "r2"), [(AttrId(0), AttrId(0))])
            .join_on_rel("r2", "s", [(AttrId(1), AttrId(0))])
            .flatten()
            .unwrap();
        assert_eq!(chained.joins[1].left_term, 1);
        // Without distinct aliases the old rejection still applies…
        let dup = Query::scan("r")
            .join_on("r", [(AttrId(0), AttrId(0))])
            .flatten();
        assert!(matches!(dup, Err(ProbDbError::SelfJoin(n)) if n == "r"));
        // …including two scans under one alias, or an alias shadowing a
        // scanned relation's name.
        let dup_alias = Query::scan_as("r", "x")
            .join_on(Query::scan_as("r", "x"), [(AttrId(0), AttrId(0))])
            .flatten();
        assert!(matches!(dup_alias, Err(ProbDbError::SelfJoin(n)) if n == "x"));
        let shadow = Query::scan("s")
            .join_on(Query::scan_as("r", "s"), [(AttrId(0), AttrId(0))])
            .flatten();
        assert!(matches!(shadow, Err(ProbDbError::SelfJoin(n)) if n == "s"));
    }

    #[test]
    fn aliased_scan_requirements_merge_per_relation() {
        let q = Query::scan_as("r", "r1")
            .filter(Predicate::eq(AttrId(1), ValueId(0)))
            .join_on(
                Query::scan_as("r", "r2").filter(Predicate::eq(AttrId(1), ValueId(1))),
                [(AttrId(0), AttrId(0))],
            );
        let reqs = q.scan_requirements().unwrap();
        // One requirement for `r`: either alias's selection can matter
        // (the OR of the two equalities simplifies to a membership set).
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].relation, "r");
        assert_eq!(
            reqs[0].pred,
            Predicate::is_in(AttrId(1), [ValueId(0), ValueId(1)])
        );
        assert_eq!(
            reqs[0].join_attrs.iter().collect::<Vec<_>>(),
            vec![AttrId(0)]
        );
    }

    #[test]
    fn scan_requirements_collect_predicates_and_join_attrs() {
        let q = Query::scan("r")
            .filter(Predicate::And(vec![])) // canonicalizes to Any
            .join_on(
                Query::scan("s").filter(Predicate::eq(AttrId(1), ValueId(0))),
                [(AttrId(2), AttrId(0))],
            );
        let reqs = q.scan_requirements().unwrap();
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].relation, "r");
        assert_eq!(reqs[0].pred, Predicate::Any);
        assert_eq!(
            reqs[0].join_attrs.iter().collect::<Vec<_>>(),
            vec![AttrId(2)]
        );
        assert_eq!(reqs[1].pred, Predicate::eq(AttrId(1), ValueId(0)));
        assert_eq!(
            reqs[1].join_attrs.iter().collect::<Vec<_>>(),
            vec![AttrId(0)]
        );
    }
}
