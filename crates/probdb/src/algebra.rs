//! Composable relational-algebra query trees over a [`Catalog`].
//!
//! [`Query`] replaces the flat `QuerySpec` enum with a tree the planner
//! can classify structurally: scans of named relations, selections
//! ([`Predicate`]), equi-joins on dictionary-encoded attributes, and a
//! bag-semantics projection. Trees are built fluently —
//!
//! ```
//! use mrsl_probdb::{Predicate, Query};
//! use mrsl_relation::{AttrId, ValueId};
//!
//! let q = Query::scan("sensors")
//!     .filter(Predicate::eq(AttrId(1), ValueId(0)))
//!     .join_on("readings", [(AttrId(0), AttrId(0))])
//!     .project([AttrId(0)]);
//! assert_eq!(q.relations(), vec!["sensors", "readings"]);
//! ```
//!
//! — and evaluated by [`crate::plan::CatalogEngine`], which classifies the
//! shape (hierarchical join structures get exact extensional plans,
//! everything else goes Monte Carlo) and answers a [`Statistic`] about the
//! result.
//!
//! Two deliberate restrictions keep resolution unambiguous: selections
//! apply to single-relation subtrees (push your σ below the ⨝, as a
//! planner would anyway), and a relation may be scanned at most once per
//! query (self-joins have no safe-plan story here yet).
//!
//! [`Catalog`]: crate::catalog::Catalog

use crate::predicate::Predicate;
use crate::ProbDbError;
use mrsl_relation::{AttrId, AttrMask};

/// One node of a relational-algebra tree. Public so planners and tools can
/// pattern-match on the shape; built through the [`Query`] methods.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryNode {
    /// Scan of a named catalog relation.
    Scan {
        /// Relation name, resolved against the catalog at plan time.
        relation: String,
    },
    /// Selection over a single-relation subtree.
    Filter {
        /// The filtered input.
        input: Box<QueryNode>,
        /// The selection predicate, over the scanned relation's attributes.
        pred: Predicate,
    },
    /// Equi-join of two subtrees on one or more attribute pairs.
    Join {
        /// Left input (the tree built so far).
        left: Box<QueryNode>,
        /// Right input (usually a scan).
        right: Box<QueryNode>,
        /// Join conditions; every pair must be dictionary-compatible.
        on: Vec<JoinPair>,
    },
    /// Bag-semantics projection (presentation metadata: it renames no
    /// columns and, without duplicate elimination, changes no counts).
    Project {
        /// The projected input.
        input: Box<QueryNode>,
        /// Attributes of the query's primary (first-scanned) relation to
        /// report.
        attrs: Vec<AttrId>,
    },
}

/// One equi-join condition `left.left_attr = right.right_attr`.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinPair {
    /// Which relation of the left subtree anchors `left_attr`; `None`
    /// means the subtree's primary (first-scanned) relation.
    pub left_rel: Option<String>,
    /// The left-side join attribute.
    pub left_attr: AttrId,
    /// The right-side join attribute, anchored to the right subtree's
    /// primary relation.
    pub right_attr: AttrId,
}

/// What to compute about a query's result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Statistic {
    /// `P(result is non-empty)` — the boolean-query probability the
    /// safe-plan literature is about.
    Probability,
    /// `E[|result|]` under bag semantics.
    ExpectedCount,
    /// Distribution of `|result|` over possible worlds.
    CountDistribution,
    /// Per-block selection marginals (single-relation queries only).
    Marginals,
    /// The `k` most probable matching tuples (single-relation only).
    TopK(usize),
    /// Marginal distribution of one attribute (single-relation only).
    ValueMarginal(AttrId),
}

impl Statistic {
    /// Short name used in errors and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Probability => "probability",
            Self::ExpectedCount => "expected-count",
            Self::CountDistribution => "count-distribution",
            Self::Marginals => "marginals",
            Self::TopK(_) => "top-k",
            Self::ValueMarginal(_) => "value-marginal",
        }
    }
}

/// A composable relational-algebra query over catalog relations.
///
/// ```
/// use mrsl_probdb::{Predicate, Query};
/// use mrsl_relation::{AttrId, ValueId};
///
/// // σ[kind=outdoor](sensors) ⨝ σ[level=high](readings) on the station id.
/// let q = Query::scan("sensors")
///     .filter(Predicate::eq(AttrId(1), ValueId(1)))
///     .join_on(
///         Query::scan("readings").filter(Predicate::eq(AttrId(1), ValueId(1))),
///         [(AttrId(0), AttrId(0))],
///     );
/// assert_eq!(q.relations(), vec!["sensors", "readings"]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    root: QueryNode,
}

impl Query {
    /// Starts a query with a scan of the named relation.
    pub fn scan(relation: impl Into<String>) -> Self {
        Self {
            root: QueryNode::Scan {
                relation: relation.into(),
            },
        }
    }

    /// Applies a selection to the tree built so far. Selections must sit
    /// over a single-relation subtree (resolution rejects a filter above a
    /// join with [`ProbDbError::FilterAboveJoin`]).
    #[must_use]
    pub fn filter(self, pred: Predicate) -> Self {
        Self {
            root: QueryNode::Filter {
                input: Box::new(self.root),
                pred,
            },
        }
    }

    /// Joins the tree built so far with `right` on `(left, right)`
    /// attribute pairs. `right` can be a relation name (via `Into<Query>`
    /// for `&str`/`String`) or a filtered subtree; left attributes anchor
    /// to the current tree's primary (first-scanned) relation.
    #[must_use]
    pub fn join_on(
        self,
        right: impl Into<Query>,
        on: impl IntoIterator<Item = (AttrId, AttrId)>,
    ) -> Self {
        let on = on
            .into_iter()
            .map(|(left_attr, right_attr)| JoinPair {
                left_rel: None,
                left_attr,
                right_attr,
            })
            .collect();
        self.join_pairs(right.into(), on)
    }

    /// Like [`Query::join_on`], but anchors the left attributes to the
    /// named relation of the current tree instead of the primary one —
    /// needed for chains like `r ⨝ s ⨝ t` where `t` joins against `s`.
    #[must_use]
    pub fn join_on_rel(
        self,
        left_rel: impl Into<String>,
        right: impl Into<Query>,
        on: impl IntoIterator<Item = (AttrId, AttrId)>,
    ) -> Self {
        let left_rel = left_rel.into();
        let on = on
            .into_iter()
            .map(|(left_attr, right_attr)| JoinPair {
                left_rel: Some(left_rel.clone()),
                left_attr,
                right_attr,
            })
            .collect();
        self.join_pairs(right.into(), on)
    }

    /// The fully explicit join constructor.
    #[must_use]
    pub fn join_pairs(self, right: Query, on: Vec<JoinPair>) -> Self {
        Self {
            root: QueryNode::Join {
                left: Box::new(self.root),
                right: Box::new(right.root),
                on,
            },
        }
    }

    /// Records a bag-semantics projection onto `attrs` of the primary
    /// relation. Metadata only: probabilities and (bag) counts are
    /// unchanged, so the planner carries it into reports but ignores it
    /// during evaluation.
    #[must_use]
    pub fn project(self, attrs: impl IntoIterator<Item = AttrId>) -> Self {
        Self {
            root: QueryNode::Project {
                input: Box::new(self.root),
                attrs: attrs.into_iter().collect(),
            },
        }
    }

    /// The root node of the tree.
    pub fn root(&self) -> &QueryNode {
        &self.root
    }

    /// The scanned relation names in scan order (the first is the query's
    /// *primary* relation). Duplicates appear as written; resolution
    /// rejects them.
    pub fn relations(&self) -> Vec<&str> {
        fn collect<'a>(node: &'a QueryNode, out: &mut Vec<&'a str>) {
            match node {
                QueryNode::Scan { relation } => out.push(relation),
                QueryNode::Filter { input, .. } | QueryNode::Project { input, .. } => {
                    collect(input, out)
                }
                QueryNode::Join { left, right, .. } => {
                    collect(left, out);
                    collect(right, out);
                }
            }
        }
        let mut out = Vec::new();
        collect(&self.root, &mut out);
        out
    }

    /// Flattens the tree into its conjunctive form: one term per scan with
    /// its combined selection, resolved join pairs, and the projection.
    /// This is the shared front half of planning and of lazy per-relation
    /// derivation triage.
    pub(crate) fn flatten(&self) -> Result<Flattened, ProbDbError> {
        let mut flat = Flattened {
            terms: Vec::new(),
            joins: Vec::new(),
            projection: None,
        };
        walk(&self.root, &mut flat)?;
        Ok(flat)
    }

    /// What each scanned relation must provide for this query: its
    /// combined selection predicate (already [simplified](Predicate::simplify))
    /// and the attributes it is joined on. Lazy derivation uses this to
    /// decide which incomplete tuples actually need inference.
    pub fn scan_requirements(&self) -> Result<Vec<ScanRequirement>, ProbDbError> {
        let flat = self.flatten()?;
        let mut reqs: Vec<ScanRequirement> = flat
            .terms
            .into_iter()
            .map(|t| ScanRequirement {
                relation: t.relation,
                pred: t.pred.simplify(),
                join_attrs: AttrMask::EMPTY,
            })
            .collect();
        for j in &flat.joins {
            reqs[j.left_term].join_attrs = reqs[j.left_term].join_attrs.with(j.left_attr);
            reqs[j.right_term].join_attrs = reqs[j.right_term].join_attrs.with(j.right_attr);
        }
        Ok(reqs)
    }
}

impl From<&str> for Query {
    fn from(relation: &str) -> Self {
        Query::scan(relation)
    }
}

impl From<String> for Query {
    fn from(relation: String) -> Self {
        Query::scan(relation)
    }
}

/// What one scan contributes to a query: its relation, the conjunction of
/// all selections applied to it, and the attributes it joins on.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanRequirement {
    /// The scanned relation's name.
    pub relation: String,
    /// Combined (simplified) selection predicate over the relation.
    pub pred: Predicate,
    /// Attributes of this relation used as join keys.
    pub join_attrs: AttrMask,
}

/// The conjunctive form of a query tree (internal planner currency).
#[derive(Debug, Clone)]
pub(crate) struct Flattened {
    /// One term per scan, in scan order; term 0 is the primary relation.
    pub terms: Vec<ScanTerm>,
    /// Resolved equi-join conditions between terms.
    pub joins: Vec<ResolvedPair>,
    /// Projection attributes, if any (primary relation, bag semantics).
    pub projection: Option<Vec<AttrId>>,
}

#[derive(Debug, Clone)]
pub(crate) struct ScanTerm {
    pub relation: String,
    pub pred: Predicate,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ResolvedPair {
    pub left_term: usize,
    pub left_attr: AttrId,
    pub right_term: usize,
    pub right_attr: AttrId,
}

/// Term indices contributed by one subtree, with its primary term first.
struct SubTerms {
    primary: usize,
    terms: Vec<usize>,
}

fn walk(node: &QueryNode, out: &mut Flattened) -> Result<SubTerms, ProbDbError> {
    match node {
        QueryNode::Scan { relation } => {
            if out.terms.iter().any(|t| t.relation == *relation) {
                return Err(ProbDbError::SelfJoin(relation.clone()));
            }
            let idx = out.terms.len();
            out.terms.push(ScanTerm {
                relation: relation.clone(),
                pred: Predicate::Any,
            });
            Ok(SubTerms {
                primary: idx,
                terms: vec![idx],
            })
        }
        QueryNode::Filter { input, pred } => {
            let sub = walk(input, out)?;
            if sub.terms.len() != 1 {
                return Err(ProbDbError::FilterAboveJoin);
            }
            let term = &mut out.terms[sub.primary];
            term.pred = std::mem::take(&mut term.pred).and(pred.clone());
            Ok(sub)
        }
        QueryNode::Join { left, right, on } => {
            if on.is_empty() {
                return Err(ProbDbError::EmptyJoinKeys);
            }
            let l = walk(left, out)?;
            let r = walk(right, out)?;
            for pair in on {
                let left_term = match &pair.left_rel {
                    None => l.primary,
                    Some(name) => *l
                        .terms
                        .iter()
                        .find(|&&t| out.terms[t].relation == *name)
                        .ok_or_else(|| ProbDbError::JoinAnchorNotInLeft(name.clone()))?,
                };
                out.joins.push(ResolvedPair {
                    left_term,
                    left_attr: pair.left_attr,
                    right_term: r.primary,
                    right_attr: pair.right_attr,
                });
            }
            let mut terms = l.terms;
            terms.extend(r.terms);
            Ok(SubTerms {
                primary: l.primary,
                terms,
            })
        }
        QueryNode::Project { input, attrs } => {
            let sub = walk(input, out)?;
            out.projection = Some(attrs.clone());
            Ok(sub)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrsl_relation::ValueId;

    #[test]
    fn builder_shapes_and_relation_order() {
        let q = Query::scan("r")
            .filter(Predicate::eq(AttrId(0), ValueId(1)))
            .join_on("s", [(AttrId(1), AttrId(0))])
            .project([AttrId(0), AttrId(1)]);
        assert_eq!(q.relations(), vec!["r", "s"]);
        let flat = q.flatten().unwrap();
        assert_eq!(flat.terms.len(), 2);
        assert_eq!(flat.terms[0].pred, Predicate::eq(AttrId(0), ValueId(1)));
        assert_eq!(flat.terms[1].pred, Predicate::Any);
        assert_eq!(
            flat.joins,
            vec![ResolvedPair {
                left_term: 0,
                left_attr: AttrId(1),
                right_term: 1,
                right_attr: AttrId(0),
            }]
        );
        assert_eq!(flat.projection, Some(vec![AttrId(0), AttrId(1)]));
    }

    #[test]
    fn chained_join_anchors_to_named_relation() {
        // r ⨝ s on (r.0 = s.0), then t joins against *s* on (s.1 = t.0).
        let q = Query::scan("r")
            .join_on("s", [(AttrId(0), AttrId(0))])
            .join_on_rel("s", "t", [(AttrId(1), AttrId(0))]);
        let flat = q.flatten().unwrap();
        assert_eq!(flat.joins[1].left_term, 1);
        assert_eq!(flat.joins[1].right_term, 2);
        // Unknown anchors are rejected.
        let bad = Query::scan("r")
            .join_on_rel("nope", "s", [(AttrId(0), AttrId(0))])
            .flatten();
        assert!(matches!(bad, Err(ProbDbError::JoinAnchorNotInLeft(n)) if n == "nope"));
    }

    #[test]
    fn filters_merge_and_misplaced_shapes_error() {
        let q = Query::scan("r")
            .filter(Predicate::eq(AttrId(0), ValueId(0)))
            .filter(Predicate::eq(AttrId(1), ValueId(1)));
        let flat = q.flatten().unwrap();
        assert_eq!(
            flat.terms[0].pred,
            Predicate::eq(AttrId(0), ValueId(0)).and(Predicate::eq(AttrId(1), ValueId(1)))
        );
        let above_join = Query::scan("r")
            .join_on("s", [(AttrId(0), AttrId(0))])
            .filter(Predicate::any())
            .flatten();
        assert!(matches!(above_join, Err(ProbDbError::FilterAboveJoin)));
        let self_join = Query::scan("r")
            .join_on("r", [(AttrId(0), AttrId(0))])
            .flatten();
        assert!(matches!(self_join, Err(ProbDbError::SelfJoin(n)) if n == "r"));
        let no_keys = Query::scan("r")
            .join_pairs(Query::scan("s"), vec![])
            .flatten();
        assert!(matches!(no_keys, Err(ProbDbError::EmptyJoinKeys)));
    }

    #[test]
    fn scan_requirements_collect_predicates_and_join_attrs() {
        let q = Query::scan("r")
            .filter(Predicate::And(vec![])) // canonicalizes to Any
            .join_on(
                Query::scan("s").filter(Predicate::eq(AttrId(1), ValueId(0))),
                [(AttrId(2), AttrId(0))],
            );
        let reqs = q.scan_requirements().unwrap();
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].relation, "r");
        assert_eq!(reqs[0].pred, Predicate::Any);
        assert_eq!(
            reqs[0].join_attrs.iter().collect::<Vec<_>>(),
            vec![AttrId(2)]
        );
        assert_eq!(reqs[1].pred, Predicate::eq(AttrId(1), ValueId(0)));
        assert_eq!(
            reqs[1].join_attrs.iter().collect::<Vec<_>>(),
            vec![AttrId(0)]
        );
    }
}
