//! Brute-force oracles for the query subsystem.
//!
//! Every exact evaluator, sampler and bound in [`crate::plan`] is tested
//! against the same ground truth: enumerate the possible worlds of every
//! relation a query scans, take their cartesian product (one world per
//! *relation* — aliased scans of one relation read the same world, which
//! is exactly the dependence the planner must respect), and evaluate the
//! query's conjunctive form in each joint world by exhaustive assignment
//! counting. This module is that oracle, shared by the crate's unit
//! tests, the workspace integration suites and the proptest harnesses so
//! no suite re-implements world enumeration.
//!
//! Exponential in the total number of blocks — strictly a test utility.
//!
//! ```
//! use mrsl_probdb::testutil::oracle_probability;
//! use mrsl_probdb::{Catalog, ProbDb, Query};
//! use mrsl_relation::Schema;
//!
//! let schema = Schema::builder()
//!     .attribute("k", ["a", "b"])
//!     .build()
//!     .unwrap();
//! let mut catalog = Catalog::new();
//! catalog.add("r", ProbDb::new(schema)).unwrap();
//! let p = oracle_probability(&catalog, &Query::scan("r")).unwrap();
//! assert_eq!(p, 0.0); // empty relation: no world has a result
//! ```

use crate::algebra::Query;
use crate::catalog::Catalog;
use crate::plan::classify::{resolve, Resolved};
use crate::world::{enumerate_worlds, PossibleWorld};
use crate::ProbDbError;
use mrsl_relation::CompleteTuple;

/// Joint-world budget of the convenience wrappers. Oracle cost is the
/// product of the scanned relations' world counts times the assignment
/// count per world; tests should stay far below this.
pub const DEFAULT_WORLD_LIMIT: u128 = 4_000_000;

/// Everything the oracle can say about one boolean/count query.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleAnswer {
    /// `P(result non-empty)` over the joint worlds.
    pub probability: f64,
    /// `E[|result|]` under bag semantics.
    pub expected_count: f64,
    /// `d[k] = P(|result| = k)`.
    pub count_distribution: Vec<f64>,
    /// Number of joint worlds enumerated.
    pub worlds: u128,
}

/// Brute-force `P(result non-empty)` of `query` against `catalog`.
///
/// # Panics
/// Panics when the joint world count exceeds [`DEFAULT_WORLD_LIMIT`].
pub fn oracle_probability(catalog: &Catalog, query: &Query) -> Result<f64, ProbDbError> {
    Ok(oracle(catalog, query, DEFAULT_WORLD_LIMIT)?.probability)
}

/// Brute-force `E[|result|]` of `query` against `catalog`.
///
/// # Panics
/// Panics when the joint world count exceeds [`DEFAULT_WORLD_LIMIT`].
pub fn oracle_expected_count(catalog: &Catalog, query: &Query) -> Result<f64, ProbDbError> {
    Ok(oracle(catalog, query, DEFAULT_WORLD_LIMIT)?.expected_count)
}

/// Brute-force `P(|result| = k)` of `query` against `catalog`.
///
/// # Panics
/// Panics when the joint world count exceeds [`DEFAULT_WORLD_LIMIT`].
pub fn oracle_count_distribution(
    catalog: &Catalog,
    query: &Query,
) -> Result<Vec<f64>, ProbDbError> {
    Ok(oracle(catalog, query, DEFAULT_WORLD_LIMIT)?.count_distribution)
}

/// The full oracle: enumerates every joint world of the relations `query`
/// scans and evaluates the query's conjunctive form in each.
///
/// Resolution errors (unknown relations, incompatible join dictionaries,
/// misplaced filters, duplicate scan names…) surface exactly as they do
/// in the planner, so error-path tests can share the oracle too.
///
/// # Panics
/// Panics when the joint world count exceeds `max_worlds` — enumeration
/// is exponential and meant for small test fixtures.
pub fn oracle(
    catalog: &Catalog,
    query: &Query,
    max_worlds: u128,
) -> Result<OracleAnswer, ProbDbError> {
    let flat = query.flatten()?;
    let resolved = resolve(&flat, |name| catalog.get(name))?;

    // One world set per *distinct relation*; aliased scans share it.
    let mut relations: Vec<&str> = Vec::new();
    for t in &resolved.terms {
        if !relations.iter().any(|r| *r == t.relation) {
            relations.push(&t.relation);
        }
    }
    let mut total: u128 = 1;
    for r in &relations {
        total = total.saturating_mul(catalog.resolve(r)?.world_count());
    }
    assert!(
        total <= max_worlds,
        "oracle would enumerate {total} joint worlds, exceeding the limit {max_worlds}"
    );
    let worlds_per_relation: Vec<Vec<PossibleWorld>> = relations
        .iter()
        .map(|r| enumerate_worlds(catalog.resolve(r).expect("resolved above"), max_worlds))
        .collect();
    let world_of_term: Vec<usize> = resolved
        .terms
        .iter()
        .map(|t| {
            relations
                .iter()
                .position(|r| *r == t.relation)
                .expect("collected above")
        })
        .collect();

    let mut probability = 0.0;
    let mut expected_count = 0.0;
    let mut histogram: Vec<f64> = vec![0.0];
    let mut choice = vec![0usize; relations.len()];
    loop {
        let mut weight = 1.0;
        for (ri, &c) in choice.iter().enumerate() {
            weight *= worlds_per_relation[ri][c].prob;
        }
        // Rows of each term: its relation-world's tuples passing the
        // term's selection.
        let term_rows: Vec<Vec<&CompleteTuple>> = resolved
            .terms
            .iter()
            .enumerate()
            .map(|(ti, t)| {
                worlds_per_relation[world_of_term[ti]][choice[world_of_term[ti]]]
                    .tuples
                    .iter()
                    .filter(|tuple| t.pred.eval(tuple))
                    .collect()
            })
            .collect();
        let mut bound = vec![None; resolved.classes.len()];
        let count = count_assignments(&resolved, &term_rows, 0, &mut bound);
        if count > 0 {
            probability += weight;
        }
        expected_count += weight * count as f64;
        if histogram.len() <= count as usize {
            histogram.resize(count as usize + 1, 0.0);
        }
        histogram[count as usize] += weight;

        // Advance the mixed-radix joint-world counter.
        let mut ri = 0;
        loop {
            if ri == relations.len() {
                return Ok(OracleAnswer {
                    probability,
                    expected_count,
                    count_distribution: histogram,
                    worlds: total,
                });
            }
            choice[ri] += 1;
            if choice[ri] < worlds_per_relation[ri].len() {
                break;
            }
            choice[ri] = 0;
            ri += 1;
        }
    }
}

/// Number of row assignments (one row per term) satisfying every join
/// class, counted by exhaustive backtracking over the terms.
fn count_assignments(
    resolved: &Resolved,
    term_rows: &[Vec<&CompleteTuple>],
    t: usize,
    bound: &mut [Option<u16>],
) -> u64 {
    if t == term_rows.len() {
        return 1;
    }
    let mut total = 0;
    'tuples: for tuple in &term_rows[t] {
        let mut newly_bound: Vec<usize> = Vec::new();
        for (ci, class) in resolved.classes.iter().enumerate() {
            for &(ti, attr) in &class.members {
                if ti != t {
                    continue;
                }
                let v = tuple.raw()[attr.index()];
                match bound[ci] {
                    Some(x) if x != v => {
                        for &c in &newly_bound {
                            bound[c] = None;
                        }
                        continue 'tuples;
                    }
                    Some(_) => {}
                    None => {
                        bound[ci] = Some(v);
                        newly_bound.push(ci);
                    }
                }
            }
        }
        total += count_assignments(resolved, term_rows, t + 1, bound);
        for &c in &newly_bound {
            bound[c] = None;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Alternative, Block};
    use crate::database::ProbDb;
    use crate::predicate::Predicate;
    use mrsl_relation::{AttrId, CompleteTuple, Schema, ValueId};

    fn alt(values: Vec<u16>, prob: f64) -> Alternative {
        Alternative {
            tuple: CompleteTuple::from_values(values),
            prob,
        }
    }

    #[test]
    fn single_relation_probability_matches_closed_form() {
        let schema = Schema::builder()
            .attribute("k", ["a", "b"])
            .build()
            .unwrap();
        let mut db = ProbDb::new(schema);
        db.push_block(Block::new(0, vec![alt(vec![0], 0.3), alt(vec![1], 0.7)]).unwrap())
            .unwrap();
        db.push_block(Block::new(1, vec![alt(vec![0], 0.4), alt(vec![1], 0.6)]).unwrap())
            .unwrap();
        let mut catalog = Catalog::new();
        catalog.add("r", db).unwrap();
        let q = Query::scan("r").filter(Predicate::eq(AttrId(0), ValueId(0)));
        let answer = oracle(&catalog, &q, 1_000).unwrap();
        // P(∃ k=a) = 1 - 0.7·0.6; E = 0.3 + 0.4.
        assert!((answer.probability - (1.0 - 0.42)).abs() < 1e-12);
        assert!((answer.expected_count - 0.7).abs() < 1e-12);
        let mean: f64 = answer
            .count_distribution
            .iter()
            .enumerate()
            .map(|(k, &p)| k as f64 * p)
            .sum();
        assert!((mean - 0.7).abs() < 1e-12);
        assert_eq!(answer.worlds, 4);
    }

    #[test]
    fn aliased_scans_share_one_world() {
        // σ[k=a](r) ⋈ σ[k=a](r) on the key: the result is non-empty
        // exactly when r's tuple lands on `a`, so the self-join
        // probability equals the selection probability — only if both
        // aliases read the *same* world.
        let schema = Schema::builder()
            .attribute("k", ["a", "b"])
            .build()
            .unwrap();
        let mut db = ProbDb::new(schema);
        db.push_block(Block::new(0, vec![alt(vec![0], 0.5), alt(vec![1], 0.5)]).unwrap())
            .unwrap();
        let mut catalog = Catalog::new();
        catalog.add("r", db).unwrap();
        let sel = Predicate::eq(AttrId(0), ValueId(0));
        let q = Query::scan_as("r", "r1").filter(sel.clone()).join_on(
            Query::scan_as("r", "r2").filter(sel),
            [(AttrId(0), AttrId(0))],
        );
        let answer = oracle(&catalog, &q, 1_000).unwrap();
        assert!((answer.probability - 0.5).abs() < 1e-12);
        assert!((answer.expected_count - 0.5).abs() < 1e-12);
        assert_eq!(answer.worlds, 2); // one relation, two worlds — not four
    }

    #[test]
    fn resolution_errors_surface() {
        let catalog = Catalog::new();
        let e = oracle_probability(&catalog, &Query::scan("missing"));
        assert!(matches!(e, Err(ProbDbError::UnknownRelation(_))));
    }
}
