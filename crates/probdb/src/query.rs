//! Exact query evaluation under BID semantics.
//!
//! Disjoint-independent databases admit efficient exact evaluation for the
//! query shapes used by the examples: per-block selection marginals,
//! expected counts, the exact distribution of a COUNT(*) aggregate
//! (a Poisson-binomial computed by dynamic programming over blocks), value
//! marginals, and ranking tuples by membership probability.

use crate::database::ProbDb;
use mrsl_relation::{AttrId, CompleteTuple, ValueId};
use serde::{Deserialize, Serialize};

/// A conjunctive equality predicate `a1 = v1 ∧ … ∧ ak = vk`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Predicate {
    clauses: Vec<(AttrId, ValueId)>,
}

impl Predicate {
    /// The always-true predicate.
    pub fn any() -> Self {
        Self::default()
    }

    /// Adds an equality clause.
    #[must_use]
    pub fn and_eq(mut self, attr: AttrId, value: ValueId) -> Self {
        self.clauses.push((attr, value));
        self
    }

    /// Evaluates the predicate on a complete tuple.
    pub fn eval(&self, t: &CompleteTuple) -> bool {
        self.clauses.iter().all(|&(a, v)| t.value(a) == v)
    }

    /// The clauses.
    pub fn clauses(&self) -> &[(AttrId, ValueId)] {
        &self.clauses
    }
}

/// Probability, per block, that the block's true tuple satisfies `pred`,
/// in block order.
pub fn block_selection_probs(db: &ProbDb, pred: &Predicate) -> Vec<f64> {
    db.blocks()
        .iter()
        .map(|b| b.prob_satisfies(|t| pred.eval(t)))
        .collect()
}

/// Expected number of tuples satisfying `pred`: certain matches plus the
/// sum of block marginals (linearity of expectation across blocks).
pub fn expected_count(db: &ProbDb, pred: &Predicate) -> f64 {
    let certain = db.certain().iter().filter(|t| pred.eval(t)).count() as f64;
    certain + block_selection_probs(db, pred).iter().sum::<f64>()
}

/// Exact distribution of `COUNT(*) WHERE pred` over possible worlds.
///
/// Blocks contribute independent Bernoulli trials with their selection
/// marginals; certain tuples shift the distribution. The result is a vector
/// `d` with `d[k] = P(count = k)`, computed by the standard O(n²)
/// Poisson-binomial DP.
pub fn count_distribution(db: &ProbDb, pred: &Predicate) -> Vec<f64> {
    let base = db.certain().iter().filter(|t| pred.eval(t)).count();
    let probs = block_selection_probs(db, pred);
    let mut dist = vec![0.0f64; probs.len() + 1];
    dist[0] = 1.0;
    let mut upper = 0usize;
    for &p in &probs {
        upper += 1;
        for k in (0..=upper).rev() {
            let stay = dist[k] * (1.0 - p);
            let come = if k > 0 { dist[k - 1] * p } else { 0.0 };
            dist[k] = stay + come;
        }
    }
    // Shift by the certain matches.
    let mut shifted = vec![0.0f64; base + dist.len()];
    for (k, &p) in dist.iter().enumerate() {
        shifted[base + k] = p;
    }
    shifted
}

/// Marginal distribution of `attr` over a random world's tuple *from one
/// block*, averaged over blocks and certain tuples — i.e. the expected
/// histogram of `attr` normalized by the expected table size.
pub fn value_marginal(db: &ProbDb, attr: AttrId) -> Vec<f64> {
    let card = db.schema().cardinality(attr);
    let mut hist = vec![0.0f64; card];
    for t in db.certain() {
        hist[t.value(attr).index()] += 1.0;
    }
    for b in db.blocks() {
        for a in b.alternatives() {
            hist[a.tuple.value(attr).index()] += a.prob;
        }
    }
    let total: f64 = hist.iter().sum();
    if total > 0.0 {
        hist.iter_mut().for_each(|h| *h /= total);
    }
    hist
}

/// A tuple with its membership probability, as returned by [`top_k`].
#[derive(Debug, Clone)]
pub struct RankedTuple {
    /// The tuple.
    pub tuple: CompleteTuple,
    /// Probability that the tuple appears in a random world.
    pub prob: f64,
    /// Block key, or `None` for certain tuples.
    pub block: Option<usize>,
}

/// The `k` most probable tuples satisfying `pred` (certain tuples have
/// probability 1). Ties are broken deterministically by block order.
pub fn top_k(db: &ProbDb, pred: &Predicate, k: usize) -> Vec<RankedTuple> {
    let mut ranked: Vec<RankedTuple> = db
        .certain()
        .iter()
        .filter(|t| pred.eval(t))
        .map(|t| RankedTuple {
            tuple: t.clone(),
            prob: 1.0,
            block: None,
        })
        .collect();
    for b in db.blocks() {
        for a in b.alternatives() {
            if pred.eval(&a.tuple) {
                ranked.push(RankedTuple {
                    tuple: a.tuple.clone(),
                    prob: a.prob,
                    block: Some(b.key()),
                });
            }
        }
    }
    ranked.sort_by(|x, y| y.prob.partial_cmp(&x.prob).expect("finite probs"));
    ranked.truncate(k);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Alternative, Block};
    use crate::world::enumerate_worlds;
    use mrsl_relation::schema::fig1_schema;

    fn alt(values: Vec<u16>, prob: f64) -> Alternative {
        Alternative {
            tuple: CompleteTuple::from_values(values),
            prob,
        }
    }

    fn db() -> ProbDb {
        let mut db = ProbDb::new(fig1_schema());
        db.push_certain(CompleteTuple::from_values(vec![0, 0, 1, 0]))
            .unwrap();
        db.push_block(
            Block::new(
                0,
                vec![alt(vec![0, 0, 0, 0], 0.3), alt(vec![0, 0, 1, 0], 0.7)],
            )
            .unwrap(),
        )
        .unwrap();
        db.push_block(
            Block::new(
                1,
                vec![alt(vec![1, 0, 1, 0], 0.6), alt(vec![1, 0, 0, 1], 0.4)],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn predicate_eval() {
        let p = Predicate::any()
            .and_eq(AttrId(0), ValueId(0))
            .and_eq(AttrId(2), ValueId(1));
        assert!(p.eval(&CompleteTuple::from_values(vec![0, 5, 1, 0])));
        assert!(!p.eval(&CompleteTuple::from_values(vec![1, 5, 1, 0])));
        assert!(Predicate::any().eval(&CompleteTuple::from_values(vec![9, 9, 9, 9])));
    }

    #[test]
    fn expected_count_matches_world_enumeration() {
        let db = db();
        let pred = Predicate::any().and_eq(AttrId(2), ValueId(1)); // inc = 100K
        let exact = expected_count(&db, &pred);
        let brute: f64 = enumerate_worlds(&db, 100)
            .iter()
            .map(|w| w.prob * w.tuples.iter().filter(|t| pred.eval(t)).count() as f64)
            .sum();
        assert!((exact - brute).abs() < 1e-12, "{exact} vs {brute}");
        // 1 (certain) + 0.7 + 0.6.
        assert!((exact - 2.3).abs() < 1e-12);
    }

    #[test]
    fn count_distribution_matches_world_enumeration() {
        let db = db();
        let pred = Predicate::any().and_eq(AttrId(2), ValueId(1));
        let dist = count_distribution(&db, &pred);
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let mut brute = vec![0.0f64; dist.len()];
        for w in enumerate_worlds(&db, 100) {
            let c = w.tuples.iter().filter(|t| pred.eval(t)).count();
            brute[c] += w.prob;
        }
        for (k, (&a, &b)) in dist.iter().zip(&brute).enumerate() {
            assert!((a - b).abs() < 1e-12, "k={k}: {a} vs {b}");
        }
        // Mean of the distribution equals the expected count.
        let mean: f64 = dist.iter().enumerate().map(|(k, &p)| k as f64 * p).sum();
        assert!((mean - expected_count(&db, &pred)).abs() < 1e-12);
    }

    #[test]
    fn count_distribution_with_impossible_pred_is_point_mass() {
        let db = db();
        let pred = Predicate::any().and_eq(AttrId(1), ValueId(2)); // edu=MS: nowhere
        let dist = count_distribution(&db, &pred);
        assert!((dist[0] - 1.0).abs() < 1e-12);
        assert!(dist[1..].iter().all(|&p| p.abs() < 1e-12));
    }

    #[test]
    fn value_marginal_is_normalized_and_weighted() {
        let db = db();
        let m = value_marginal(&db, AttrId(2));
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // inc=100K mass: certain 1 + 0.7 + 0.6 of 3 expected tuples.
        assert!((m[1] - 2.3 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn top_k_ranks_by_probability() {
        let db = db();
        let all = top_k(&db, &Predicate::any(), 10);
        assert_eq!(all.len(), 5);
        assert_eq!(all[0].prob, 1.0);
        assert!(all[0].block.is_none());
        assert!(all.windows(2).all(|w| w[0].prob >= w[1].prob));
        let top2 = top_k(&db, &Predicate::any(), 2);
        assert_eq!(top2.len(), 2);
        assert!((top2[1].prob - 0.7).abs() < 1e-12);
    }
}
