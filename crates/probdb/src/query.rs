//! Exact query evaluation under BID semantics.
//!
//! Disjoint-independent databases admit efficient exact evaluation for the
//! query shapes used by the examples: per-block selection marginals,
//! expected counts, the exact distribution of a COUNT(*) aggregate
//! (a Poisson-binomial computed by dynamic programming over blocks), value
//! marginals, and ranking tuples by membership probability.
//!
//! Since the columnar refactor these evaluators run on the database's
//! [`ColumnStore`](crate::column::ColumnStore): the predicate is compiled
//! once into a [`Bitmap`](crate::column::Bitmap) over the certain and
//! alternative columns, and everything downstream is arithmetic over that
//! bitmap. The original tuple-at-a-time evaluators survive in [`rowwise`]
//! as the reference implementation — property tests assert the two paths
//! are bit-identical, and the `query_engine` bench measures the gap.

use crate::database::ProbDb;
use mrsl_relation::{AttrId, CompleteTuple};

pub use crate::predicate::Predicate;

/// Probability, per block, that the block's true tuple satisfies `pred`,
/// in block order.
pub fn block_selection_probs(db: &ProbDb, pred: &Predicate) -> Vec<f64> {
    let matches = pred.eval_columns(db.columns().alternatives());
    db.columns().block_probs(&matches)
}

/// Expected number of tuples satisfying `pred`: certain matches plus the
/// sum of block marginals (linearity of expectation across blocks).
pub fn expected_count(db: &ProbDb, pred: &Predicate) -> f64 {
    let certain = pred.eval_columns(db.columns().certain()).count_ones() as f64;
    certain + block_selection_probs(db, pred).iter().sum::<f64>()
}

/// The Poisson-binomial DP over per-block selection probabilities, shifted
/// by the number of certain matches. Blocks with probability 0 contribute
/// nothing and are skipped (they still occupy a slot in the distribution's
/// support bound, keeping the output length at `blocks + certain + 1`).
pub(crate) fn poisson_binomial(base: usize, probs: &[f64]) -> Vec<f64> {
    let mut dist = vec![0.0f64; probs.len() + 1];
    dist[0] = 1.0;
    let mut upper = 0usize;
    for &p in probs {
        if p == 0.0 {
            continue;
        }
        upper += 1;
        for k in (0..=upper).rev() {
            let stay = dist[k] * (1.0 - p);
            let come = if k > 0 { dist[k - 1] * p } else { 0.0 };
            dist[k] = stay + come;
        }
    }
    // Shift by the certain matches.
    let mut shifted = vec![0.0f64; base + dist.len()];
    for (k, &p) in dist.iter().enumerate() {
        shifted[base + k] = p;
    }
    shifted
}

/// Exact distribution of `COUNT(*) WHERE pred` over possible worlds.
///
/// Blocks contribute independent Bernoulli trials with their selection
/// marginals; certain tuples shift the distribution. The result is a vector
/// `d` with `d[k] = P(count = k)`, computed by the standard O(n²)
/// Poisson-binomial DP.
pub fn count_distribution(db: &ProbDb, pred: &Predicate) -> Vec<f64> {
    let base = pred.eval_columns(db.columns().certain()).count_ones();
    let probs = block_selection_probs(db, pred);
    poisson_binomial(base, &probs)
}

/// Marginal distribution of `attr` over a random world's tuple *from one
/// block*, averaged over blocks and certain tuples — i.e. the expected
/// histogram of `attr` normalized by the expected table size.
pub fn value_marginal(db: &ProbDb, attr: AttrId) -> Vec<f64> {
    let card = db.schema().cardinality(attr);
    let mut hist = vec![0.0f64; card];
    let cols = db.columns();
    for &v in cols.certain().col(attr) {
        hist[v as usize] += 1.0;
    }
    for (&v, &p) in cols.alternatives().col(attr).iter().zip(cols.alt_probs()) {
        hist[v as usize] += p;
    }
    let total: f64 = hist.iter().sum();
    if total > 0.0 {
        hist.iter_mut().for_each(|h| *h /= total);
    }
    hist
}

/// A tuple with its membership probability, as returned by [`top_k`].
#[derive(Debug, Clone)]
pub struct RankedTuple {
    /// The tuple.
    pub tuple: CompleteTuple,
    /// Probability that the tuple appears in a random world.
    pub prob: f64,
    /// Block key, or `None` for certain tuples.
    pub block: Option<usize>,
}

/// The `k` most probable tuples satisfying `pred` (certain tuples have
/// probability 1).
///
/// The order is a deterministic total order: probability descending
/// (compared with [`f64::total_cmp`], so no panic path on any input),
/// then certain tuples before block tuples, then block key ascending,
/// then alternative position within the block.
pub fn top_k(db: &ProbDb, pred: &Predicate, k: usize) -> Vec<RankedTuple> {
    let certain_matches = pred.eval_columns(db.columns().certain());
    let alt_matches = pred.eval_columns(db.columns().alternatives());
    top_k_from_bitmaps(db, k, &certain_matches, &alt_matches)
}

/// [`top_k`] over bitmaps the caller already computed (the planner shares
/// one predicate compilation between the answer and its report).
pub(crate) fn top_k_from_bitmaps(
    db: &ProbDb,
    k: usize,
    certain_matches: &crate::column::Bitmap,
    alt_matches: &crate::column::Bitmap,
) -> Vec<RankedTuple> {
    let cols = db.columns();
    let mut ranked: Vec<RankedTuple> = Vec::new();
    for i in certain_matches.iter_ones() {
        ranked.push(RankedTuple {
            tuple: db.certain()[i].clone(),
            prob: 1.0,
            block: None,
        });
    }
    for (b, block) in db.blocks().iter().enumerate() {
        let range = cols.block_range(b);
        for (a, row) in range.enumerate() {
            if alt_matches.get(row) {
                ranked.push(RankedTuple {
                    tuple: block.alternatives()[a].tuple.clone(),
                    prob: block.alternatives()[a].prob,
                    block: Some(block.key()),
                });
            }
        }
    }
    // `ranked` is built certain-first, then blocks in push order, then
    // alternatives in block order — a stable sort on (prob desc, certain
    // first, block key asc) therefore yields the documented total order.
    ranked.sort_by(|x, y| {
        y.prob
            .total_cmp(&x.prob)
            .then_with(|| match (x.block, y.block) {
                (None, None) => std::cmp::Ordering::Equal,
                (None, Some(_)) => std::cmp::Ordering::Less,
                (Some(_), None) => std::cmp::Ordering::Greater,
                (Some(a), Some(b)) => a.cmp(&b),
            })
    });
    ranked.truncate(k);
    ranked
}

/// Tuple-at-a-time reference evaluators (the pre-columnar implementation).
///
/// Kept for parity testing and benchmarking against the columnar path;
/// semantics are identical bit-for-bit.
pub mod rowwise {
    use super::{poisson_binomial, Predicate, ProbDb};

    /// Row-wise [`super::block_selection_probs`].
    pub fn block_selection_probs(db: &ProbDb, pred: &Predicate) -> Vec<f64> {
        db.blocks()
            .iter()
            .map(|b| b.prob_satisfies(|t| pred.eval(t)))
            .collect()
    }

    /// Row-wise [`super::expected_count`].
    pub fn expected_count(db: &ProbDb, pred: &Predicate) -> f64 {
        let certain = db.certain().iter().filter(|t| pred.eval(t)).count() as f64;
        certain + block_selection_probs(db, pred).iter().sum::<f64>()
    }

    /// Row-wise [`super::count_distribution`].
    pub fn count_distribution(db: &ProbDb, pred: &Predicate) -> Vec<f64> {
        let base = db.certain().iter().filter(|t| pred.eval(t)).count();
        let probs = block_selection_probs(db, pred);
        poisson_binomial(base, &probs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Alternative, Block};
    use crate::world::enumerate_worlds;
    use mrsl_relation::schema::fig1_schema;
    use mrsl_relation::ValueId;

    fn alt(values: Vec<u16>, prob: f64) -> Alternative {
        Alternative {
            tuple: CompleteTuple::from_values(values),
            prob,
        }
    }

    fn db() -> ProbDb {
        let mut db = ProbDb::new(fig1_schema());
        db.push_certain(CompleteTuple::from_values(vec![0, 0, 1, 0]))
            .unwrap();
        db.push_block(
            Block::new(
                0,
                vec![alt(vec![0, 0, 0, 0], 0.3), alt(vec![0, 0, 1, 0], 0.7)],
            )
            .unwrap(),
        )
        .unwrap();
        db.push_block(
            Block::new(
                1,
                vec![alt(vec![1, 0, 1, 0], 0.6), alt(vec![1, 0, 0, 1], 0.4)],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn predicate_eval() {
        let p = Predicate::any()
            .and_eq(AttrId(0), ValueId(0))
            .and_eq(AttrId(2), ValueId(1));
        assert!(p.eval(&CompleteTuple::from_values(vec![0, 5, 1, 0])));
        assert!(!p.eval(&CompleteTuple::from_values(vec![1, 5, 1, 0])));
        assert!(Predicate::any().eval(&CompleteTuple::from_values(vec![9, 9, 9, 9])));
    }

    #[test]
    fn expected_count_matches_world_enumeration() {
        let db = db();
        let pred = Predicate::any().and_eq(AttrId(2), ValueId(1)); // inc = 100K
        let exact = expected_count(&db, &pred);
        let brute: f64 = enumerate_worlds(&db, 100)
            .iter()
            .map(|w| w.prob * w.tuples.iter().filter(|t| pred.eval(t)).count() as f64)
            .sum();
        assert!((exact - brute).abs() < 1e-12, "{exact} vs {brute}");
        // 1 (certain) + 0.7 + 0.6.
        assert!((exact - 2.3).abs() < 1e-12);
    }

    #[test]
    fn count_distribution_matches_world_enumeration() {
        let db = db();
        let pred = Predicate::any().and_eq(AttrId(2), ValueId(1));
        let dist = count_distribution(&db, &pred);
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let mut brute = vec![0.0f64; dist.len()];
        for w in enumerate_worlds(&db, 100) {
            let c = w.tuples.iter().filter(|t| pred.eval(t)).count();
            brute[c] += w.prob;
        }
        for (k, (&a, &b)) in dist.iter().zip(&brute).enumerate() {
            assert!((a - b).abs() < 1e-12, "k={k}: {a} vs {b}");
        }
        // Mean of the distribution equals the expected count.
        let mean: f64 = dist.iter().enumerate().map(|(k, &p)| k as f64 * p).sum();
        assert!((mean - expected_count(&db, &pred)).abs() < 1e-12);
    }

    #[test]
    fn count_distribution_with_impossible_pred_is_point_mass() {
        let db = db();
        let pred = Predicate::any().and_eq(AttrId(1), ValueId(2)); // edu=MS: nowhere
        let dist = count_distribution(&db, &pred);
        assert!((dist[0] - 1.0).abs() < 1e-12);
        assert!(dist[1..].iter().all(|&p| p.abs() < 1e-12));
    }

    #[test]
    fn value_marginal_is_normalized_and_weighted() {
        let db = db();
        let m = value_marginal(&db, AttrId(2));
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // inc=100K mass: certain 1 + 0.7 + 0.6 of 3 expected tuples.
        assert!((m[1] - 2.3 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn top_k_ranks_by_probability() {
        let db = db();
        let all = top_k(&db, &Predicate::any(), 10);
        assert_eq!(all.len(), 5);
        assert_eq!(all[0].prob, 1.0);
        assert!(all[0].block.is_none());
        assert!(all.windows(2).all(|w| w[0].prob >= w[1].prob));
        let top2 = top_k(&db, &Predicate::any(), 2);
        assert_eq!(top2.len(), 2);
        assert!((top2[1].prob - 0.7).abs() < 1e-12);
    }

    #[test]
    fn top_k_tie_break_is_deterministic() {
        // Three sources of probability ties: a certain tuple (prob 1), a
        // block whose alternative also has prob 1, and two blocks with
        // identical 0.5/0.5 splits.
        let mut db = ProbDb::new(fig1_schema());
        db.push_certain(CompleteTuple::from_values(vec![0, 0, 0, 0]))
            .unwrap();
        db.push_block(Block::new(7, vec![alt(vec![1, 0, 0, 0], 1.0)]).unwrap())
            .unwrap();
        db.push_block(
            Block::new(
                3,
                vec![alt(vec![2, 0, 0, 0], 0.5), alt(vec![2, 1, 0, 0], 0.5)],
            )
            .unwrap(),
        )
        .unwrap();
        db.push_block(
            Block::new(
                1,
                vec![alt(vec![0, 2, 0, 0], 0.5), alt(vec![0, 2, 1, 0], 0.5)],
            )
            .unwrap(),
        )
        .unwrap();
        let ranked = top_k(&db, &Predicate::any(), 10);
        // Prob 1 first, certain before block 7; then 0.5 ties ordered by
        // block key (1 before 3), alternatives in block order.
        assert_eq!(ranked.len(), 6);
        assert_eq!(ranked[0].block, None);
        assert_eq!(ranked[1].block, Some(7));
        assert_eq!(ranked[2].block, Some(1));
        assert_eq!(ranked[2].tuple.raw(), &[0, 2, 0, 0]);
        assert_eq!(ranked[3].block, Some(1));
        assert_eq!(ranked[3].tuple.raw(), &[0, 2, 1, 0]);
        assert_eq!(ranked[4].block, Some(3));
        assert_eq!(ranked[5].block, Some(3));
        // Repeated evaluation is identical.
        let again = top_k(&db, &Predicate::any(), 10);
        for (a, b) in ranked.iter().zip(&again) {
            assert_eq!(a.tuple, b.tuple);
            assert_eq!(a.block, b.block);
        }
    }

    #[test]
    fn columnar_matches_rowwise_on_compound_predicates() {
        let db = db();
        let preds = vec![
            Predicate::any(),
            Predicate::eq(AttrId(2), ValueId(1)).negate(),
            Predicate::is_in(AttrId(0), [ValueId(0), ValueId(1)]),
            Predicate::range(AttrId(3), ValueId(0), ValueId(0))
                .or(Predicate::eq(AttrId(2), ValueId(0))),
            Predicate::eq(AttrId(0), ValueId(1)).and(Predicate::eq(AttrId(3), ValueId(1))),
        ];
        for pred in &preds {
            assert_eq!(
                expected_count(&db, pred),
                rowwise::expected_count(&db, pred),
                "{pred:?}"
            );
            assert_eq!(
                block_selection_probs(&db, pred),
                rowwise::block_selection_probs(&db, pred),
                "{pred:?}"
            );
            assert_eq!(
                count_distribution(&db, pred),
                rowwise::count_distribution(&db, pred),
                "{pred:?}"
            );
        }
    }
}
