//! A named catalog of probabilistic relations.
//!
//! One [`ProbDb`] is a single table; real query workloads span several —
//! the paper's sensor scenario keeps station metadata and readings in
//! separate relations, and the planner joins them. A [`Catalog`] maps
//! names to derived databases and is the root object the multi-relation
//! query API ([`crate::algebra::Query`], [`crate::plan::CatalogEngine`])
//! resolves against.
//!
//! Relations keep their own schemas; what joins them together are the
//! attribute *dictionaries*. Two attributes are join-compatible when their
//! domains intern the same labels in the same order, so one dictionary
//! index (`ValueId`) means the same value on both sides and the planner
//! can marginalize alternatives straight through the dictionary-encoded
//! key columns. [`Catalog::join_compatible`] is that check; query
//! resolution applies it to every join pair. Every attribute is trivially
//! join-compatible with itself, which is what lets aliased self-join
//! scans ([`crate::Query::scan_as`]) resolve against one catalog entry —
//! the catalog holds each relation once, and resolution maps any number
//! of aliases onto the same [`ProbDb`].
//!
//! ```
//! use mrsl_probdb::{Catalog, ProbDb};
//! use mrsl_relation::Schema;
//!
//! let stations = Schema::builder()
//!     .attribute("station", ["s0", "s1"])
//!     .attribute("kind", ["indoor", "outdoor"])
//!     .build()
//!     .unwrap();
//! let readings = Schema::builder()
//!     .attribute("station", ["s0", "s1"])
//!     .attribute("level", ["low", "high"])
//!     .build()
//!     .unwrap();
//!
//! let mut catalog = Catalog::new();
//! catalog.add("stations", ProbDb::new(stations)).unwrap();
//! catalog.add("readings", ProbDb::new(readings)).unwrap();
//! assert_eq!(catalog.len(), 2);
//! assert!(catalog.get("stations").is_some());
//! ```

use crate::database::ProbDb;
use crate::ProbDbError;
use mrsl_relation::{AttrId, Attribute};
use mrsl_util::FxHashMap;
use std::sync::Arc;

/// Do two attributes intern the same dictionary — the same labels in the
/// same order? The single definition of join compatibility, used by
/// [`Catalog::join_compatible`] and by query resolution for every join
/// pair.
pub(crate) fn same_dictionary(left: &Attribute, right: &Attribute) -> bool {
    left.labels() == right.labels()
}

/// A named collection of probabilistic relations, each a [`ProbDb`] with
/// its own schema. Iteration order is insertion order.
///
/// Relations are held behind [`Arc`], which makes `Catalog::clone`
/// copy-on-write: the clone shares every relation's storage with the
/// original, and [`Catalog::get_mut`] deep-copies only the relation it is
/// about to mutate. The serving layer ([`crate::serve`]) leans on this to
/// build the next catalog generation behind live readers without copying
/// untouched relations — and because an unmodified shared relation keeps
/// its [`ProbDb::version`] and shard stamps, plan-cache register memos
/// bound against one generation stay warm across the next.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    relations: Vec<(String, Arc<ProbDb>)>,
    by_name: FxHashMap<String, usize>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a relation under `name`.
    ///
    /// Returns [`ProbDbError::DuplicateRelation`] when the name is taken —
    /// relation names are the anchors query trees resolve against, so they
    /// must be unique.
    pub fn add(&mut self, name: impl Into<String>, db: ProbDb) -> Result<(), ProbDbError> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(ProbDbError::DuplicateRelation(name));
        }
        self.by_name.insert(name.clone(), self.relations.len());
        self.relations.push((name, Arc::new(db)));
        Ok(())
    }

    /// The relation named `name`, if present.
    pub fn get(&self, name: &str) -> Option<&ProbDb> {
        self.by_name
            .get(name)
            .map(|&i| self.relations[i].1.as_ref())
    }

    /// The shared handle to the relation named `name`, if present.
    ///
    /// Catalog clones share relation storage until a [`Catalog::get_mut`]
    /// diverges them; comparing handles with [`Arc::ptr_eq`] across two
    /// catalog generations tells whether a relation was carried over
    /// untouched (and therefore kept its version stamps) or rebuilt.
    pub fn get_shared(&self, name: &str) -> Option<Arc<ProbDb>> {
        self.by_name.get(name).map(|&i| self.relations[i].1.clone())
    }

    /// Mutable access to the relation named `name`, for incremental data
    /// maintenance (pushing tuples or blocks into an already-registered
    /// relation). The name map is untouched; mutation bumps the
    /// relation's [`ProbDb::version`] stamp, which is how live plan
    /// caches notice the data changed.
    ///
    /// When the relation is shared with another catalog generation (see
    /// [`Catalog::get_shared`]) this copies it first, so mutation never
    /// reaches behind a published snapshot.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut ProbDb> {
        self.by_name
            .get(name)
            .copied()
            .map(|i| Arc::make_mut(&mut self.relations[i].1))
    }

    /// Like [`Catalog::get`] but with a typed error naming the miss.
    pub fn resolve(&self, name: &str) -> Result<&ProbDb, ProbDbError> {
        self.get(name)
            .ok_or_else(|| ProbDbError::UnknownRelation(name.to_string()))
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True when the catalog has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Iterates `(name, relation)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ProbDb)> {
        self.relations
            .iter()
            .map(|(n, db)| (n.as_str(), db.as_ref()))
    }

    /// Are `left.l_attr` and `right.r_attr` join-compatible — do their
    /// attribute dictionaries intern the same labels in the same order?
    ///
    /// When they do, equal [`mrsl_relation::ValueId`]s mean equal values
    /// across the two relations and joins can run directly on the encoded
    /// columns.
    pub fn join_compatible(&self, left: &str, l_attr: AttrId, right: &str, r_attr: AttrId) -> bool {
        let (Some(l), Some(r)) = (self.get(left), self.get(right)) else {
            return false;
        };
        let (ls, rs) = (l.schema(), r.schema());
        l_attr.index() < ls.attr_count()
            && r_attr.index() < rs.attr_count()
            && same_dictionary(ls.attr(l_attr), rs.attr(r_attr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrsl_relation::schema::fig1_schema;
    use mrsl_relation::Schema;

    #[test]
    fn add_get_and_iterate_in_insertion_order() {
        let mut cat = Catalog::new();
        assert!(cat.is_empty());
        cat.add("b", ProbDb::new(fig1_schema())).unwrap();
        cat.add("a", ProbDb::new(fig1_schema())).unwrap();
        assert_eq!(cat.len(), 2);
        let names: Vec<&str> = cat.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["b", "a"]);
        assert!(cat.get("a").is_some());
        assert!(cat.get("c").is_none());
        assert!(matches!(
            cat.resolve("c"),
            Err(ProbDbError::UnknownRelation(n)) if n == "c"
        ));
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut cat = Catalog::new();
        cat.add("r", ProbDb::new(fig1_schema())).unwrap();
        let e = cat.add("r", ProbDb::new(fig1_schema()));
        assert!(matches!(e, Err(ProbDbError::DuplicateRelation(n)) if n == "r"));
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn clones_share_relations_until_mutated() {
        use mrsl_relation::CompleteTuple;

        let mut cat = Catalog::new();
        cat.add("a", ProbDb::new(fig1_schema())).unwrap();
        cat.add("b", ProbDb::new(fig1_schema())).unwrap();
        let next = cat.clone();
        assert!(Arc::ptr_eq(
            &cat.get_shared("a").unwrap(),
            &next.get_shared("a").unwrap()
        ));

        let mut next = next;
        next.get_mut("a")
            .unwrap()
            .push_certain(CompleteTuple::from_values(vec![0, 0, 0, 0]))
            .unwrap();
        // The mutated relation diverged; the untouched one is still shared
        // and kept its version stamps.
        assert!(!Arc::ptr_eq(
            &cat.get_shared("a").unwrap(),
            &next.get_shared("a").unwrap()
        ));
        assert!(Arc::ptr_eq(
            &cat.get_shared("b").unwrap(),
            &next.get_shared("b").unwrap()
        ));
        assert_eq!(
            cat.get("b").unwrap().version(),
            next.get("b").unwrap().version()
        );
        // The original never sees the write.
        assert_eq!(cat.get("a").unwrap().certain().len(), 0);
        assert_eq!(next.get("a").unwrap().certain().len(), 1);
    }

    #[test]
    fn join_compatibility_compares_dictionaries() {
        let left = Schema::builder()
            .attribute("k", ["x", "y"])
            .attribute("v", ["0", "1", "2"])
            .build()
            .unwrap();
        let right = Schema::builder()
            .attribute("w", ["a", "b"])
            .attribute("k", ["x", "y"])
            .build()
            .unwrap();
        let mut cat = Catalog::new();
        cat.add("l", ProbDb::new(left)).unwrap();
        cat.add("r", ProbDb::new(right)).unwrap();
        // Same labels, same order: compatible.
        assert!(cat.join_compatible("l", AttrId(0), "r", AttrId(1)));
        // Different domains: incompatible.
        assert!(!cat.join_compatible("l", AttrId(1), "r", AttrId(1)));
        assert!(!cat.join_compatible("l", AttrId(0), "r", AttrId(0)));
        // Out-of-range attribute or unknown relation: incompatible.
        assert!(!cat.join_compatible("l", AttrId(9), "r", AttrId(1)));
        assert!(!cat.join_compatible("l", AttrId(0), "missing", AttrId(1)));
    }
}
