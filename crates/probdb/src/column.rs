//! Columnar block storage: dictionary-encoded columns plus row bitmaps.
//!
//! [`ProbDb`](crate::ProbDb) keeps, next to its row-oriented tuples, a
//! [`ColumnStore`]: one `u16` column per attribute for the certain tuples
//! and one per attribute for the flattened block alternatives, with the
//! alternative probabilities and block boundaries alongside. Predicate
//! evaluation then runs as tight loops over contiguous `u16` slices into a
//! [`Bitmap`] (one bit per row) instead of per-tuple pointer chasing —
//! the vectorized path behind the exact query evaluators.
//!
//! The store is append-only and kept in sync by the `ProbDb` push paths;
//! it is never serialized (it is rebuilt when a database is deserialized).

use crate::block::Block;
use mrsl_relation::AttrId;
use std::ops::Range;

/// Number of value-range shards every relation's shard index partitions
/// its leading attribute's dictionary into. Fixed (rather than derived
/// from the thread count) so shard membership — and therefore the
/// per-shard version stamps of [`crate::ProbDb`] — never depends on the
/// execution environment.
pub const SHARD_COUNT: usize = 16;

/// A fixed partition of a dictionary-encoded key domain into
/// [`SHARD_COUNT`] contiguous value ranges.
///
/// The map is pure arithmetic over the dictionary cardinality: shard `s`
/// covers the values `v` with `s·card ≤ v·SHARD_COUNT < (s+1)·card`, so
/// [`ShardMap::shard_of`] and [`ShardMap::value_range`] are exact
/// inverses and need no stored boundaries. Small domains simply leave
/// trailing shards empty. [`crate::ProbDb`] keeps one version stamp per
/// shard of its leading attribute (`AttrId(0)`), bumped by every push
/// that lands a row in the shard — the incremental-maintenance index
/// behind the plan cache's register patching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    card: u32,
}

impl ShardMap {
    /// A map over a dictionary of `card` values (clamped to at least 1).
    pub fn new(card: usize) -> Self {
        Self {
            card: (card.max(1) as u32).min(u16::MAX as u32 + 1),
        }
    }

    /// The shard holding dictionary value `v`.
    #[inline]
    pub fn shard_of(&self, v: u16) -> usize {
        ((v as usize * SHARD_COUNT) / self.card as usize).min(SHARD_COUNT - 1)
    }

    /// The half-open dictionary value range `[lo, hi)` shard `s` covers
    /// (`u32` bounds: `hi` may be one past the largest `u16`).
    #[inline]
    pub fn value_range(&self, s: usize) -> Range<u32> {
        debug_assert!(s < SHARD_COUNT);
        let card = self.card as usize;
        let lo = (s * card).div_ceil(SHARD_COUNT) as u32;
        let hi = ((s + 1) * card).div_ceil(SHARD_COUNT) as u32;
        lo..hi
    }
}

/// A dense bitset with one bit per row of a [`ColumnSet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    len: usize,
    words: Vec<u64>,
}

impl Bitmap {
    fn word_count(len: usize) -> usize {
        len.div_ceil(64)
    }

    /// All-zero bitmap of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            len,
            words: vec![0; Self::word_count(len)],
        }
    }

    /// All-one bitmap of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut bm = Self {
            len,
            words: vec![u64::MAX; Self::word_count(len)],
        };
        bm.mask_tail();
        bm
    }

    /// Builds a bitmap by testing every element of `col`, packing the
    /// results 64 rows per word.
    pub fn from_test(col: &[u16], test: impl Fn(u16) -> bool) -> Self {
        let mut words = Vec::with_capacity(Self::word_count(col.len()));
        for chunk in col.chunks(64) {
            let mut w = 0u64;
            for (j, &x) in chunk.iter().enumerate() {
                w |= (test(x) as u64) << j;
            }
            words.push(w);
        }
        Self {
            len: col.len(),
            words,
        }
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap has no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `(word span, first-word mask, last-word mask)` of a non-empty bit
    /// range: whole `u64` words with the edge words masked down to the bits
    /// actually inside the range.
    #[inline]
    fn word_span(range: &Range<usize>) -> (Range<usize>, u64, u64) {
        let first = range.start / 64;
        let last = (range.end - 1) / 64;
        let head = u64::MAX << (range.start % 64);
        let tail = u64::MAX >> (63 - (range.end - 1) % 64);
        (first..last + 1, head, tail)
    }

    /// Number of set bits within `range` (rows of one block, typically).
    ///
    /// Runs on whole `u64` words (`count_ones` per word, masked edge
    /// words), not bit by bit.
    pub fn count_ones_in(&self, range: Range<usize>) -> usize {
        debug_assert!(range.end <= self.len);
        if range.start >= range.end {
            return 0;
        }
        let (words, head, tail) = Self::word_span(&range);
        if words.len() == 1 {
            return (self.words[words.start] & head & tail).count_ones() as usize;
        }
        let mut count = (self.words[words.start] & head).count_ones() as usize;
        for w in &self.words[words.start + 1..words.end - 1] {
            count += w.count_ones() as usize;
        }
        count + (self.words[words.end - 1] & tail).count_ones() as usize
    }

    /// True when any bit in `range` is set; same word-masked traversal as
    /// [`Bitmap::count_ones_in`], short-circuiting on the first hit.
    pub fn any_in(&self, range: Range<usize>) -> bool {
        debug_assert!(range.end <= self.len);
        if range.start >= range.end {
            return false;
        }
        let (words, head, tail) = Self::word_span(&range);
        if words.len() == 1 {
            return self.words[words.start] & head & tail != 0;
        }
        if self.words[words.start] & head != 0 {
            return true;
        }
        if self.words[words.start + 1..words.end - 1]
            .iter()
            .any(|&w| w != 0)
        {
            return true;
        }
        self.words[words.end - 1] & tail != 0
    }

    /// `self &= other`.
    pub fn and_assign(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.len, other.len);
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
    }

    /// `self |= other`.
    pub fn or_assign(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.len, other.len);
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// `self = !self`.
    pub fn not_assign(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Iterates the indices of set bits.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(|&i| self.get(i))
    }
}

/// A column-major table: one dictionary-encoded `u16` column per attribute.
#[derive(Debug, Clone, Default)]
pub struct ColumnSet {
    rows: usize,
    cols: Vec<Vec<u16>>,
}

impl ColumnSet {
    /// An empty set with `arity` columns.
    pub fn new(arity: usize) -> Self {
        Self {
            rows: 0,
            cols: vec![Vec::new(); arity],
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    /// Panics (debug) when `values` does not match the arity.
    pub(crate) fn push_row(&mut self, values: &[u16]) {
        debug_assert_eq!(values.len(), self.cols.len());
        for (col, &v) in self.cols.iter_mut().zip(values) {
            col.push(v);
        }
        self.rows += 1;
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (schema arity).
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// The column of attribute `a`.
    #[inline]
    pub fn col(&self, a: AttrId) -> &[u16] {
        &self.cols[a.index()]
    }
}

/// The columnar mirror of a [`ProbDb`](crate::ProbDb): certain-tuple
/// columns, flattened alternative columns with probabilities, and block
/// boundaries.
#[derive(Debug, Clone)]
pub struct ColumnStore {
    certain: ColumnSet,
    alternatives: ColumnSet,
    alt_probs: Vec<f64>,
    /// `block_offsets[b]..block_offsets[b + 1]` are block `b`'s rows in
    /// the alternative columns; always starts with 0.
    block_offsets: Vec<usize>,
}

impl ColumnStore {
    /// An empty store over `arity` attributes.
    pub fn new(arity: usize) -> Self {
        Self {
            certain: ColumnSet::new(arity),
            alternatives: ColumnSet::new(arity),
            alt_probs: Vec::new(),
            block_offsets: vec![0],
        }
    }

    /// Mirrors a certain-tuple push.
    pub(crate) fn push_certain(&mut self, values: &[u16]) {
        self.certain.push_row(values);
    }

    /// Mirrors a block push.
    pub(crate) fn push_block(&mut self, block: &Block) {
        for a in block.alternatives() {
            self.alternatives.push_row(a.tuple.raw());
            self.alt_probs.push(a.prob);
        }
        self.block_offsets.push(self.alternatives.rows());
    }

    /// Overwrites block `b`'s alternative probabilities (mass update; the
    /// caller — [`ProbDb::set_block_masses`](crate::ProbDb::set_block_masses)
    /// — validates the simplex constraint first).
    pub(crate) fn set_block_probs(&mut self, b: usize, probs: &[f64]) {
        let range = self.block_range(b);
        debug_assert_eq!(range.len(), probs.len());
        self.alt_probs[range].copy_from_slice(probs);
    }

    /// The certain-tuple columns.
    pub fn certain(&self) -> &ColumnSet {
        &self.certain
    }

    /// The flattened alternative columns (all blocks, block order).
    pub fn alternatives(&self) -> &ColumnSet {
        &self.alternatives
    }

    /// Probability of each alternative row, aligned with
    /// [`ColumnStore::alternatives`].
    pub fn alt_probs(&self) -> &[f64] {
        &self.alt_probs
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.block_offsets.len() - 1
    }

    /// Alternative-row range of block `b` (by position, not key).
    #[inline]
    pub fn block_range(&self, b: usize) -> Range<usize> {
        self.block_offsets[b]..self.block_offsets[b + 1]
    }

    /// Per-block probability that the block's true tuple lands on a set
    /// bit of `matches` (a bitmap over the alternative rows).
    pub fn block_probs(&self, matches: &Bitmap) -> Vec<f64> {
        debug_assert_eq!(matches.len(), self.alternatives.rows());
        (0..self.block_count())
            .map(|b| {
                self.block_range(b)
                    .filter(|&i| matches.get(i))
                    .map(|i| self.alt_probs[i])
                    .sum()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Alternative;
    use mrsl_relation::CompleteTuple;

    fn block(key: usize, alts: &[(&[u16], f64)]) -> Block {
        Block::new(
            key,
            alts.iter()
                .map(|(values, prob)| Alternative {
                    tuple: CompleteTuple::from_values(values.to_vec()),
                    prob: *prob,
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn bitmap_ops_respect_length() {
        let mut a = Bitmap::zeros(70);
        a.set(0);
        a.set(69);
        assert_eq!(a.count_ones(), 2);
        assert!(a.get(69) && !a.get(68));
        let ones = Bitmap::ones(70);
        assert_eq!(ones.count_ones(), 70);
        a.not_assign();
        assert_eq!(a.count_ones(), 68);
        a.and_assign(&ones);
        assert_eq!(a.count_ones(), 68);
        a.or_assign(&ones);
        assert_eq!(a.count_ones(), 70);
        assert_eq!(Bitmap::zeros(0).count_ones(), 0);
    }

    #[test]
    fn bitmap_from_test_packs_words() {
        let col: Vec<u16> = (0..130).map(|i| (i % 3) as u16).collect();
        let bm = Bitmap::from_test(&col, |x| x == 0);
        assert_eq!(bm.len(), 130);
        for (i, &x) in col.iter().enumerate() {
            assert_eq!(bm.get(i), x == 0, "row {i}");
        }
        assert_eq!(bm.count_ones(), col.iter().filter(|&&x| x == 0).count());
        assert_eq!(bm.count_ones_in(0..3), 1);
        assert!(bm.any_in(0..1));
        assert!(!bm.any_in(1..3));
        assert_eq!(bm.iter_ones().take(2).collect::<Vec<_>>(), vec![0, 3]);
    }

    #[test]
    fn word_masked_range_kernels_match_naive_at_word_edges() {
        // A bit pattern with structure around every word boundary.
        let len = 200;
        let mut bm = Bitmap::zeros(len);
        for i in 0..len {
            if i % 3 == 0 || i == 63 || i == 64 || i == 127 || i == 191 {
                bm.set(i);
            }
        }
        let naive_count = |r: std::ops::Range<usize>| r.filter(|&i| bm.get(i)).count();
        let ranges = [
            0..0,
            0..1,
            0..63,
            0..64,
            0..65,
            1..63,
            63..64,
            63..65,
            64..128,
            65..127,
            100..100,
            126..130,
            5..198,
            0..200,
            199..200,
        ];
        for r in ranges {
            assert_eq!(
                bm.count_ones_in(r.clone()),
                naive_count(r.clone()),
                "count in {r:?}"
            );
            assert_eq!(
                bm.any_in(r.clone()),
                naive_count(r.clone()) > 0,
                "any in {r:?}"
            );
        }
        // A sparse bitmap where only middle whole-words decide `any_in`.
        let mut sparse = Bitmap::zeros(300);
        sparse.set(130);
        assert!(sparse.any_in(64..192));
        assert!(!sparse.any_in(64..130));
        assert!(!sparse.any_in(131..300));
        assert_eq!(sparse.count_ones_in(0..300), 1);
    }

    #[test]
    fn shard_map_ranges_and_membership_agree() {
        for card in [1usize, 2, 5, 16, 17, 100, 65_536] {
            let map = ShardMap::new(card);
            // Ranges tile the domain exactly, in order.
            let mut next = 0u32;
            for s in 0..SHARD_COUNT {
                let r = map.value_range(s);
                assert_eq!(r.start, next, "card {card} shard {s}");
                assert!(r.end >= r.start);
                next = r.end;
            }
            assert_eq!(next as usize, card, "card {card}");
            // Membership is the inverse of the ranges.
            let probe = (0..card.min(4096))
                .chain(card.saturating_sub(8)..card)
                .map(|v| v as u16);
            for v in probe {
                let s = map.shard_of(v);
                assert!(
                    map.value_range(s).contains(&(v as u32)),
                    "card {card} value {v} shard {s}"
                );
            }
        }
    }

    #[test]
    fn column_store_mirrors_pushes() {
        let mut store = ColumnStore::new(2);
        store.push_certain(&[1, 2]);
        store.push_certain(&[3, 4]);
        store.push_block(&block(0, &[(&[0, 0], 0.25), (&[0, 1], 0.75)]));
        store.push_block(&block(1, &[(&[1, 1], 1.0)]));
        assert_eq!(store.certain().rows(), 2);
        assert_eq!(store.certain().col(AttrId(1)), &[2, 4]);
        assert_eq!(store.alternatives().rows(), 3);
        assert_eq!(store.alternatives().col(AttrId(0)), &[0, 0, 1]);
        assert_eq!(store.block_count(), 2);
        assert_eq!(store.block_range(0), 0..2);
        assert_eq!(store.block_range(1), 2..3);

        // Block probs from a bitmap selecting the second column = 1.
        let bm = Bitmap::from_test(store.alternatives().col(AttrId(1)), |x| x == 1);
        let probs = store.block_probs(&bm);
        assert_eq!(probs.len(), 2);
        assert!((probs[0] - 0.75).abs() < 1e-12);
        assert!((probs[1] - 1.0).abs() < 1e-12);
    }
}
