//! Monte-Carlo query evaluation over sampled worlds.
//!
//! Exponentially many worlds make enumeration infeasible beyond toy sizes;
//! sampling worlds gives unbiased estimates of any world-level aggregate
//! (the MCDB approach the paper cites as related work). The planner
//! ([`crate::plan`]) falls back to these estimators when the exact path is
//! out of budget, and the test suite uses them as an independent
//! cross-check of the exact evaluators in [`crate::query`].
//!
//! The estimators compile the predicate **once** into a
//! [`Bitmap`] over the database's columnar store;
//! each sampled world then only draws one alternative index per block
//! (through the same [`choose_weighted`] primitive as
//! [`crate::world::sample_world`], so choices are identical for identical
//! RNG states) and tests the corresponding bit — no tuples are cloned and
//! no predicate is re-evaluated inside the sampling loop.

use crate::column::Bitmap;
use crate::database::ProbDb;
use crate::query::Predicate;
use crate::world::choose_weighted;
use crate::ProbDbError;
use mrsl_util::{seeded_rng, OnlineStats};
use rand::Rng;

/// A predicate compiled against one database's columnar store.
#[derive(Debug, Clone)]
pub(crate) struct CompiledSelection {
    /// Number of certain rows satisfying the predicate (they count in
    /// every sampled world).
    pub certain_count: usize,
    /// One bit per alternative row: does the alternative satisfy it?
    pub alt_matches: Bitmap,
}

impl CompiledSelection {
    pub(crate) fn compile(db: &ProbDb, pred: &Predicate) -> Self {
        Self {
            certain_count: pred.eval_columns(db.columns().certain()).count_ones(),
            alt_matches: pred.eval_columns(db.columns().alternatives()),
        }
    }

    /// Samples one world's `COUNT(*) WHERE pred` by drawing one
    /// alternative per block and testing its bit.
    fn sample_count<R: Rng + ?Sized>(&self, db: &ProbDb, rng: &mut R) -> usize {
        let cols = db.columns();
        let mut count = self.certain_count;
        for b in 0..cols.block_count() {
            let range = cols.block_range(b);
            let chosen = choose_weighted(cols.alt_probs()[range.clone()].iter().copied(), rng);
            if self.alt_matches.get(range.start + chosen) {
                count += 1;
            }
        }
        count
    }
}

/// Draws one world's alternative choice per block, appending the chosen
/// *alternative row id* (block offset + choice) per block to `out`.
///
/// This is the per-relation half of the multi-relation joint-world sampler
/// in [`crate::plan`]: one call per catalog relation samples one joint
/// world. It consumes exactly one uniform draw per block through
/// [`choose_weighted`], so with a single relation the draws match
/// [`crate::world::sample_world`] and the compiled estimators below
/// choice for choice.
pub(crate) fn sample_block_rows<R: Rng + ?Sized>(db: &ProbDb, rng: &mut R, out: &mut Vec<usize>) {
    let cols = db.columns();
    for b in 0..cols.block_count() {
        let range = cols.block_range(b);
        let chosen = choose_weighted(cols.alt_probs()[range.clone()].iter().copied(), rng);
        out.push(range.start + chosen);
    }
}

/// Monte-Carlo estimate of the expected count of tuples satisfying `pred`.
///
/// Returns `(mean, std_error)` over `n` sampled worlds, or
/// [`ProbDbError::NoSamples`] when `n` is 0.
pub fn mc_expected_count(
    db: &ProbDb,
    pred: &Predicate,
    n: usize,
    seed: u64,
) -> Result<(f64, f64), ProbDbError> {
    if n == 0 {
        return Err(ProbDbError::NoSamples);
    }
    let sel = CompiledSelection::compile(db, pred);
    Ok(mc_expected_count_compiled(db, &sel, n, seed))
}

pub(crate) fn mc_expected_count_compiled(
    db: &ProbDb,
    sel: &CompiledSelection,
    n: usize,
    seed: u64,
) -> (f64, f64) {
    let mut rng = seeded_rng(seed);
    let mut stats = OnlineStats::new();
    for _ in 0..n {
        stats.push(sel.sample_count(db, &mut rng) as f64);
    }
    (stats.mean(), stats.std_dev() / (n as f64).sqrt())
}

/// Monte-Carlo estimate of the count distribution `P(count = k)`.
///
/// Returns a histogram over `0..=certain + blocks`, or
/// [`ProbDbError::NoSamples`] when `n` is 0.
pub fn mc_count_distribution(
    db: &ProbDb,
    pred: &Predicate,
    n: usize,
    seed: u64,
) -> Result<Vec<f64>, ProbDbError> {
    if n == 0 {
        return Err(ProbDbError::NoSamples);
    }
    let sel = CompiledSelection::compile(db, pred);
    Ok(mc_count_distribution_compiled(db, &sel, n, seed))
}

pub(crate) fn mc_count_distribution_compiled(
    db: &ProbDb,
    sel: &CompiledSelection,
    n: usize,
    seed: u64,
) -> Vec<f64> {
    let mut rng = seeded_rng(seed);
    let max_count = db.certain().len() + db.blocks().len();
    let mut hist = vec![0.0f64; max_count + 1];
    for _ in 0..n {
        hist[sel.sample_count(db, &mut rng)] += 1.0;
    }
    hist.iter_mut().for_each(|h| *h /= n as f64);
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Alternative, Block};
    use crate::query::{count_distribution, expected_count};
    use crate::world::sample_world;
    use mrsl_relation::schema::fig1_schema;
    use mrsl_relation::{AttrId, CompleteTuple, ValueId};

    fn db() -> ProbDb {
        let alt = |values: Vec<u16>, prob: f64| Alternative {
            tuple: CompleteTuple::from_values(values),
            prob,
        };
        let mut db = ProbDb::new(fig1_schema());
        db.push_certain(CompleteTuple::from_values(vec![0, 0, 1, 0]))
            .unwrap();
        db.push_block(
            Block::new(
                0,
                vec![alt(vec![0, 0, 0, 0], 0.3), alt(vec![0, 0, 1, 0], 0.7)],
            )
            .unwrap(),
        )
        .unwrap();
        db.push_block(
            Block::new(
                1,
                vec![alt(vec![1, 0, 1, 0], 0.6), alt(vec![1, 0, 0, 1], 0.4)],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn mc_expected_count_agrees_with_exact() {
        let db = db();
        let pred = Predicate::any().and_eq(AttrId(2), ValueId(1));
        let exact = expected_count(&db, &pred);
        let (mc, se) = mc_expected_count(&db, &pred, 20_000, 7).unwrap();
        assert!(
            (mc - exact).abs() < 4.0 * se + 0.02,
            "{mc} vs {exact} (se {se})"
        );
    }

    #[test]
    fn mc_count_distribution_agrees_with_exact() {
        let db = db();
        let pred = Predicate::any().and_eq(AttrId(2), ValueId(1));
        let exact = count_distribution(&db, &pred);
        let mc = mc_count_distribution(&db, &pred, 30_000, 11).unwrap();
        for (k, &e) in exact.iter().enumerate() {
            assert!((mc[k] - e).abs() < 0.02, "k={k}: {} vs {e}", mc[k]);
        }
    }

    #[test]
    fn compiled_sampler_matches_world_sampling_draw_for_draw() {
        // Same seed → the bitmap sampler and sample_world choose the same
        // alternatives, so per-sample counts are identical.
        let db = db();
        let pred = Predicate::eq(AttrId(2), ValueId(1)).or(Predicate::eq(AttrId(3), ValueId(1)));
        let sel = CompiledSelection::compile(&db, &pred);
        let mut rng_a = mrsl_util::seeded_rng(42);
        let mut rng_b = mrsl_util::seeded_rng(42);
        for _ in 0..200 {
            let fast = sel.sample_count(&db, &mut rng_a);
            let w = sample_world(&db, &mut rng_b);
            let slow = w.tuples.iter().filter(|t| pred.eval(t)).count();
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn zero_samples_is_an_error_not_a_panic() {
        let db = db();
        assert!(matches!(
            mc_expected_count(&db, &Predicate::any(), 0, 0),
            Err(ProbDbError::NoSamples)
        ));
        assert!(matches!(
            mc_count_distribution(&db, &Predicate::any(), 0, 0),
            Err(ProbDbError::NoSamples)
        ));
    }
}
