//! Monte-Carlo query evaluation over sampled worlds.
//!
//! Exponentially many worlds make enumeration infeasible beyond toy sizes;
//! sampling worlds gives unbiased estimates of any world-level aggregate
//! (the MCDB approach the paper cites as related work). Used here mainly as
//! an independent cross-check of the exact evaluator in [`crate::query`].

use crate::database::ProbDb;
use crate::query::Predicate;
use crate::world::sample_world;
use mrsl_util::{seeded_rng, OnlineStats};

/// Monte-Carlo estimate of the expected count of tuples satisfying `pred`.
///
/// Returns `(mean, std_error)` over `n` sampled worlds.
pub fn mc_expected_count(db: &ProbDb, pred: &Predicate, n: usize, seed: u64) -> (f64, f64) {
    assert!(n > 0, "need at least one sample");
    let mut rng = seeded_rng(seed);
    let mut stats = OnlineStats::new();
    for _ in 0..n {
        let w = sample_world(db, &mut rng);
        let c = w.tuples.iter().filter(|t| pred.eval(t)).count();
        stats.push(c as f64);
    }
    (stats.mean(), stats.std_dev() / (n as f64).sqrt())
}

/// Monte-Carlo estimate of the count distribution `P(count = k)`.
pub fn mc_count_distribution(db: &ProbDb, pred: &Predicate, n: usize, seed: u64) -> Vec<f64> {
    assert!(n > 0, "need at least one sample");
    let mut rng = seeded_rng(seed);
    let max_count = db.certain().len() + db.blocks().len();
    let mut hist = vec![0.0f64; max_count + 1];
    for _ in 0..n {
        let w = sample_world(db, &mut rng);
        let c = w.tuples.iter().filter(|t| pred.eval(t)).count();
        hist[c] += 1.0;
    }
    hist.iter_mut().for_each(|h| *h /= n as f64);
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Alternative, Block};
    use crate::query::{count_distribution, expected_count};
    use mrsl_relation::schema::fig1_schema;
    use mrsl_relation::{AttrId, CompleteTuple, ValueId};

    fn db() -> ProbDb {
        let alt = |values: Vec<u16>, prob: f64| Alternative {
            tuple: CompleteTuple::from_values(values),
            prob,
        };
        let mut db = ProbDb::new(fig1_schema());
        db.push_certain(CompleteTuple::from_values(vec![0, 0, 1, 0]))
            .unwrap();
        db.push_block(
            Block::new(
                0,
                vec![alt(vec![0, 0, 0, 0], 0.3), alt(vec![0, 0, 1, 0], 0.7)],
            )
            .unwrap(),
        )
        .unwrap();
        db.push_block(
            Block::new(
                1,
                vec![alt(vec![1, 0, 1, 0], 0.6), alt(vec![1, 0, 0, 1], 0.4)],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn mc_expected_count_agrees_with_exact() {
        let db = db();
        let pred = Predicate::any().and_eq(AttrId(2), ValueId(1));
        let exact = expected_count(&db, &pred);
        let (mc, se) = mc_expected_count(&db, &pred, 20_000, 7);
        assert!(
            (mc - exact).abs() < 4.0 * se + 0.02,
            "{mc} vs {exact} (se {se})"
        );
    }

    #[test]
    fn mc_count_distribution_agrees_with_exact() {
        let db = db();
        let pred = Predicate::any().and_eq(AttrId(2), ValueId(1));
        let exact = count_distribution(&db, &pred);
        let mc = mc_count_distribution(&db, &pred, 30_000, 11);
        for (k, &e) in exact.iter().enumerate() {
            assert!((mc[k] - e).abs() < 0.02, "k={k}: {} vs {e}", mc[k]);
        }
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        mc_expected_count(&db(), &Predicate::any(), 0, 0);
    }
}
