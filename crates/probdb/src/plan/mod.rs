//! Logical → physical query planning over the catalog.
//!
//! Gatterbauer & Suciu's lifted-inference line shows the useful split for
//! probabilistic query answering: *safe* plans admit fast extensional
//! evaluation, everything else needs sampling. For multi-relation
//! conjunctive queries the safe shapes are the **hierarchical** ones —
//! join-variable classes whose relation sets nest or are disjoint — and
//! over BID tables safety additionally needs every block's selected
//! alternatives to agree on the join keys (see [`mod@crate::algebra`] and
//! the classifier in this module's `classify` submodule). The
//! [`CatalogEngine`] routes accordingly:
//!
//! * hierarchical, key-consistent joins and all single-relation selection
//!   statistics evaluate exactly on the columnar stores
//!   ([`PlanClass::Liftable`]);
//! * expected counts are liftable for *every* shape (linearity of
//!   expectation) and stay exact;
//! * non-hierarchical shapes ([`PlanClass::NonHierarchical`]),
//!   key-straddling blocks ([`PlanClass::KeyCorrelated`]), statistic/shape
//!   combinations with no extensional evaluator
//!   ([`PlanClass::UnliftableStatistic`]) and out-of-budget DPs
//!   ([`PlanClass::DpBudgetExceeded`]) sample joint worlds instead;
//! * unsafe-but-dissociable queries ([`PlanClass::Dissociable`]) —
//!   non-hierarchical shapes and aliased self-joins with key-unique
//!   blocks — additionally answer [`Statistic::ProbabilityBounds`]
//!   with deterministic dissociation brackets (Gatterbauer & Suciu),
//!   sampling only when the bracket exceeds
//!   [`QueryEngineConfig::bounds_tolerance`] ([`EvalPath::Hybrid`]);
//! * [`QueryEngineConfig::force_monte_carlo`] routes every estimable
//!   query through sampling (cross-checking, demos).
//!
//! Every evaluation returns an [`EvalReport`] with the choice, the
//! per-relation scan statistics, and — for joins — the [`SafePlan`]
//! decomposition that justified (or failed) the exact route.
//!
//! Liftable plans are additionally *differentiable*: the safe plan is a
//! pure product/complement tree over the block-alternative masses, and
//! [`CatalogEngine::probability_with_gradient`] runs a reverse-mode
//! backward sweep over the interpreter recursion to return `∂P(Q)/∂m`
//! for every alternative mass — the machinery tuple-probability
//! learning (`mrsl_learn`) descends on.

pub(crate) mod classify;
mod compile;
mod dissociate;
mod exact;
mod grad;
mod mc;
mod report;
mod vm;

pub(crate) use compile::cache_tag as statistic_cache_tag;
pub use compile::{PlanCache, PlanCacheStats};
pub use dissociate::dissociation_search_count;
pub use grad::MassGradients;
pub use report::{
    EvalPath, EvalReport, PlanClass, PlanRoute, ProbabilityBounds, RelationStats, SafePlan,
};

use crate::algebra::{Flattened, Query, Statistic};
use crate::catalog::Catalog;
use crate::database::ProbDb;
use crate::montecarlo::{
    mc_count_distribution_compiled, mc_expected_count_compiled, CompiledSelection,
};
use crate::query::{self, RankedTuple};
use crate::ProbDbError;
use classify::{
    alias_groups, alias_live_mismatch, classify, key_straddle, resolve, CompiledTerm, Resolved,
};
use compile::{cache_tag, CachedPlan, CompiledProgram};
use dissociate::BoundsPlan;
use mrsl_relation::AttrId;
use std::sync::Arc;

/// Tunables of the query engines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryEngineConfig {
    /// Worlds sampled on the Monte-Carlo path.
    pub mc_samples: usize,
    /// Seed for the Monte-Carlo path.
    pub mc_seed: u64,
    /// Largest block count for which the O(blocks²) exact count
    /// distribution stays on the exact path.
    pub max_exact_dp_blocks: usize,
    /// Route every estimable query through Monte Carlo regardless of
    /// liftability (ranking and value marginals have no sampling
    /// estimator and stay exact).
    pub force_monte_carlo: bool,
    /// Widest dissociation bracket [`Statistic::ProbabilityBounds`]
    /// accepts without refinement. Brackets wider than this trigger a
    /// Monte-Carlo point estimate inside the bracket
    /// ([`EvalPath::Hybrid`]); set it to `1.0` to never sample, `0.0` to
    /// always refine non-collapsed brackets.
    pub bounds_tolerance: f64,
    /// Compile [`Statistic::Probability`], [`Statistic::ProbabilityBounds`]
    /// and [`Statistic::ExpectedCount`] plans to bytecode executed by the
    /// vectorized VM, and reuse them through the shape-keyed [`PlanCache`]
    /// ([`PlanRoute::Compiled`] / [`PlanRoute::CacheHit`]). Off, every
    /// answer comes from the reference interpreter
    /// ([`PlanRoute::Interpreted`]).
    pub compile_plans: bool,
    /// Capacity (in plans) of the [`PlanCache`] new engines construct;
    /// ignored by [`CatalogEngine::with_plan_cache`], which brings its
    /// own.
    pub plan_cache_capacity: usize,
    /// Key-range shard count for parallel plan execution. `0` (the
    /// default) auto-configures per fold: a fold shards 16 ways only
    /// when it spans at least a few thousand rows *and* both the ambient
    /// rayon pool and the host have more than one thread — small folds
    /// stay sequential regardless of pool size, because the fan-out
    /// overhead dwarfs them. Any nonzero value forces that many shards
    /// even on one thread (useful for tests and overhead measurements).
    /// Answers are **bit-identical at every setting** — sharding fixes
    /// the multiplication order to the sequential fold's.
    pub shards: usize,
}

impl Default for QueryEngineConfig {
    fn default() -> Self {
        Self {
            mc_samples: 10_000,
            mc_seed: 0x5eed,
            max_exact_dp_blocks: 4_096,
            force_monte_carlo: false,
            bounds_tolerance: 0.05,
            compile_plans: true,
            plan_cache_capacity: 128,
            shards: 0,
        }
    }
}

/// Answer of a planned query.
#[derive(Debug, Clone)]
pub enum QueryAnswer {
    /// Per-block probabilities, in block order.
    Marginals(Vec<f64>),
    /// A scalar count estimate; `std_error` is `Some` on the Monte-Carlo
    /// path.
    Count {
        /// Expected count (exact or estimated).
        mean: f64,
        /// Standard error of the estimate (Monte Carlo only).
        std_error: Option<f64>,
    },
    /// `d[k] = P(count = k)` (or a value marginal's distribution).
    Distribution(Vec<f64>),
    /// Ranked tuples, most probable first.
    Ranked(Vec<RankedTuple>),
    /// `P(result non-empty)`; `std_error` is `Some` on the Monte-Carlo
    /// path.
    Probability {
        /// The probability (exact or estimated).
        p: f64,
        /// Standard error of the estimate (Monte Carlo only).
        std_error: Option<f64>,
    },
    /// Guaranteed `[lower, upper]` brackets on `P(result non-empty)`,
    /// with a Monte-Carlo point estimate when the bracket was wider than
    /// [`QueryEngineConfig::bounds_tolerance`].
    Bounds(ProbabilityBounds),
}

/// The query subsystem's entry point: plans a [`Query`] tree against a
/// [`Catalog`] and evaluates the requested [`Statistic`] on the chosen
/// physical path.
///
/// ```
/// use mrsl_probdb::{Catalog, CatalogEngine, Predicate, ProbDb, Query, Statistic};
/// use mrsl_relation::Schema;
///
/// let schema = Schema::builder()
///     .attribute("k", ["a", "b"])
///     .build()
///     .unwrap();
/// let mut catalog = Catalog::new();
/// catalog.add("r", ProbDb::new(schema)).unwrap();
///
/// let engine = CatalogEngine::new(&catalog);
/// let (p, report) = engine.probability(&Query::scan("r")).unwrap();
/// assert_eq!(p, 0.0); // empty relation: no result tuple exists
/// assert_eq!(report.relations[0].relation, "r");
/// ```
#[derive(Debug, Clone)]
pub struct CatalogEngine<'a> {
    catalog: &'a Catalog,
    config: QueryEngineConfig,
    cache: Arc<PlanCache>,
}

impl<'a> CatalogEngine<'a> {
    /// An engine with default configuration.
    pub fn new(catalog: &'a Catalog) -> Self {
        Self::with_config(catalog, QueryEngineConfig::default())
    }

    /// An engine with explicit configuration and a fresh plan cache of
    /// [`QueryEngineConfig::plan_cache_capacity`] plans.
    pub fn with_config(catalog: &'a Catalog, config: QueryEngineConfig) -> Self {
        let cache = Arc::new(PlanCache::with_capacity(config.plan_cache_capacity));
        Self::with_plan_cache(catalog, config, cache)
    }

    /// An engine sharing an existing plan cache.
    ///
    /// The engine borrows the catalog, so mutating relations means
    /// rebuilding the engine — handing the old engine's
    /// [`CatalogEngine::plan_cache`] to the new one keeps the compiled
    /// plans warm across the mutation (stale entries invalidate
    /// themselves through the data-version guards).
    pub fn with_plan_cache(
        catalog: &'a Catalog,
        config: QueryEngineConfig,
        cache: Arc<PlanCache>,
    ) -> Self {
        Self {
            catalog,
            config,
            cache,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &QueryEngineConfig {
        &self.config
    }

    /// The catalog queries resolve against.
    pub fn catalog(&self) -> &Catalog {
        self.catalog
    }

    /// The shape-keyed compiled-plan cache (shareable across engines via
    /// [`CatalogEngine::with_plan_cache`]).
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// Classifies a query for a statistic: which physical path, and why.
    ///
    /// [`Statistic::ProbabilityBounds`] on a dissociable query plans as
    /// [`EvalPath::ExactColumnar`]; evaluation upgrades it to
    /// [`EvalPath::Hybrid`] if the bracket turns out wider than
    /// [`QueryEngineConfig::bounds_tolerance`] (the width is only known
    /// after the bounds run).
    pub fn plan(&self, q: &Query, stat: Statistic) -> Result<(EvalPath, PlanClass), ProbDbError> {
        let flat = q.flatten()?;
        let prepared = prepare(|name| self.catalog.get(name), &flat, stat, &self.config)?;
        Ok((prepared.path, prepared.plan))
    }

    /// Plans and evaluates `q` for `stat`.
    ///
    /// Predicates are simplified and compiled into bitmaps exactly once
    /// per evaluation; the evaluators and the [`EvalReport`]'s pruning
    /// statistics share the same scan.
    pub fn evaluate(
        &self,
        q: &Query,
        stat: Statistic,
    ) -> Result<(QueryAnswer, EvalReport), ProbDbError> {
        evaluate_with(
            |name| self.catalog.get(name),
            q,
            stat,
            &self.config,
            &self.cache,
        )
    }

    /// Convenience: `P(result non-empty)` with its report.
    pub fn probability(&self, q: &Query) -> Result<(f64, EvalReport), ProbDbError> {
        match self.evaluate(q, Statistic::Probability)? {
            (QueryAnswer::Probability { p, .. }, report) => Ok((p, report)),
            _ => unreachable!("probability query answers with a probability"),
        }
    }

    /// Convenience: guaranteed probability bounds with their report.
    ///
    /// Safe queries collapse the bracket to the exact probability;
    /// dissociable unsafe queries (non-hierarchical shapes, aliased
    /// self-joins) get deterministic dissociation bounds, refined by a
    /// clamped Monte-Carlo estimate when wider than
    /// [`QueryEngineConfig::bounds_tolerance`]; everything else samples
    /// inside the trivial `[0, 1]` bracket. The report's
    /// [`EvalReport::dissociated`] names what was dissociated.
    pub fn probability_bounds(
        &self,
        q: &Query,
    ) -> Result<(ProbabilityBounds, EvalReport), ProbDbError> {
        match self.evaluate(q, Statistic::ProbabilityBounds)? {
            (QueryAnswer::Bounds(b), report) => Ok((b, report)),
            _ => unreachable!("probability-bounds query answers with bounds"),
        }
    }

    /// Convenience: expected result count with its report.
    pub fn expected_count(&self, q: &Query) -> Result<(f64, EvalReport), ProbDbError> {
        match self.evaluate(q, Statistic::ExpectedCount)? {
            (QueryAnswer::Count { mean, .. }, report) => Ok((mean, report)),
            _ => unreachable!("expected-count query answers with a count"),
        }
    }

    /// Convenience: result-count distribution with its report.
    pub fn count_distribution(&self, q: &Query) -> Result<(Vec<f64>, EvalReport), ProbDbError> {
        match self.evaluate(q, Statistic::CountDistribution)? {
            (QueryAnswer::Distribution(d), report) => Ok((d, report)),
            _ => unreachable!("count-distribution query answers with a distribution"),
        }
    }

    /// Convenience: per-block selection marginals (single-relation
    /// queries) with their report.
    pub fn marginals(&self, q: &Query) -> Result<(Vec<f64>, EvalReport), ProbDbError> {
        match self.evaluate(q, Statistic::Marginals)? {
            (QueryAnswer::Marginals(m), report) => Ok((m, report)),
            _ => unreachable!("marginals query answers with marginals"),
        }
    }

    /// Convenience: top-k (single-relation queries) with its report.
    pub fn top_k(
        &self,
        q: &Query,
        k: usize,
    ) -> Result<(Vec<RankedTuple>, EvalReport), ProbDbError> {
        match self.evaluate(q, Statistic::TopK(k))? {
            (QueryAnswer::Ranked(r), report) => Ok((r, report)),
            _ => unreachable!("top-k query answers with a ranking"),
        }
    }

    /// Convenience: a value marginal (single-relation queries) with its
    /// report.
    pub fn value_marginal(
        &self,
        q: &Query,
        attr: AttrId,
    ) -> Result<(Vec<f64>, EvalReport), ProbDbError> {
        match self.evaluate(q, Statistic::ValueMarginal(attr))? {
            (QueryAnswer::Distribution(d), report) => Ok((d, report)),
            _ => unreachable!("value-marginal query answers with a distribution"),
        }
    }

    /// `P(result non-empty)` together with its gradient in every
    /// block-alternative mass, by a reverse-mode backward sweep over the
    /// safe-plan recursion.
    ///
    /// Only classified-liftable queries are differentiable — the exact
    /// product/complement tree *is* the computational graph. Shapes that
    /// would route to Monte Carlo (non-hierarchical, key-correlated,
    /// aliased) return [`ProbDbError::NotDifferentiable`] with the
    /// classifier's reason. The probability matches
    /// [`CatalogEngine::probability`]'s interpreter path bit for bit; the
    /// gradients feed the tuple-probability optimizer in `mrsl_learn`,
    /// which projects updates back onto each block's simplex and writes
    /// them through [`crate::ProbDb::set_block_masses`].
    pub fn probability_with_gradient(
        &self,
        q: &Query,
    ) -> Result<(f64, MassGradients), ProbDbError> {
        let flat = q.flatten()?;
        let resolved = resolve(&flat, |name| self.catalog.get(name))?;
        let compiled: Vec<CompiledTerm> = resolved
            .terms
            .iter()
            .enumerate()
            .map(|(i, t)| CompiledTerm::compile(i, t, &resolved.classes))
            .collect();
        if resolved.terms.len() > 1 {
            let c = classify(&resolved, &compiled);
            if c.class != PlanClass::Liftable {
                let reason = match c.decomposition {
                    SafePlan::Unsafe { reason } => reason,
                    _ => format!("{:?} plans are not differentiable", c.class),
                };
                return Err(ProbDbError::NotDifferentiable { reason });
            }
        }
        let (p, grads) = grad::boolean_gradient(&resolved, &compiled);
        let relations = resolved
            .terms
            .iter()
            .zip(grads)
            .map(|(t, g)| (t.relation.clone(), g))
            .collect();
        Ok((p, MassGradients { relations }))
    }
}

/// A resolved, compiled, classified query — everything both `plan` and
/// `evaluate` need.
struct Prepared<'a> {
    resolved: Resolved<'a>,
    compiled: Vec<CompiledTerm<'a>>,
    path: EvalPath,
    plan: PlanClass,
    decomposition: Option<SafePlan>,
    /// How to answer [`Statistic::ProbabilityBounds`]; `None` for every
    /// other statistic.
    bounds_plan: Option<BoundsPlan>,
}

fn prepare<'a>(
    lookup: impl Fn(&str) -> Option<&'a ProbDb>,
    flat: &Flattened,
    stat: Statistic,
    config: &QueryEngineConfig,
) -> Result<Prepared<'a>, ProbDbError> {
    let resolved = resolve(flat, lookup)?;
    let single = resolved.terms.len() == 1;
    if !single
        && matches!(
            stat,
            Statistic::Marginals | Statistic::TopK(_) | Statistic::ValueMarginal(_)
        )
    {
        return Err(ProbDbError::UnsupportedStatistic {
            statistic: stat.name(),
        });
    }
    let compiled: Vec<CompiledTerm<'a>> = resolved
        .terms
        .iter()
        .enumerate()
        .map(|(i, t)| CompiledTerm::compile(i, t, &resolved.classes))
        .collect();
    let classification = (!single).then(|| classify(&resolved, &compiled));
    let decomposition = classification.as_ref().map(|c| c.decomposition.clone());
    let forced = config.force_monte_carlo;
    // Aliased scans of one relation share their block choices: no
    // independent-product evaluator (exact probability, mass-table
    // expected count) is sound over them.
    let aliased = !single && !alias_groups(&resolved).is_empty();
    let mut bounds_plan = None;
    let (path, plan) = match stat {
        Statistic::Probability => match &classification {
            Some(c) if c.class != PlanClass::Liftable => (EvalPath::MonteCarlo, c.class),
            _ if forced => (EvalPath::MonteCarlo, PlanClass::ForcedMonteCarlo),
            _ => (EvalPath::ExactColumnar, PlanClass::Liftable),
        },
        Statistic::ProbabilityBounds => match &classification {
            _ if forced => (EvalPath::MonteCarlo, PlanClass::ForcedMonteCarlo),
            None => (EvalPath::ExactColumnar, PlanClass::Liftable),
            Some(c) => {
                let plan = dissociate::plan_bounds(&resolved, &compiled, c.class);
                let route = match &plan {
                    BoundsPlan::Exact => (EvalPath::ExactColumnar, PlanClass::Liftable),
                    // Refinement may upgrade the path to Hybrid at
                    // evaluation time, once the bracket width is known.
                    BoundsPlan::Dissociate(_) => (EvalPath::ExactColumnar, PlanClass::Dissociable),
                    BoundsPlan::Sample(_) => (EvalPath::MonteCarlo, c.class),
                };
                bounds_plan = Some(plan);
                route
            }
        },
        // Expected counts are liftable for every *alias-free* shape:
        // linearity of expectation needs neither hierarchy nor key
        // uniqueness, but it does need rows of different terms to be
        // independent, which aliased scans of one relation are not.
        Statistic::ExpectedCount => {
            if forced {
                (EvalPath::MonteCarlo, PlanClass::ForcedMonteCarlo)
            } else if aliased {
                let class = classification
                    .as_ref()
                    .map(|c| c.class)
                    .unwrap_or(PlanClass::Dissociable);
                (EvalPath::MonteCarlo, class)
            } else {
                (EvalPath::ExactColumnar, PlanClass::Liftable)
            }
        }
        Statistic::CountDistribution => {
            if !single {
                let plan = if forced {
                    PlanClass::ForcedMonteCarlo
                } else {
                    PlanClass::UnliftableStatistic
                };
                (EvalPath::MonteCarlo, plan)
            } else if forced {
                (EvalPath::MonteCarlo, PlanClass::ForcedMonteCarlo)
            } else if compiled[0].db.blocks().len() > config.max_exact_dp_blocks {
                (EvalPath::MonteCarlo, PlanClass::DpBudgetExceeded)
            } else {
                (EvalPath::ExactColumnar, PlanClass::Liftable)
            }
        }
        Statistic::Marginals => {
            if forced {
                (EvalPath::MonteCarlo, PlanClass::ForcedMonteCarlo)
            } else {
                (EvalPath::ExactColumnar, PlanClass::Liftable)
            }
        }
        // No sampling estimator: always exact, even when forced.
        Statistic::TopK(_) | Statistic::ValueMarginal(_) => {
            (EvalPath::ExactColumnar, PlanClass::Liftable)
        }
    };
    Ok(Prepared {
        resolved,
        compiled,
        path,
        plan,
        decomposition,
        bounds_plan,
    })
}

fn evaluate_with<'a>(
    lookup: impl Fn(&str) -> Option<&'a ProbDb>,
    q: &Query,
    stat: Statistic,
    config: &QueryEngineConfig,
    cache: &PlanCache,
) -> Result<(QueryAnswer, EvalReport), ProbDbError> {
    let flat = q.flatten()?;
    // Forced Monte Carlo overrides every planning verdict, so its answers
    // are neither produced from nor stored into the cache.
    let slot = (config.compile_plans && !config.force_monte_carlo)
        .then(|| cache_tag(stat))
        .flatten()
        .map(|tag| (tag, flat.shape_hash()));
    if let Some((tag, hash)) = slot {
        // Hot tier first: repeatedly-hit shapes are served without
        // touching a stripe lock. A stale or colliding hot entry falls
        // through to the striped probe exactly like a cold shape.
        if let Some((plan, versions)) = cache.probe_hot(tag, hash) {
            if plan.matches(&flat) {
                match execute_cached(&lookup, &plan, &versions, tag, hash, stat, config, cache)? {
                    Some(result) => {
                        cache.record_hot_hit();
                        return Ok(result);
                    }
                    // Stale: schema or guarded data property changed.
                    None => cache.invalidate(tag, hash),
                }
            }
        }
        if let Some((plan, versions)) = cache.probe(tag, hash) {
            if plan.matches(&flat) {
                match execute_cached(&lookup, &plan, &versions, tag, hash, stat, config, cache)? {
                    Some(result) => {
                        cache.record_hit();
                        return Ok(result);
                    }
                    // Stale: schema or guarded data property changed.
                    None => cache.invalidate(tag, hash),
                }
            }
        }
        cache.record_miss();
    }
    evaluate_cold(&lookup, &flat, stat, config, slot, cache)
}

/// Executes a shape-verified cache entry against current column data, or
/// reports it stale (`Ok(None)`) for invalidation and a cold replan.
///
/// Classification is skipped entirely. Its only data-dependent inputs are
/// the key-straddle and alias-live-mismatch guards: when any relation's
/// data version moved, both are recomputed (linear scans) and compared to
/// the recorded verdicts — unchanged verdicts revalidate the entry,
/// flipped ones condemn it.
#[allow(clippy::too_many_arguments)]
fn execute_cached<'a, F>(
    lookup: &F,
    plan: &CachedPlan,
    recorded_versions: &[u64],
    tag: u8,
    hash: u64,
    stat: Statistic,
    config: &QueryEngineConfig,
    cache: &PlanCache,
) -> Result<Option<(QueryAnswer, EvalReport)>, ProbDbError>
where
    F: Fn(&str) -> Option<&'a ProbDb>,
{
    let Some((resolved, versions)) = plan.bind(lookup) else {
        return Ok(None);
    };
    // Register fast path: with every data stamp unchanged the guards
    // still hold and the memoized registers are still the data — skip
    // predicate compilation and register binding, run the fold alone.
    if versions.as_slice() == recorded_versions {
        if let Some(result) = run_prebound_fast(plan, &resolved, &versions, stat, config) {
            return Ok(Some(result));
        }
    }
    let compiled: Vec<CompiledTerm> = resolved
        .terms
        .iter()
        .enumerate()
        .map(|(i, t)| CompiledTerm::compile(i, t, &resolved.classes))
        .collect();
    if versions.as_slice() != recorded_versions {
        let straddle = key_straddle(&resolved, &compiled).is_some();
        let mismatch = alias_live_mismatch(&resolved, &compiled).is_some();
        if straddle != plan.straddle || mismatch != plan.alias_mismatch {
            return Ok(None);
        }
        cache.refresh_versions(tag, hash, &versions);
    }
    let samples = config.mc_samples;
    let mut path = plan.path;
    if path == EvalPath::MonteCarlo && samples == 0 {
        return Err(ProbDbError::NoSamples);
    }
    let classes = resolved.classes.len();
    let mut decomposition = plan.decomposition.clone();
    let mut dissociated: Vec<String> = Vec::new();
    let shards = config.shards;
    let answer = match (&plan.program, stat) {
        (CompiledProgram::Boolean(prog), Statistic::Probability) => {
            let maint = compile::rebind_or_patch(plan, &resolved, &compiled, &versions);
            cache.record_reg_maintenance(maint.patched, maint.rebound);
            let p = vm::run_prebound_sharded(prog, &maint.per_program[0], shards);
            memoize_regs(
                plan,
                &versions,
                &resolved,
                maint.per_program,
                None,
                &compiled,
            );
            QueryAnswer::Probability { p, std_error: None }
        }
        // Safe shapes collapse the bracket to the exact probability.
        (CompiledProgram::Boolean(prog), Statistic::ProbabilityBounds) => {
            let maint = compile::rebind_or_patch(plan, &resolved, &compiled, &versions);
            cache.record_reg_maintenance(maint.patched, maint.rebound);
            let p = vm::run_prebound_sharded(prog, &maint.per_program[0], shards);
            memoize_regs(
                plan,
                &versions,
                &resolved,
                maint.per_program,
                None,
                &compiled,
            );
            QueryAnswer::Bounds(ProbabilityBounds::exact(p))
        }
        (
            CompiledProgram::Bounds {
                candidates,
                programs,
            },
            Statistic::ProbabilityBounds,
        ) => {
            let maint = compile::rebind_or_patch(plan, &resolved, &compiled, &versions);
            cache.record_reg_maintenance(maint.patched, maint.rebound);
            let eval = compile::run_bounds_prebound(
                &resolved,
                candidates,
                programs,
                &maint.per_program,
                shards,
                Some(&plan.describe),
            );
            memoize_regs(
                plan,
                &versions,
                &resolved,
                maint.per_program,
                None,
                &compiled,
            );
            decomposition = Some(eval.plan);
            dissociated = eval.dissociated;
            let mut bounds = ProbabilityBounds::bracket(eval.lower, eval.upper);
            // The hybrid upgrade is re-decided per answer with the
            // current config, never cached.
            if bounds.width() > config.bounds_tolerance && samples > 0 {
                let counts = mc::sample_join_counts(&compiled, classes, samples, config.mc_seed);
                let (p, se) = mc::probability_estimate(&counts);
                bounds.estimate = Some(p.clamp(bounds.lower, bounds.upper));
                bounds.std_error = Some(se);
                path = EvalPath::Hybrid;
            }
            QueryAnswer::Bounds(bounds)
        }
        (CompiledProgram::Count(prog), Statistic::ExpectedCount) => {
            let maint = compile::rebind_or_patch(plan, &resolved, &compiled, &versions);
            cache.record_reg_maintenance(maint.patched, maint.rebound);
            let mean = match (&prog.steps, &maint.count) {
                (Some(steps), Some(tables)) => {
                    exact::run_mass_join_tables(steps, tables, prog.classes, shards)
                }
                _ => vm::run_count(prog, &compiled),
            };
            memoize_regs(
                plan,
                &versions,
                &resolved,
                maint.per_program,
                maint.count,
                &compiled,
            );
            QueryAnswer::Count {
                mean,
                std_error: None,
            }
        }
        (CompiledProgram::Sampled { bounds_reason }, _) => match stat {
            Statistic::Probability => {
                let counts = mc::sample_join_counts(&compiled, classes, samples, config.mc_seed);
                let (p, se) = mc::probability_estimate(&counts);
                QueryAnswer::Probability {
                    p,
                    std_error: Some(se),
                }
            }
            Statistic::ProbabilityBounds => {
                if let Some(reason) = bounds_reason {
                    decomposition = Some(SafePlan::Unsafe {
                        reason: reason.clone(),
                    });
                }
                let counts = mc::sample_join_counts(&compiled, classes, samples, config.mc_seed);
                let (p, se) = mc::probability_estimate(&counts);
                QueryAnswer::Bounds(ProbabilityBounds {
                    lower: 0.0,
                    upper: 1.0,
                    estimate: Some(p),
                    std_error: Some(se),
                })
            }
            Statistic::ExpectedCount => {
                let (mean, se) = if classes == 0 && compiled.len() == 1 {
                    let ct = &compiled[0];
                    let sel = CompiledSelection {
                        certain_count: ct.live_certain.count_ones(),
                        alt_matches: ct.live_alts.clone(),
                    };
                    mc_expected_count_compiled(ct.db, &sel, samples, config.mc_seed)
                } else {
                    let counts =
                        mc::sample_join_counts(&compiled, classes, samples, config.mc_seed);
                    mc::count_estimate(&counts)
                };
                QueryAnswer::Count {
                    mean,
                    std_error: Some(se),
                }
            }
            _ => return Ok(None),
        },
        // Program/statistic mismatch cannot happen (the statistic tag is
        // part of the cache key); replan defensively instead of asserting.
        _ => return Ok(None),
    };
    let relations = relation_stats(&compiled);
    let mc_samples = match path {
        EvalPath::ExactColumnar => 0,
        EvalPath::MonteCarlo | EvalPath::Hybrid => samples,
    };
    let report = EvalReport::new(
        path,
        PlanRoute::CacheHit,
        plan.plan_class,
        relations,
        mc_samples,
        decomposition,
        dissociated,
    );
    Ok(Some((answer, report)))
}

fn evaluate_cold<'a>(
    lookup: &impl Fn(&str) -> Option<&'a ProbDb>,
    flat: &Flattened,
    stat: Statistic,
    config: &QueryEngineConfig,
    slot: Option<(u8, u64)>,
    cache: &PlanCache,
) -> Result<(QueryAnswer, EvalReport), ProbDbError> {
    let prepared = prepare(lookup, flat, stat, config)?;
    let Prepared {
        resolved,
        compiled,
        mut path,
        plan,
        mut decomposition,
        bounds_plan,
    } = prepared;
    // The cache stores the planning-time verdicts: the pre-hybrid path and
    // the classifier's decomposition (bounds answers re-derive the winning
    // candidate's decomposition at evaluation time).
    let planned_path = path;
    let stored_decomposition = decomposition.clone();
    let use_vm = slot.is_some();
    let mut route = PlanRoute::Interpreted;
    let mut built: Option<CompiledProgram> = None;
    let mut dissociated: Vec<String> = Vec::new();
    let classes = resolved.classes.len();
    let samples = config.mc_samples;
    if path == EvalPath::MonteCarlo && samples == 0 {
        return Err(ProbDbError::NoSamples);
    }
    let single_selection = |ct: &CompiledTerm| CompiledSelection {
        certain_count: ct.live_certain.count_ones(),
        alt_matches: ct.live_alts.clone(),
    };
    let shards = config.shards;
    let answer = match (stat, path) {
        (Statistic::Probability, EvalPath::ExactColumnar) => {
            let p = if use_vm {
                let prog = compile::compile_boolean(&resolved);
                let regs = vm::bind_program(&prog, &compiled);
                let p = vm::run_prebound_sharded(&prog, &regs, shards);
                built = Some(CompiledProgram::Boolean(prog));
                route = PlanRoute::Compiled;
                p
            } else {
                exact::boolean_probability(&resolved, &compiled)
            };
            QueryAnswer::Probability { p, std_error: None }
        }
        (Statistic::Probability, EvalPath::MonteCarlo) => {
            built = use_vm.then_some(CompiledProgram::Sampled {
                bounds_reason: None,
            });
            let counts = mc::sample_join_counts(&compiled, classes, samples, config.mc_seed);
            let (p, se) = mc::probability_estimate(&counts);
            QueryAnswer::Probability {
                p,
                std_error: Some(se),
            }
        }
        (Statistic::ProbabilityBounds, EvalPath::ExactColumnar) => {
            let bounds = match &bounds_plan {
                Some(BoundsPlan::Dissociate(candidates)) => {
                    let eval = if use_vm {
                        let programs = compile::compile_bounds(&resolved, candidates);
                        let eval = compile::run_bounds(
                            &resolved, &compiled, candidates, &programs, shards,
                        );
                        built = Some(CompiledProgram::Bounds {
                            candidates: candidates.clone(),
                            programs,
                        });
                        route = PlanRoute::Compiled;
                        eval
                    } else {
                        dissociate::evaluate_bounds(&resolved, &compiled, candidates)
                    };
                    decomposition = Some(eval.plan);
                    dissociated = eval.dissociated;
                    let mut bounds = ProbabilityBounds::bracket(eval.lower, eval.upper);
                    // Bracket-gated refinement: sample only when the
                    // deterministic bounds are too loose to act on.
                    if bounds.width() > config.bounds_tolerance && samples > 0 {
                        let counts =
                            mc::sample_join_counts(&compiled, classes, samples, config.mc_seed);
                        let (p, se) = mc::probability_estimate(&counts);
                        bounds.estimate = Some(p.clamp(bounds.lower, bounds.upper));
                        bounds.std_error = Some(se);
                        path = EvalPath::Hybrid;
                    }
                    bounds
                }
                // Safe queries (or single scans): the bracket collapses
                // to the exact probability.
                _ => {
                    let p = if use_vm {
                        let prog = compile::compile_boolean(&resolved);
                        let regs = vm::bind_program(&prog, &compiled);
                        let p = vm::run_prebound_sharded(&prog, &regs, shards);
                        built = Some(CompiledProgram::Boolean(prog));
                        route = PlanRoute::Compiled;
                        p
                    } else {
                        exact::boolean_probability(&resolved, &compiled)
                    };
                    ProbabilityBounds::exact(p)
                }
            };
            QueryAnswer::Bounds(bounds)
        }
        (Statistic::ProbabilityBounds, EvalPath::MonteCarlo) => {
            // No sound dissociation (or sampling was forced): the only
            // guaranteed bracket is the trivial one, refined by the
            // estimate. The report records why dissociation refused.
            let reason = match &bounds_plan {
                Some(BoundsPlan::Sample(reason)) => Some(reason.clone()),
                _ => None,
            };
            if let Some(r) = &reason {
                decomposition = Some(SafePlan::Unsafe { reason: r.clone() });
            }
            built = use_vm.then_some(CompiledProgram::Sampled {
                bounds_reason: reason,
            });
            let counts = mc::sample_join_counts(&compiled, classes, samples, config.mc_seed);
            let (p, se) = mc::probability_estimate(&counts);
            QueryAnswer::Bounds(ProbabilityBounds {
                lower: 0.0,
                upper: 1.0,
                estimate: Some(p),
                std_error: Some(se),
            })
        }
        (Statistic::ExpectedCount, EvalPath::ExactColumnar) => {
            let mean = if use_vm {
                let prog = compile::compile_count(&resolved);
                let mean = match &prog.steps {
                    Some(steps) => {
                        let tables =
                            exact::mass_tables(steps, &compiled, rayon::current_num_threads() > 1);
                        exact::run_mass_join_tables(steps, &tables, prog.classes, shards)
                    }
                    None => vm::run_count(&prog, &compiled),
                };
                built = Some(CompiledProgram::Count(prog));
                route = PlanRoute::Compiled;
                mean
            } else if classes == 0 && compiled.len() == 1 {
                // Single relations keep the legacy arithmetic (certain
                // matches plus per-block marginals) so answers stay
                // bit-identical with the historical single-table path.
                exact::single_expected_count(&compiled[0])
            } else {
                exact::expected_join_count(&resolved, &compiled)
            };
            QueryAnswer::Count {
                mean,
                std_error: None,
            }
        }
        (Statistic::ExpectedCount, EvalPath::MonteCarlo) => {
            built = use_vm.then_some(CompiledProgram::Sampled {
                bounds_reason: None,
            });
            let (mean, se) = if classes == 0 && compiled.len() == 1 {
                let ct = &compiled[0];
                mc_expected_count_compiled(ct.db, &single_selection(ct), samples, config.mc_seed)
            } else {
                let counts = mc::sample_join_counts(&compiled, classes, samples, config.mc_seed);
                mc::count_estimate(&counts)
            };
            QueryAnswer::Count {
                mean,
                std_error: Some(se),
            }
        }
        (Statistic::CountDistribution, EvalPath::ExactColumnar) => {
            let ct = &compiled[0];
            QueryAnswer::Distribution(query::poisson_binomial(
                ct.live_certain.count_ones(),
                &ct.db.columns().block_probs(&ct.live_alts),
            ))
        }
        (Statistic::CountDistribution, EvalPath::MonteCarlo) => {
            let dist = if classes == 0 && compiled.len() == 1 {
                let ct = &compiled[0];
                mc_count_distribution_compiled(
                    ct.db,
                    &single_selection(ct),
                    samples,
                    config.mc_seed,
                )
            } else {
                let counts = mc::sample_join_counts(&compiled, classes, samples, config.mc_seed);
                mc::count_histogram(&counts)
            };
            QueryAnswer::Distribution(dist)
        }
        (Statistic::Marginals, EvalPath::ExactColumnar) => {
            let ct = &compiled[0];
            QueryAnswer::Marginals(ct.db.columns().block_probs(&ct.live_alts))
        }
        (Statistic::Marginals, EvalPath::MonteCarlo) => QueryAnswer::Marginals(
            mc::mc_selection_marginals(&compiled[0], samples, config.mc_seed),
        ),
        (Statistic::TopK(k), _) => {
            let ct = &compiled[0];
            QueryAnswer::Ranked(query::top_k_from_bitmaps(
                ct.db,
                k,
                &ct.live_certain,
                &ct.live_alts,
            ))
        }
        (Statistic::ValueMarginal(attr), _) => {
            QueryAnswer::Distribution(exact::value_marginal(&compiled[0], attr))
        }
        (_, EvalPath::Hybrid) => {
            unreachable!("the hybrid path is only assigned during bounds evaluation")
        }
    };
    if let (Some((tag, hash)), Some(program)) = (slot, built) {
        let (entry, versions) = CachedPlan::capture(
            flat,
            &resolved,
            &compiled,
            planned_path,
            plan,
            stored_decomposition,
            program,
        );
        cache.insert(tag, hash, Arc::new(entry), versions);
    }
    let relations = relation_stats(&compiled);
    let mc_samples = match path {
        EvalPath::ExactColumnar => 0,
        EvalPath::MonteCarlo | EvalPath::Hybrid => samples,
    };
    let report = EvalReport::new(
        path,
        route,
        plan,
        relations,
        mc_samples,
        decomposition,
        dissociated,
    );
    Ok((answer, report))
}

/// Stores the registers a warm execution just bound into the cache
/// entry's version-guarded memo, together with the scan statistics the
/// next report would otherwise recompute.
fn memoize_regs(
    plan: &CachedPlan,
    versions: &[u64],
    resolved: &Resolved,
    per_program: Vec<Vec<vm::TermRegs>>,
    count: Option<Vec<exact::MassTable>>,
    compiled: &[CompiledTerm],
) {
    *plan.regs.lock().expect("register memo lock") = Some(compile::BoundRegs {
        versions: versions.to_vec(),
        shard_versions: resolved
            .terms
            .iter()
            .map(|t| t.db.shard_versions().to_vec())
            .collect(),
        per_program,
        count,
        stats: relation_stats(compiled),
    });
}

/// The unchanged-data fast path of a warm hit: run the memoized registers
/// without compiling terms or binding anything. `None` falls through to
/// the full warm path — no memo yet, a memo bound under other versions, a
/// program that needs compiled terms (counts, samplers), or a bracket
/// wide enough to need a Monte-Carlo refinement.
fn run_prebound_fast(
    plan: &CachedPlan,
    resolved: &Resolved,
    versions: &[u64],
    stat: Statistic,
    config: &QueryEngineConfig,
) -> Option<(QueryAnswer, EvalReport)> {
    let memo = plan.regs.lock().expect("register memo lock");
    let memo = memo.as_ref()?;
    if memo.versions != versions {
        return None;
    }
    let mut decomposition = plan.decomposition.clone();
    let mut dissociated: Vec<String> = Vec::new();
    let shards = config.shards;
    let answer = match (&plan.program, stat) {
        (CompiledProgram::Boolean(prog), Statistic::Probability) => QueryAnswer::Probability {
            p: vm::run_prebound_sharded(prog, &memo.per_program[0], shards),
            std_error: None,
        },
        (CompiledProgram::Boolean(prog), Statistic::ProbabilityBounds) => QueryAnswer::Bounds(
            ProbabilityBounds::exact(vm::run_prebound_sharded(prog, &memo.per_program[0], shards)),
        ),
        (CompiledProgram::Count(prog), Statistic::ExpectedCount) => {
            let steps = prog.steps.as_ref()?;
            let tables = memo.count.as_ref()?;
            QueryAnswer::Count {
                mean: exact::run_mass_join_tables(steps, tables, prog.classes, shards),
                std_error: None,
            }
        }
        (
            CompiledProgram::Bounds {
                candidates,
                programs,
            },
            Statistic::ProbabilityBounds,
        ) => {
            let eval = compile::run_bounds_prebound(
                resolved,
                candidates,
                programs,
                &memo.per_program,
                shards,
                Some(&plan.describe),
            );
            let bounds = ProbabilityBounds::bracket(eval.lower, eval.upper);
            if bounds.width() > config.bounds_tolerance && config.mc_samples > 0 {
                // The hybrid refinement samples worlds — full warm path.
                return None;
            }
            decomposition = Some(eval.plan);
            dissociated = eval.dissociated;
            QueryAnswer::Bounds(bounds)
        }
        _ => return None,
    };
    let report = EvalReport::new(
        plan.path,
        PlanRoute::CacheHit,
        plan.plan_class,
        memo.stats.clone(),
        0,
        decomposition,
        dissociated,
    );
    Some((answer, report))
}

fn relation_stats(compiled: &[CompiledTerm]) -> Vec<RelationStats> {
    compiled
        .iter()
        .map(|ct| {
            let cols = ct.db.columns();
            let pruned = ct.pruned_blocks();
            RelationStats {
                relation: ct.name.clone(),
                blocks_total: cols.block_count(),
                blocks_pruned: pruned,
                blocks_touched: cols.block_count() - pruned,
                certain_rows: cols.certain().rows(),
                alt_rows: cols.alternatives().rows(),
                provenance: ct.db.provenance().map(String::from),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Alternative, Block};
    use crate::catalog::Catalog;
    use crate::predicate::Predicate;
    use crate::testutil::{oracle, oracle_probability};
    use mrsl_relation::schema::fig1_schema;
    use mrsl_relation::{CompleteTuple, Schema, ValueId};
    use std::sync::Arc;

    fn alt(values: Vec<u16>, prob: f64) -> Alternative {
        Alternative {
            tuple: CompleteTuple::from_values(values),
            prob,
        }
    }

    fn db() -> ProbDb {
        let mut db = ProbDb::new(fig1_schema());
        db.push_certain(CompleteTuple::from_values(vec![0, 0, 1, 0]))
            .unwrap();
        db.push_block(
            Block::new(
                0,
                vec![alt(vec![0, 0, 0, 0], 0.3), alt(vec![0, 0, 1, 0], 0.7)],
            )
            .unwrap(),
        )
        .unwrap();
        db.push_block(
            Block::new(
                1,
                vec![alt(vec![1, 0, 1, 0], 0.6), alt(vec![1, 0, 0, 1], 0.4)],
            )
            .unwrap(),
        )
        .unwrap();
        db.push_block(
            Block::new(
                2,
                vec![alt(vec![2, 1, 0, 0], 0.5), alt(vec![2, 1, 0, 1], 0.5)],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    // ---------------------------------------------------------------
    // Single-table engine behavior (one-relation catalogs).
    // ---------------------------------------------------------------

    fn single_catalog() -> Catalog {
        let mut catalog = Catalog::new();
        catalog.add("db", db()).unwrap();
        catalog
    }

    #[test]
    fn liftable_queries_take_the_exact_path() {
        let catalog = single_catalog();
        let engine = CatalogEngine::new(&catalog);
        let pred = Predicate::eq(AttrId(2), ValueId(1));
        let q = Query::scan("db").filter(pred);
        let (count, report) = engine.expected_count(&q).unwrap();
        assert_eq!(report.path, EvalPath::ExactColumnar);
        assert_eq!(report.plan, PlanClass::Liftable);
        assert_eq!(report.mc_samples, 0);
        assert!((count - 2.3).abs() < 1e-12);
        // Block 2 has no inc=100K alternative: pruned.
        assert_eq!(report.blocks_total, 3);
        assert_eq!(report.blocks_pruned, 1);
        assert_eq!(report.blocks_touched, 2);
        assert_eq!(report.certain_rows, 1);
        assert_eq!(report.alt_rows, 6);
        // One relation, no join decomposition.
        assert_eq!(report.relations.len(), 1);
        assert!(report.decomposition.is_none());
    }

    #[test]
    fn dp_budget_routes_count_distribution_to_monte_carlo() {
        let catalog = single_catalog();
        let engine = CatalogEngine::with_config(
            &catalog,
            QueryEngineConfig {
                max_exact_dp_blocks: 2,
                mc_samples: 30_000,
                ..QueryEngineConfig::default()
            },
        );
        let pred = Predicate::eq(AttrId(2), ValueId(1));
        let q = Query::scan("db").filter(pred.clone());
        let (answer, report) = engine.evaluate(&q, Statistic::CountDistribution).unwrap();
        assert_eq!(report.path, EvalPath::MonteCarlo);
        assert_eq!(report.plan, PlanClass::DpBudgetExceeded);
        assert_eq!(report.mc_samples, 30_000);
        let QueryAnswer::Distribution(mc_dist) = answer else {
            panic!("distribution expected");
        };
        let exact = query::count_distribution(catalog.get("db").unwrap(), &pred);
        for (k, &e) in exact.iter().enumerate() {
            assert!((mc_dist[k] - e).abs() < 0.02, "k={k}");
        }
        // Expected count stays exact: its cost is linear.
        let (_, report) = engine.expected_count(&q).unwrap();
        assert_eq!(report.path, EvalPath::ExactColumnar);
    }

    #[test]
    fn forced_monte_carlo_reports_standard_error() {
        let catalog = single_catalog();
        let engine = CatalogEngine::with_config(
            &catalog,
            QueryEngineConfig {
                force_monte_carlo: true,
                mc_samples: 20_000,
                ..QueryEngineConfig::default()
            },
        );
        let pred = Predicate::eq(AttrId(2), ValueId(1)).negate();
        let q = Query::scan("db").filter(pred.clone());
        let (answer, report) = engine.evaluate(&q, Statistic::ExpectedCount).unwrap();
        assert_eq!(report.plan, PlanClass::ForcedMonteCarlo);
        let QueryAnswer::Count { mean, std_error } = answer else {
            panic!("count answer expected");
        };
        let se = std_error.expect("MC path reports a standard error");
        let exact = query::expected_count(catalog.get("db").unwrap(), &pred);
        assert!((mean - exact).abs() < 4.0 * se + 0.02);
        // Ranking has no sampling estimator: stays exact even when forced.
        let (_, report) = engine.evaluate(&q, Statistic::TopK(3)).unwrap();
        assert_eq!(report.path, EvalPath::ExactColumnar);
    }

    #[test]
    fn zero_sample_budget_is_an_error() {
        let catalog = single_catalog();
        let engine = CatalogEngine::with_config(
            &catalog,
            QueryEngineConfig {
                force_monte_carlo: true,
                mc_samples: 0,
                ..QueryEngineConfig::default()
            },
        );
        let q = Query::scan("db").filter(Predicate::any());
        let e = engine.expected_count(&q);
        assert!(matches!(e, Err(ProbDbError::NoSamples)));
        // Every sampled query shape refuses a zero budget the same way.
        let e = engine.evaluate(&q, Statistic::Marginals);
        assert!(matches!(e, Err(ProbDbError::NoSamples)));
        let e = engine.evaluate(&q, Statistic::CountDistribution);
        assert!(matches!(e, Err(ProbDbError::NoSamples)));
    }

    #[test]
    fn mc_selection_marginals_agree_with_exact() {
        let catalog = single_catalog();
        let engine = CatalogEngine::with_config(
            &catalog,
            QueryEngineConfig {
                force_monte_carlo: true,
                mc_samples: 30_000,
                ..QueryEngineConfig::default()
            },
        );
        let pred = Predicate::is_in(AttrId(3), [ValueId(1)]);
        let q = Query::scan("db").filter(pred.clone());
        let (answer, report) = engine.evaluate(&q, Statistic::Marginals).unwrap();
        assert_eq!(report.path, EvalPath::MonteCarlo);
        let QueryAnswer::Marginals(mc) = answer else {
            panic!("marginals expected");
        };
        let exact = query::block_selection_probs(catalog.get("db").unwrap(), &pred);
        for (b, (&m, &e)) in mc.iter().zip(&exact).enumerate() {
            assert!((m - e).abs() < 0.02, "block {b}: {m} vs {e}");
        }
    }

    #[test]
    fn value_marginal_reports_no_pruning() {
        let catalog = single_catalog();
        let engine = CatalogEngine::new(&catalog);
        let (m, report) = engine
            .value_marginal(&Query::scan("db"), AttrId(0))
            .unwrap();
        assert_eq!(report.blocks_pruned, 0);
        assert_eq!(report.blocks_touched, 3);
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    // ---------------------------------------------------------------
    // Multi-relation planning: brute-force cross-checks.
    // ---------------------------------------------------------------

    fn station_schema(extra: &str, values: [&str; 2]) -> Arc<Schema> {
        Schema::builder()
            .attribute("station", ["s0", "s1", "s2"])
            .attribute(extra, values)
            .build()
            .unwrap()
    }

    /// sensors(station, kind): one certain outdoor sensor at s0, one block
    /// with station observed (s1) and kind inferred.
    fn sensors() -> ProbDb {
        let mut db = ProbDb::new(station_schema("kind", ["indoor", "outdoor"]));
        db.push_certain(CompleteTuple::from_values(vec![0, 1]))
            .unwrap();
        db.push_block(Block::new(0, vec![alt(vec![1, 0], 0.5), alt(vec![1, 1], 0.5)]).unwrap())
            .unwrap();
        db
    }

    /// readings(station, level): one certain high reading at s1, blocks at
    /// s0 and s2 with inferred level.
    fn readings() -> ProbDb {
        let mut db = ProbDb::new(station_schema("level", ["low", "high"]));
        db.push_certain(CompleteTuple::from_values(vec![1, 1]))
            .unwrap();
        db.push_block(Block::new(0, vec![alt(vec![0, 0], 0.7), alt(vec![0, 1], 0.3)]).unwrap())
            .unwrap();
        db.push_block(Block::new(1, vec![alt(vec![2, 0], 0.6), alt(vec![2, 1], 0.4)]).unwrap())
            .unwrap();
        db
    }

    fn sensors_catalog() -> Catalog {
        let mut catalog = Catalog::new();
        catalog.add("sensors", sensors()).unwrap();
        catalog.add("readings", readings()).unwrap();
        catalog
    }

    #[test]
    fn hierarchical_join_probability_is_exact() {
        let catalog = sensors_catalog();
        let engine = CatalogEngine::new(&catalog);
        let lpred = Predicate::eq(AttrId(1), ValueId(1)); // kind = outdoor
        let rpred = Predicate::eq(AttrId(1), ValueId(1)); // level = high
        let q = Query::scan("sensors").filter(lpred.clone()).join_on(
            Query::scan("readings").filter(rpred.clone()),
            [(AttrId(0), AttrId(0))],
        );
        let (path, plan) = engine.plan(&q, Statistic::Probability).unwrap();
        assert_eq!(path, EvalPath::ExactColumnar);
        assert_eq!(plan, PlanClass::Liftable);
        let (p, report) = engine.probability(&q).unwrap();
        let brute = oracle(&catalog, &q, 100_000).unwrap();
        let (brute_p, brute_e) = (brute.probability, brute.expected_count);
        assert!((p - brute_p).abs() < 1e-12, "{p} vs {brute_p}");
        // The decomposition partitions on the shared station key.
        let Some(SafePlan::KeyPartition { key, inputs }) = &report.decomposition else {
            panic!("expected a key partition, got {:?}", report.decomposition);
        };
        assert_eq!(key, "sensors.station = readings.station");
        assert_eq!(inputs.len(), 2);
        assert_eq!(report.relations.len(), 2);
        // The exact expected count agrees with brute force too.
        let (e, report) = engine.expected_count(&q).unwrap();
        assert_eq!(report.path, EvalPath::ExactColumnar);
        assert!((e - brute_e).abs() < 1e-12, "{e} vs {brute_e}");
    }

    #[test]
    fn hierarchical_join_monte_carlo_agrees_with_exact() {
        let catalog = sensors_catalog();
        let engine = CatalogEngine::with_config(
            &catalog,
            QueryEngineConfig {
                force_monte_carlo: true,
                mc_samples: 30_000,
                ..QueryEngineConfig::default()
            },
        );
        let q = Query::scan("sensors")
            .filter(Predicate::eq(AttrId(1), ValueId(1)))
            .join_on(
                Query::scan("readings").filter(Predicate::eq(AttrId(1), ValueId(1))),
                [(AttrId(0), AttrId(0))],
            );
        let (answer, report) = engine.evaluate(&q, Statistic::Probability).unwrap();
        assert_eq!(report.path, EvalPath::MonteCarlo);
        assert_eq!(report.plan, PlanClass::ForcedMonteCarlo);
        let QueryAnswer::Probability { p, std_error } = answer else {
            panic!("probability expected");
        };
        let se = std_error.expect("MC reports a standard error").max(1e-9);
        let brute = oracle(&catalog, &q, 100_000).unwrap();
        let (brute_p, brute_e) = (brute.probability, brute.expected_count);
        assert!((p - brute_p).abs() < 4.0 * se + 0.01, "{p} vs {brute_p}");
        // Sampled expected count and count distribution agree as well.
        let (mean, _) = engine.expected_count(&q).unwrap();
        assert!((mean - brute_e).abs() < 0.05, "{mean} vs {brute_e}");
        let (dist, report) = engine.count_distribution(&q).unwrap();
        assert_eq!(report.path, EvalPath::MonteCarlo);
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let dist_mean: f64 = dist.iter().enumerate().map(|(k, &p)| k as f64 * p).sum();
        assert!((dist_mean - brute_e).abs() < 0.05);
    }

    #[test]
    fn key_straddling_block_routes_to_monte_carlo() {
        // A sensors block whose alternatives sit at *different* stations:
        // the station key is correlated inside the block, so the exact
        // independent partition is unsound and the planner must sample.
        let mut straddling = ProbDb::new(station_schema("kind", ["indoor", "outdoor"]));
        straddling
            .push_block(Block::new(0, vec![alt(vec![0, 1], 0.5), alt(vec![1, 1], 0.5)]).unwrap())
            .unwrap();
        let mut catalog = Catalog::new();
        catalog.add("sensors", straddling).unwrap();
        catalog.add("readings", readings()).unwrap();
        let engine = CatalogEngine::with_config(
            &catalog,
            QueryEngineConfig {
                mc_samples: 40_000,
                ..QueryEngineConfig::default()
            },
        );
        let q = Query::scan("sensors").join_on("readings", [(AttrId(0), AttrId(0))]);
        let (path, plan) = engine.plan(&q, Statistic::Probability).unwrap();
        assert_eq!(path, EvalPath::MonteCarlo);
        assert_eq!(plan, PlanClass::KeyCorrelated);
        let (p, report) = engine.probability(&q).unwrap();
        let Some(SafePlan::Unsafe { reason }) = &report.decomposition else {
            panic!("expected an unsafe decomposition");
        };
        assert!(reason.contains("straddles"), "{reason}");
        let brute = oracle(&catalog, &q, 100_000).unwrap();
        assert!(
            (p - brute.probability).abs() < 0.02,
            "{p} vs {}",
            brute.probability
        );
        // Expected count does not need key uniqueness: still exact.
        let (e, report) = engine.expected_count(&q).unwrap();
        assert_eq!(report.path, EvalPath::ExactColumnar);
        assert!((e - brute.expected_count).abs() < 1e-12);
    }

    #[test]
    fn nested_hierarchical_query_is_exact() {
        // R(x), S(x, y, ok), T(x, y, ok) with selections ok=1 on S and T:
        // class {R.x, S.x, T.x} nests class {S.y, T.y} — hierarchical with
        // real recursion depth. Uncertainty lives in the `ok` attribute so
        // every block keeps a unique (x, y) join key among its *selected*
        // alternatives (blocks whose uncertainty spanned join keys would
        // be key-correlated and routed to Monte Carlo instead).
        let three = Schema::builder()
            .attribute("x", ["x0", "x1"])
            .attribute("y", ["y0", "y1"])
            .attribute("ok", ["no", "yes"])
            .build()
            .unwrap();
        let two = Schema::builder()
            .attribute("x", ["x0", "x1"])
            .attribute("ok", ["no", "yes"])
            .build()
            .unwrap();
        let mut r = ProbDb::new(two);
        r.push_block(Block::new(0, vec![alt(vec![0, 0], 0.6), alt(vec![0, 1], 0.4)]).unwrap())
            .unwrap();
        r.push_block(Block::new(1, vec![alt(vec![1, 0], 0.5), alt(vec![1, 1], 0.5)]).unwrap())
            .unwrap();
        let mut s = ProbDb::new(three.clone());
        s.push_certain(CompleteTuple::from_values(vec![0, 0, 1]))
            .unwrap();
        s.push_block(
            Block::new(0, vec![alt(vec![1, 0, 0], 0.5), alt(vec![1, 0, 1], 0.5)]).unwrap(),
        )
        .unwrap();
        s.push_block(
            Block::new(1, vec![alt(vec![0, 1, 0], 0.2), alt(vec![0, 1, 1], 0.8)]).unwrap(),
        )
        .unwrap();
        let mut t = ProbDb::new(three);
        t.push_block(
            Block::new(0, vec![alt(vec![0, 0, 0], 0.3), alt(vec![0, 0, 1], 0.7)]).unwrap(),
        )
        .unwrap();
        t.push_block(
            Block::new(1, vec![alt(vec![0, 1, 0], 0.6), alt(vec![0, 1, 1], 0.4)]).unwrap(),
        )
        .unwrap();
        t.push_certain(CompleteTuple::from_values(vec![1, 1, 1]))
            .unwrap();

        let ok = Predicate::eq(AttrId(2), ValueId(1));
        let r_ok = Predicate::eq(AttrId(1), ValueId(1));
        let mut catalog = Catalog::new();
        catalog.add("r", r).unwrap();
        catalog.add("s", s).unwrap();
        catalog.add("t", t).unwrap();
        let engine = CatalogEngine::new(&catalog);
        let q = Query::scan("r")
            .filter(r_ok)
            .join_on(
                Query::scan("s").filter(ok.clone()),
                [(AttrId(0), AttrId(0))],
            )
            .join_on_rel(
                "s",
                Query::scan("t").filter(ok.clone()),
                [(AttrId(0), AttrId(0)), (AttrId(1), AttrId(1))],
            );
        let (path, plan) = engine.plan(&q, Statistic::Probability).unwrap();
        assert_eq!(path, EvalPath::ExactColumnar);
        assert_eq!(plan, PlanClass::Liftable);
        let (p, report) = engine.probability(&q).unwrap();
        // Brute force over the product of the three world sets.
        let brute_p = oracle_probability(&catalog, &q).unwrap();
        assert!((p - brute_p).abs() < 1e-12, "{p} vs {brute_p}");
        // The decomposition nests: partition on x, then on y inside {s, t}.
        let Some(SafePlan::KeyPartition { inputs, .. }) = &report.decomposition else {
            panic!("expected key partition");
        };
        assert!(inputs
            .iter()
            .any(|i| matches!(i, SafePlan::KeyPartition { .. })));
    }

    #[test]
    fn non_hierarchical_query_routes_to_monte_carlo() {
        // R(x), S(x, y), T(y): sg(x) = {R, S} and sg(y) = {S, T} overlap
        // without nesting — the classic unsafe query.
        let one = |n: &str| {
            Schema::builder()
                .attribute(n, ["v0", "v1"])
                .build()
                .unwrap()
        };
        let two = Schema::builder()
            .attribute("x", ["v0", "v1"])
            .attribute("y", ["v0", "v1"])
            .build()
            .unwrap();
        let mut r = ProbDb::new(one("x"));
        r.push_block(Block::new(0, vec![alt(vec![0], 0.5), alt(vec![1], 0.5)]).unwrap())
            .unwrap();
        let mut s = ProbDb::new(two);
        s.push_block(Block::new(0, vec![alt(vec![0, 1], 0.5), alt(vec![1, 0], 0.5)]).unwrap())
            .unwrap();
        let mut t = ProbDb::new(one("y"));
        t.push_block(Block::new(0, vec![alt(vec![0], 0.5), alt(vec![1], 0.5)]).unwrap())
            .unwrap();

        let mut catalog = Catalog::new();
        catalog.add("r", r).unwrap();
        catalog.add("s", s).unwrap();
        catalog.add("t", t).unwrap();
        let engine = CatalogEngine::with_config(
            &catalog,
            QueryEngineConfig {
                mc_samples: 40_000,
                ..QueryEngineConfig::default()
            },
        );
        let q = Query::scan("r")
            .join_on("s", [(AttrId(0), AttrId(0))])
            .join_on_rel("s", "t", [(AttrId(1), AttrId(0))]);
        let (path, plan) = engine.plan(&q, Statistic::Probability).unwrap();
        assert_eq!(path, EvalPath::MonteCarlo);
        assert_eq!(plan, PlanClass::NonHierarchical);
        let (p, report) = engine.probability(&q).unwrap();
        assert_eq!(report.plan, PlanClass::NonHierarchical);
        let Some(SafePlan::Unsafe { reason }) = &report.decomposition else {
            panic!(
                "expected unsafe decomposition, got {:?}",
                report.decomposition
            );
        };
        assert!(reason.contains("non-hierarchical"), "{reason}");
        let brute_p = oracle_probability(&catalog, &q).unwrap();
        assert!((p - brute_p).abs() < 0.02, "{p} vs {brute_p}");

        // These blocks straddle their join keys (each alternative sits at
        // a different key value), so even ProbabilityBounds cannot
        // dissociate: it samples inside the trivial bracket.
        let (bounds, report) = engine.probability_bounds(&q).unwrap();
        assert_eq!(report.path, EvalPath::MonteCarlo);
        assert_eq!(report.plan, PlanClass::NonHierarchical);
        assert_eq!((bounds.lower, bounds.upper), (0.0, 1.0));
        let est = bounds.estimate.expect("sampled estimate");
        assert!((est - brute_p).abs() < 0.02, "{est} vs {brute_p}");
    }

    #[test]
    fn single_relation_statistics_reject_join_trees() {
        let catalog = sensors_catalog();
        let engine = CatalogEngine::new(&catalog);
        let q = Query::scan("sensors").join_on("readings", [(AttrId(0), AttrId(0))]);
        for stat in [
            Statistic::Marginals,
            Statistic::TopK(3),
            Statistic::ValueMarginal(AttrId(0)),
        ] {
            let e = engine.evaluate(&q, stat);
            assert!(
                matches!(e, Err(ProbDbError::UnsupportedStatistic { .. })),
                "{stat:?}"
            );
        }
        // Unknown relations and incompatible dictionaries are caught.
        let e = engine.probability(&Query::scan("nope"));
        assert!(matches!(e, Err(ProbDbError::UnknownRelation(_))));
        let q = Query::scan("sensors").join_on("readings", [(AttrId(1), AttrId(1))]);
        let e = engine.probability(&q); // kind vs level: different labels
        assert!(matches!(
            e,
            Err(ProbDbError::IncompatibleJoinDomains { .. })
        ));
    }

    #[test]
    fn single_relation_probability_matches_enumeration() {
        let db = db();
        let pred = Predicate::eq(AttrId(2), ValueId(0)); // inc = 50K
        let mut catalog = Catalog::new();
        catalog.add("db", db).unwrap();
        let engine = CatalogEngine::new(&catalog);
        let q = Query::scan("db").filter(pred);
        let brute = oracle_probability(&catalog, &q).unwrap();
        let (p, report) = engine.probability(&q).unwrap();
        assert_eq!(report.path, EvalPath::ExactColumnar);
        assert!((p - brute).abs() < 1e-12, "{p} vs {brute}");
        // Bounds on a safe query collapse to the exact point.
        let (bounds, report) = engine.probability_bounds(&q).unwrap();
        assert_eq!(report.path, EvalPath::ExactColumnar);
        assert_eq!(bounds, ProbabilityBounds::exact(p));
    }
}
