//! Evaluation reports: the planner's choices made visible.
//!
//! Every answer carries an [`EvalReport`]: which physical path ran, why
//! the planner chose it ([`PlanClass`]), per-relation scan statistics
//! ([`RelationStats`]), and — for multi-relation queries — the safe-plan
//! decomposition ([`SafePlan`]) the classifier found (or why it found
//! none).

/// Physical evaluation path chosen by the planner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalPath {
    /// Exact extensional evaluation over the columnar stores. Also the
    /// path of *deterministic dissociation bounds*, which run the same
    /// recursion twice and never sample.
    ExactColumnar,
    /// Monte-Carlo world sampling.
    MonteCarlo,
    /// Deterministic dissociation bounds refined by Monte-Carlo sampling
    /// because the bracket exceeded
    /// [`crate::QueryEngineConfig::bounds_tolerance`].
    Hybrid,
}

/// Which machinery produced the answer: the reference interpreter, a
/// freshly compiled bytecode program, or a cached one.
///
/// Orthogonal to [`EvalPath`]: the path says *what* ran (exact columnar
/// arithmetic, sampling, hybrid), the route says *how it was planned and
/// driven* — and in particular whether planning was skipped entirely
/// because the [`crate::PlanCache`] already knew this query shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanRoute {
    /// The recursive reference interpreter (compilation disabled, or a
    /// statistic outside the compiler's scope).
    Interpreted,
    /// Cold: the shape was planned, compiled to bytecode, executed by the
    /// VM and inserted into the plan cache.
    Compiled,
    /// Warm: a [`crate::PlanCache`] hit — resolve/classify/dissociate
    /// were skipped and the cached program ran against current data.
    CacheHit,
}

/// Why the planner chose the path it chose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanClass {
    /// The query is safe (single-relation, or a hierarchical join whose
    /// blocks do not straddle join keys) and the statistic is extensional:
    /// exact evaluation.
    Liftable,
    /// Liftable, but the exact DP cost exceeds the configured budget.
    DpBudgetExceeded,
    /// Monte Carlo was forced by configuration.
    ForcedMonteCarlo,
    /// The join-variable structure is not hierarchical — the query is
    /// unsafe for extensional evaluation and samples instead.
    NonHierarchical,
    /// The shape is hierarchical but some block's selected alternatives
    /// disagree on a join key, correlating key groups that the extensional
    /// plan must treat as independent: Monte Carlo.
    KeyCorrelated,
    /// The statistic itself has no extensional evaluator for this shape
    /// (e.g. the count distribution of a join): Monte Carlo.
    UnliftableStatistic,
    /// The query is unsafe for exact extensional evaluation, but
    /// dissociating a join variable (or treating aliased scans of one
    /// relation as independent copies) yields safe plans whose answers
    /// are guaranteed upper/lower bounds on the true probability
    /// (Gatterbauer & Suciu). [`crate::Statistic::ProbabilityBounds`]
    /// evaluates those bounds deterministically; point statistics still
    /// sample.
    Dissociable,
}

/// The safe-plan decomposition of a query, as found by the classifier.
///
/// A hierarchical query decomposes recursively: pick the join-variable
/// class shared by every relation of a connected component, partition all
/// relations by that key (partitions are independent when no block
/// straddles keys), and recurse into the subcomponents the removed class
/// leaves behind. The leaves are single-relation scans whose existential
/// probability is a per-block product.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SafePlan {
    /// A single relation: `P(∃ match) = 1 - ∏_blocks (1 - p_block)`.
    Scan {
        /// The scanned relation.
        relation: String,
    },
    /// Independent partition on a join-variable class: the outcome for
    /// each key value is independent of every other key value, and within
    /// one key value the inputs are independent of each other.
    KeyPartition {
        /// Human-readable class label, e.g. `sensors.station = readings.station`.
        key: String,
        /// Sub-plans evaluated independently per key value.
        inputs: Vec<SafePlan>,
    },
    /// No safe plan exists; the query was routed to Monte Carlo.
    Unsafe {
        /// Why classification failed (non-hierarchical structure or a
        /// key-straddling block).
        reason: String,
    },
    /// A *dissociated* scan inside a [`SafePlan::KeyPartition`]: the scan
    /// does not bind the partition key, so one independent copy of it is
    /// replicated into every key branch. The surrounding plan is then a
    /// safe plan of the dissociated query, and its probability bounds the
    /// original query's (upper with original probabilities, lower with
    /// the dual propagation probabilities).
    Copy {
        /// The replicated scan's name (alias or relation name).
        relation: String,
        /// The key class the scan was dissociated on.
        key: String,
    },
}

impl SafePlan {
    /// Renders the decomposition as a one-line s-expression, e.g.
    /// `⨅[r.k = s.k](scan r, scan s)`.
    pub fn render(&self) -> String {
        match self {
            Self::Scan { relation } => format!("scan {relation}"),
            Self::KeyPartition { key, inputs } => {
                let parts: Vec<String> = inputs.iter().map(SafePlan::render).collect();
                format!("⨅[{key}]({})", parts.join(", "))
            }
            Self::Unsafe { reason } => format!("unsafe: {reason}"),
            Self::Copy { relation, key } => format!("copy {relation}∥[{key}]"),
        }
    }
}

/// Guaranteed brackets on a boolean query's probability, answered by
/// [`crate::Statistic::ProbabilityBounds`].
///
/// Safe queries collapse the bracket to the exact probability; unsafe
/// ones carry the dissociation bounds (deterministic, exact-path) and —
/// when the bracket was wider than
/// [`crate::QueryEngineConfig::bounds_tolerance`] — a Monte-Carlo point
/// estimate clamped into the bracket.
///
/// ```
/// use mrsl_probdb::ProbabilityBounds;
///
/// let bounds = ProbabilityBounds::exact(0.42);
/// assert!(bounds.is_exact(1e-12));
/// assert_eq!(bounds.best(), 0.42);
/// assert!(bounds.contains(0.42));
///
/// let bracket = ProbabilityBounds::bracket(0.3, 0.5);
/// assert!((bracket.width() - 0.2).abs() < 1e-12);
/// assert_eq!(bracket.best(), 0.4); // midpoint without an estimate
/// assert!(!bracket.contains(0.6));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProbabilityBounds {
    /// Guaranteed lower bound on `P(result non-empty)`.
    pub lower: f64,
    /// Guaranteed upper bound on `P(result non-empty)`.
    pub upper: f64,
    /// Monte-Carlo point estimate, clamped into `[lower, upper]`; `None`
    /// when the bracket was within tolerance and no sampling ran.
    pub estimate: Option<f64>,
    /// Standard error of the estimate, when one was sampled.
    pub std_error: Option<f64>,
}

impl ProbabilityBounds {
    /// A collapsed bracket around an exactly known probability.
    pub fn exact(p: f64) -> Self {
        Self {
            lower: p,
            upper: p,
            estimate: None,
            std_error: None,
        }
    }

    /// A deterministic bracket without a sampled estimate.
    pub fn bracket(lower: f64, upper: f64) -> Self {
        Self {
            lower,
            upper,
            estimate: None,
            std_error: None,
        }
    }

    /// Width of the bracket, `upper - lower`.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// Midpoint of the bracket.
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.lower + self.upper)
    }

    /// Is the bracket collapsed (within `eps`) to a point?
    pub fn is_exact(&self, eps: f64) -> bool {
        self.width() <= eps
    }

    /// The best available point answer: the sampled estimate when one
    /// exists, the bracket midpoint otherwise.
    pub fn best(&self) -> f64 {
        self.estimate.unwrap_or_else(|| self.midpoint())
    }

    /// Does the bracket contain `p`?
    pub fn contains(&self, p: f64) -> bool {
        self.lower <= p && p <= self.upper
    }
}

/// Scan statistics of one relation touched by a query.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationStats {
    /// Relation name.
    pub relation: String,
    /// Total blocks in the relation.
    pub blocks_total: usize,
    /// Blocks whose selection probability the columnar pre-filter proved
    /// to be 0. On the exact path these are skipped by all downstream
    /// arithmetic; on the Monte-Carlo path the statistic is informational
    /// only — the world sampler still draws one alternative per block.
    pub blocks_pruned: usize,
    /// Blocks contributing non-zero probability mass.
    pub blocks_touched: usize,
    /// Certain rows scanned by the columnar filter.
    pub certain_rows: usize,
    /// Alternative rows scanned by the columnar filter.
    pub alt_rows: usize,
    /// Which inference engine (or learned-ensemble weights digest)
    /// derived this relation, when the derivation path recorded one via
    /// [`crate::ProbDb::set_provenance`]. `None` for hand-built or
    /// deserialized relations.
    pub provenance: Option<String>,
}

/// Per-query evaluation report: path, classification, per-relation scan
/// statistics and the safe-plan decomposition.
///
/// The flat `blocks_*`/`*_rows` fields aggregate over
/// [`EvalReport::relations`]; single-relation queries have exactly one
/// entry there, so the flat fields read the same as they did before the
/// catalog API.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// Physical path taken.
    pub path: EvalPath,
    /// How the answer was planned and driven: interpreter, fresh
    /// compile, or plan-cache hit.
    pub route: PlanRoute,
    /// Planner classification behind the choice.
    pub plan: PlanClass,
    /// Total blocks across all scanned relations.
    pub blocks_total: usize,
    /// Pruned blocks across all scanned relations.
    pub blocks_pruned: usize,
    /// Touched blocks across all scanned relations.
    pub blocks_touched: usize,
    /// Certain rows scanned, across relations.
    pub certain_rows: usize,
    /// Alternative rows scanned, across relations.
    pub alt_rows: usize,
    /// Worlds sampled (0 on the exact path).
    pub mc_samples: usize,
    /// Per-relation statistics, in scan order.
    pub relations: Vec<RelationStats>,
    /// The safe-plan decomposition for join queries (`None` on
    /// single-relation queries, where the plan is trivially a scan).
    pub decomposition: Option<SafePlan>,
    /// What was dissociated to make the plan safe, when the answer came
    /// from dissociation bounds: one human-readable entry per dissociated
    /// variable, e.g. `` `levels` ⇢ [readings.level = levels.level] `` for
    /// a branch-replicated scan, or `` `r1`, `r2` ≡ `r` `` for aliased
    /// scans treated as independent copies. Empty otherwise.
    pub dissociated: Vec<String>,
}

impl EvalReport {
    pub(crate) fn new(
        path: EvalPath,
        route: PlanRoute,
        plan: PlanClass,
        relations: Vec<RelationStats>,
        mc_samples: usize,
        decomposition: Option<SafePlan>,
        dissociated: Vec<String>,
    ) -> Self {
        let sum = |f: fn(&RelationStats) -> usize| relations.iter().map(f).sum();
        Self {
            path,
            route,
            plan,
            blocks_total: sum(|r| r.blocks_total),
            blocks_pruned: sum(|r| r.blocks_pruned),
            blocks_touched: sum(|r| r.blocks_touched),
            certain_rows: sum(|r| r.certain_rows),
            alt_rows: sum(|r| r.alt_rows),
            mc_samples,
            relations,
            decomposition,
            dissociated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_totals_aggregate_relations() {
        let rel = |name: &str, blocks: usize, pruned: usize| RelationStats {
            relation: name.to_string(),
            blocks_total: blocks,
            blocks_pruned: pruned,
            blocks_touched: blocks - pruned,
            certain_rows: 10,
            alt_rows: blocks * 2,
            provenance: None,
        };
        let report = EvalReport::new(
            EvalPath::ExactColumnar,
            PlanRoute::Interpreted,
            PlanClass::Liftable,
            vec![rel("a", 5, 2), rel("b", 3, 0)],
            0,
            None,
            Vec::new(),
        );
        assert_eq!(report.blocks_total, 8);
        assert_eq!(report.blocks_pruned, 2);
        assert_eq!(report.blocks_touched, 6);
        assert_eq!(report.certain_rows, 20);
        assert_eq!(report.alt_rows, 16);
        assert_eq!(report.relations.len(), 2);
    }

    #[test]
    fn safe_plan_renders_nested_structure() {
        let plan = SafePlan::KeyPartition {
            key: "r.k = s.k".into(),
            inputs: vec![
                SafePlan::Scan {
                    relation: "r".into(),
                },
                SafePlan::KeyPartition {
                    key: "s.y = t.y".into(),
                    inputs: vec![
                        SafePlan::Scan {
                            relation: "s".into(),
                        },
                        SafePlan::Scan {
                            relation: "t".into(),
                        },
                    ],
                },
            ],
        };
        assert_eq!(
            plan.render(),
            "⨅[r.k = s.k](scan r, ⨅[s.y = t.y](scan s, scan t))"
        );
        let unsafe_plan = SafePlan::Unsafe {
            reason: "non-hierarchical".into(),
        };
        assert!(unsafe_plan.render().starts_with("unsafe:"));
    }
}
