//! Monte-Carlo evaluation of resolved queries.
//!
//! The fallback path for everything the exact evaluators cannot lift:
//! non-hierarchical shapes, key-correlated blocks, aliased self-joins,
//! out-of-budget DPs, forced sampling, and the bracket-gated refinement of
//! dissociation bounds. One *joint world* draws one alternative per block
//! in every **distinct** catalog relation the query touches (through the
//! shared [`choose_weighted`](crate::world::choose_weighted) primitive,
//! so single-relation draws match the legacy sampler draw for draw);
//! aliased scans of one relation read the *same* draw — they see one
//! world, which is exactly the dependence that makes self-joins unsafe
//! for the independent-product plans. The query tree is then evaluated
//! row-wise against the drawn world by a hash-join over the join-class
//! assignments, yielding the per-world result count every estimator is
//! derived from.

use super::classify::CompiledTerm;
use crate::montecarlo::sample_block_rows;
use mrsl_util::{seeded_rng, FxHashMap, OnlineStats};

/// Per-world result counts of a resolved query over `n` joint worlds.
pub(crate) fn sample_join_counts(
    compiled: &[CompiledTerm],
    class_count: usize,
    n: usize,
    seed: u64,
) -> Vec<u64> {
    debug_assert!(n > 0, "callers check the sample budget");
    let mut rng = seeded_rng(seed);
    // One draw per *distinct relation*, shared by its aliased scans:
    // map every term to the first term scanning the same relation.
    let draw_group: Vec<usize> = compiled
        .iter()
        .map(|ct| {
            compiled
                .iter()
                .position(|o| o.relation == ct.relation)
                .expect("the term itself matches")
        })
        .collect();
    // Live certain rows are present in every world; precompute their ids.
    let certain_rows: Vec<Vec<u32>> = compiled
        .iter()
        .map(|ct| ct.live_certain.iter_ones().map(|i| i as u32).collect())
        .collect();
    let mut counts = Vec::with_capacity(n);
    let mut chosen: Vec<Vec<usize>> = vec![Vec::new(); compiled.len()];
    let mut alt_rows: Vec<Vec<u32>> = vec![Vec::new(); compiled.len()];
    for _ in 0..n {
        // One world: one draw per distinct relation, then per scan the
        // live certain rows plus the drawn live alternatives.
        for (t, ct) in compiled.iter().enumerate() {
            if draw_group[t] == t {
                chosen[t].clear();
                sample_block_rows(ct.db, &mut rng, &mut chosen[t]);
            }
        }
        for (t, (ct, alts)) in compiled.iter().zip(&mut alt_rows).enumerate() {
            alts.clear();
            alts.extend(
                chosen[draw_group[t]]
                    .iter()
                    .filter(|&&r| ct.live_alts.get(r))
                    .map(|&r| r as u32),
            );
        }
        counts.push(world_count(compiled, class_count, &certain_rows, &alt_rows));
    }
    counts
}

/// Result count of one drawn world: a hash-join of the per-term present
/// rows (certain rows index the certain columns, alternatives the
/// alternative columns) over the join-class assignments. With no classes
/// (single relation) this is just the row count.
fn world_count(
    compiled: &[CompiledTerm],
    class_count: usize,
    certain_rows: &[Vec<u32>],
    alt_rows: &[Vec<u32>],
) -> u64 {
    if class_count == 0 {
        debug_assert_eq!(compiled.len(), 1, "joins always bind classes");
        return (certain_rows[0].len() + alt_rows[0].len()) as u64;
    }
    let mut acc: FxHashMap<Vec<u16>, u64> = FxHashMap::default();
    acc.insert(vec![u16::MAX; class_count], 1);
    for (t, ct) in compiled.iter().enumerate() {
        // Group this term's present rows by its join-key values.
        let mut groups: FxHashMap<Vec<u16>, u64> = FxHashMap::default();
        for &r in &certain_rows[t] {
            let key: Vec<u16> = ct
                .keys
                .iter()
                .map(|&(_, ckey, _)| ckey[r as usize])
                .collect();
            *groups.entry(key).or_insert(0) += 1;
        }
        for &r in &alt_rows[t] {
            let key: Vec<u16> = ct
                .keys
                .iter()
                .map(|&(_, _, akey)| akey[r as usize])
                .collect();
            *groups.entry(key).or_insert(0) += 1;
        }
        let mut next: FxHashMap<Vec<u16>, u64> = FxHashMap::default();
        for (assign, m) in &acc {
            'keys: for (key, c) in &groups {
                let mut merged = assign.clone();
                for (&(ci, _, _), &v) in ct.keys.iter().zip(key) {
                    if merged[ci] == u16::MAX {
                        merged[ci] = v;
                    } else if merged[ci] != v {
                        continue 'keys;
                    }
                }
                *next.entry(merged).or_insert(0) += m * c;
            }
        }
        acc = next;
        if acc.is_empty() {
            return 0;
        }
    }
    acc.values().sum()
}

/// `(estimate, standard error)` of `P(result non-empty)` from per-world
/// counts.
pub(crate) fn probability_estimate(counts: &[u64]) -> (f64, f64) {
    let n = counts.len() as f64;
    let hits = counts.iter().filter(|&&c| c > 0).count() as f64;
    let p = hits / n;
    (p, (p * (1.0 - p) / n).sqrt())
}

/// `(mean, standard error)` of the result count from per-world counts.
pub(crate) fn count_estimate(counts: &[u64]) -> (f64, f64) {
    let mut stats = OnlineStats::new();
    for &c in counts {
        stats.push(c as f64);
    }
    (stats.mean(), stats.std_dev() / (counts.len() as f64).sqrt())
}

/// Histogram `d[k] = P(|result| = k)` from per-world counts.
pub(crate) fn count_histogram(counts: &[u64]) -> Vec<f64> {
    let max = counts.iter().copied().max().unwrap_or(0) as usize;
    let mut hist = vec![0.0f64; max + 1];
    for &c in counts {
        hist[c as usize] += 1.0;
    }
    let n = counts.len() as f64;
    hist.iter_mut().for_each(|h| *h /= n);
    hist
}

/// Per-block hit frequency of the selection over `n` sampled worlds
/// (single-relation marginals on the forced-Monte-Carlo path).
pub(crate) fn mc_selection_marginals(ct: &CompiledTerm, n: usize, seed: u64) -> Vec<f64> {
    let cols = ct.db.columns();
    let mut rng = seeded_rng(seed);
    let mut hits = vec![0usize; cols.block_count()];
    for _ in 0..n {
        for (b, hit) in hits.iter_mut().enumerate() {
            let range = cols.block_range(b);
            let chosen = crate::world::choose_weighted(
                cols.alt_probs()[range.clone()].iter().copied(),
                &mut rng,
            );
            if ct.live_alts.get(range.start + chosen) {
                *hit += 1;
            }
        }
    }
    hits.iter().map(|&h| h as f64 / n as f64).collect()
}
