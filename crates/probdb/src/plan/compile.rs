//! Lowering safe plans to bytecode, and the shape-keyed plan cache.
//!
//! The compile pipeline turns one planning verdict into a reusable
//! artifact:
//!
//! 1. **Shape key** — [`crate::algebra::Flattened::shape_hash`]
//!    fingerprints the query shape (scan names, relations, raw
//!    predicates, join pairs; the projection is excluded). The statistic
//!    tag joins it in the cache key, and every hit re-verifies full
//!    structural equality ([`CachedPlan::matches`]) so fingerprint
//!    collisions cannot reuse a wrong plan.
//! 2. **Lowering** — [`compile_boolean`] / [`compile_bound`] walk the
//!    same component/covering-root recursion as the interpreter
//!    (`exact::component_probability`, `dissociate::component_bound`)
//!    but emit flat [`vm::Op`]s instead of recursing over row maps;
//!    [`compile_count`] captures the deterministic mass-join schedule.
//! 3. **Peephole** — [`peephole`] fuses all-leaf partition bodies into
//!    inline leaf lists; the lowering itself already hoists
//!    loop-invariant (copied-only) subtrees and records per-term sort
//!    paths so partition keys are sorted once at bind time instead of
//!    hashed per recursion level.
//! 4. **Cache** — [`PlanCache`] stores the owned shape, the compiled
//!    program, the schemas, data-version stamps and the data-dependent
//!    guard verdicts. A warm hit skips flatten-resolve-classify-
//!    dissociate entirely: it re-binds the owned shape against current
//!    column data and executes the cached program.
//!
//! **Invalidation.** Classification is partly data-dependent (the
//! key-straddle and alias-live-set guards), so a cached verdict is only
//! reused when it is provably still right: if every relation's
//! [`crate::ProbDb::version`] stamp is unchanged the guards cannot have
//! moved and are skipped outright; if any stamp moved, the two guards are
//! recomputed (cheap linear scans — still no classification) and compared
//! against the recorded verdicts. A flipped guard or a swapped schema
//! invalidates the entry and falls back to a cold replan.

use super::classify::{
    alias_live_mismatch, components, key_straddle, Class, CompiledTerm, Resolved, Term,
};
use super::dissociate::{
    alias_multiplicities, covering_root, describe_bounds, extended_class_terms,
    intersect_candidates, DissociatedBounds, Dissociation, Mode,
};
use super::exact;
use super::report::{EvalPath, PlanClass, SafePlan};
use super::vm::{self, BodyStep, BoundsProgram, CountProgram, Op, Program, Transform};
use crate::algebra::{Flattened, ResolvedPair, Statistic};
use crate::column::SHARD_COUNT;
use crate::database::ProbDb;
use crate::predicate::Predicate;
use mrsl_relation::{AttrId, Schema};
use std::ops::Range;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Cache tag of a statistic, for statistics whose planning verdict and
/// program are pure functions of the query shape (plus the guarded data
/// properties). Other statistics always plan fresh.
pub(crate) fn cache_tag(stat: Statistic) -> Option<u8> {
    match stat {
        Statistic::Probability => Some(1),
        Statistic::ProbabilityBounds => Some(2),
        Statistic::ExpectedCount => Some(3),
        _ => None,
    }
}

/// Lowers a liftable (hierarchical) shape to a boolean-probability
/// program, mirroring `exact::component_probability`'s recursion order
/// exactly.
pub(crate) fn compile_boolean(resolved: &Resolved) -> Program {
    let class_terms: Vec<Vec<usize>> = resolved.classes.iter().map(Class::terms).collect();
    let all: Vec<usize> = (0..resolved.terms.len()).collect();
    let active: Vec<usize> = (0..resolved.classes.len()).collect();
    let mut ops = Vec::new();
    let mut paths = vec![Vec::new(); resolved.terms.len()];
    let roots = components(&class_terms, &all, &active)
        .into_iter()
        .map(|comp| lower_exact(resolved, &class_terms, &comp, &active, &mut paths, &mut ops))
        .collect();
    peephole(Program { ops, roots, paths })
}

fn lower_exact(
    resolved: &Resolved,
    class_terms: &[Vec<usize>],
    comp: &[usize],
    active: &[usize],
    paths: &mut [Vec<usize>],
    ops: &mut Vec<Op>,
) -> u32 {
    if comp.len() == 1 {
        ops.push(Op::Leaf {
            term: comp[0] as u32,
            transform: Transform::Identity,
        });
        return (ops.len() - 1) as u32;
    }
    let root = *active
        .iter()
        .find(|&&c| {
            let terms = resolved.classes[c].terms();
            comp.iter().all(|t| terms.contains(t))
        })
        .expect("hierarchical connected component has a covering class");
    let binding: Vec<(u32, u32)> = comp
        .iter()
        .map(|&t| {
            paths[t].push(root);
            (t as u32, (paths[t].len() - 1) as u32)
        })
        .collect();
    let remaining: Vec<usize> = active.iter().copied().filter(|&c| c != root).collect();
    let body: Vec<BodyStep> = components(class_terms, comp, &remaining)
        .iter()
        .map(|sub| {
            BodyStep::Eval(lower_exact(
                resolved,
                class_terms,
                sub,
                &remaining,
                paths,
                ops,
            ))
        })
        .collect();
    ops.push(Op::Partition {
        binding,
        copied: Vec::new(),
        body,
        fused: None,
    });
    (ops.len() - 1) as u32
}

/// Lowers one dissociation candidate to a single-bound program, mirroring
/// `dissociate::component_bound`: terms binding the root partition as
/// usual, dissociated copies replicated with their replication registers
/// accumulating the branch count, and the mode's mass transform at the
/// leaves.
pub(crate) fn compile_bound(resolved: &Resolved, ext: &[(usize, usize)], mode: Mode) -> Program {
    let class_terms = extended_class_terms(resolved, ext);
    let alias_k = alias_multiplicities(resolved);
    let all: Vec<usize> = (0..resolved.terms.len()).collect();
    let active: Vec<usize> = (0..resolved.classes.len()).collect();
    let mut ops = Vec::new();
    let mut paths = vec![Vec::new(); resolved.terms.len()];
    let roots = components(&class_terms, &all, &active)
        .into_iter()
        .map(|comp| {
            lower_bound(
                resolved,
                &class_terms,
                &alias_k,
                mode,
                &comp,
                &active,
                &mut paths,
                &mut ops,
            )
        })
        .collect();
    peephole(Program { ops, roots, paths })
}

#[allow(clippy::too_many_arguments)]
fn lower_bound(
    resolved: &Resolved,
    class_terms: &[Vec<usize>],
    alias_k: &[f64],
    mode: Mode,
    comp: &[usize],
    active: &[usize],
    paths: &mut [Vec<usize>],
    ops: &mut Vec<Op>,
) -> u32 {
    if comp.len() == 1 {
        let t = comp[0];
        let transform = match mode {
            Mode::Upper => {
                if alias_k[t] > 1.0 {
                    Transform::ConjRoot { k: alias_k[t] }
                } else {
                    Transform::Identity
                }
            }
            Mode::Lower => Transform::DisjRoot,
        };
        ops.push(Op::Leaf {
            term: t as u32,
            transform,
        });
        return (ops.len() - 1) as u32;
    }
    let root = covering_root(resolved, class_terms, comp, active)
        .expect("admissible dissociations decompose");
    let root_terms = resolved.classes[root].terms();
    let binding: Vec<(u32, u32)> = comp
        .iter()
        .filter(|t| root_terms.contains(t))
        .map(|&t| {
            paths[t].push(root);
            (t as u32, (paths[t].len() - 1) as u32)
        })
        .collect();
    let copied: Vec<usize> = comp
        .iter()
        .copied()
        .filter(|t| !root_terms.contains(t))
        .collect();
    let remaining: Vec<usize> = active.iter().copied().filter(|&c| c != root).collect();
    let body: Vec<BodyStep> = components(class_terms, comp, &remaining)
        .iter()
        .map(|sub| {
            let op = lower_bound(
                resolved,
                class_terms,
                alias_k,
                mode,
                sub,
                &remaining,
                paths,
                ops,
            );
            // Copied-only subtrees see the same windows and replication
            // registers in every branch — loop-invariant, hoist.
            if sub.iter().all(|t| copied.contains(t)) {
                BodyStep::Hoisted(op)
            } else {
                BodyStep::Eval(op)
            }
        })
        .collect();
    ops.push(Op::Partition {
        binding,
        copied: copied.iter().map(|&t| t as u32).collect(),
        body,
        fused: None,
    });
    (ops.len() - 1) as u32
}

/// Lowers the expected-count statistic: the single-relation closed form
/// when there are no join classes, the mass-join schedule otherwise.
pub(crate) fn compile_count(resolved: &Resolved) -> CountProgram {
    if resolved.classes.is_empty() && resolved.terms.len() == 1 {
        CountProgram {
            steps: None,
            classes: 0,
        }
    } else {
        CountProgram {
            steps: Some(exact::count_steps(resolved)),
            classes: resolved.classes.len(),
        }
    }
}

/// The peephole pass: partitions whose body is entirely un-hoisted leaves
/// get the fused inline leaf list (no op dispatch per branch). Selection
/// fusion happens upstream of lowering — flattening conjoins adjacent
/// `Filter`s into one per-term predicate, compiled into a single live-row
/// bitmap — and leaf-mass hoisting plus the one-time key pre-sort are
/// encoded by the lowering itself ([`BodyStep::Hoisted`],
/// [`Program::paths`]).
fn peephole(mut prog: Program) -> Program {
    for i in 0..prog.ops.len() {
        let fused = match &prog.ops[i] {
            Op::Partition {
                binding,
                body,
                fused: None,
                ..
            } => body
                .iter()
                .map(|step| match step {
                    BodyStep::Eval(op) => match &prog.ops[*op as usize] {
                        // Memoizable iff this partition is the term's
                        // first binding level (outer window = the full
                        // register for the whole fold).
                        Op::Leaf { term, transform } => Some((
                            *term,
                            *transform,
                            binding.iter().any(|&(t, lvl)| t == *term && lvl == 0),
                        )),
                        _ => None,
                    },
                    BodyStep::Hoisted(_) => None,
                })
                .collect::<Option<Vec<_>>>(),
            _ => None,
        };
        if let Some(f) = fused {
            if let Op::Partition { fused: slot, .. } = &mut prog.ops[i] {
                *slot = Some(f);
            }
        }
    }
    prog
}

/// Compiles every bounds candidate into its upper/lower program pair.
pub(crate) fn compile_bounds(
    resolved: &Resolved,
    candidates: &[Dissociation],
) -> Vec<BoundsProgram> {
    candidates
        .iter()
        .map(|cand| BoundsProgram {
            upper: compile_bound(resolved, &cand.extensions, Mode::Upper),
            lower: compile_bound(resolved, &cand.extensions, Mode::Lower),
        })
        .collect()
}

/// Binds registers for every bounds candidate: candidate-major, upper
/// program first then lower (their sort paths differ, so each program
/// gets its own register set).
pub(crate) fn bind_bounds(
    programs: &[BoundsProgram],
    compiled: &[CompiledTerm],
) -> Vec<Vec<vm::TermRegs>> {
    programs
        .iter()
        .flat_map(|bp| {
            [
                vm::bind_program(&bp.upper, compiled),
                vm::bind_program(&bp.lower, compiled),
            ]
        })
        .collect()
}

/// Executes compiled bounds candidates and intersects the brackets — the
/// VM counterpart of `dissociate::evaluate_bounds`, sharing its selection
/// and report-rendering logic so both paths pick identical winners.
pub(crate) fn run_bounds(
    resolved: &Resolved,
    compiled: &[CompiledTerm],
    candidates: &[Dissociation],
    programs: &[BoundsProgram],
    shards: usize,
) -> DissociatedBounds {
    let regs = bind_bounds(programs, compiled);
    run_bounds_prebound(resolved, candidates, programs, &regs, shards, None)
}

/// Memo of the bounds report rendering, keyed by the winning
/// `(upper_at, lower_at)` candidate pair. `describe_bounds` re-derives
/// the winner's dissociated decomposition — pure shape work, identical
/// for every evaluation that picks the same winner — so warm hits reuse
/// it instead of re-walking the component recursion.
pub(crate) type DescribeMemo = Mutex<Option<((usize, usize), (SafePlan, Vec<String>))>>;

/// [`run_bounds`] over registers bound earlier (the layout produced by
/// [`bind_bounds`]).
///
/// The candidate brackets are independent of each other, so on a
/// multi-threaded rayon pool they evaluate concurrently — the shim
/// collects in candidate order and each bracket's fold is itself
/// deterministic ([`vm::run_prebound_sharded`]), so the evals vector,
/// the intersection, and the winning candidate are bit-identical to the
/// sequential loop at every thread count.
pub(crate) fn run_bounds_prebound(
    resolved: &Resolved,
    candidates: &[Dissociation],
    programs: &[BoundsProgram],
    regs: &[Vec<vm::TermRegs>],
    shards: usize,
    describe: Option<&DescribeMemo>,
) -> DissociatedBounds {
    let eval_one = |(i, bp): (usize, &BoundsProgram)| {
        (
            vm::run_prebound_sharded(&bp.upper, &regs[2 * i], shards).clamp(0.0, 1.0),
            vm::run_prebound_sharded(&bp.lower, &regs[2 * i + 1], shards).clamp(0.0, 1.0),
        )
    };
    let evals: Vec<(f64, f64)> = if rayon::current_num_threads() > 1 && programs.len() > 1 {
        use rayon::prelude::*;
        programs
            .iter()
            .enumerate()
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(eval_one)
            .collect()
    } else {
        programs.iter().enumerate().map(eval_one).collect()
    };
    let choice = intersect_candidates(&evals);
    let key = (choice.upper_at, choice.lower_at);
    let (plan, dissociated) = match describe {
        Some(memo) => {
            let mut slot = memo.lock().expect("describe memo lock");
            match &*slot {
                Some((k, v)) if *k == key => v.clone(),
                _ => {
                    let v = describe_bounds(resolved, candidates, &choice);
                    *slot = Some((key, v.clone()));
                    v
                }
            }
        }
        None => describe_bounds(resolved, candidates, &choice),
    };
    DissociatedBounds {
        lower: choice.lower,
        upper: choice.upper,
        plan,
        dissociated,
    }
}

/// The executable part of a cached plan.
#[derive(Debug)]
pub(crate) enum CompiledProgram {
    /// Exact boolean probability (also the collapsed-bracket case of
    /// `ProbabilityBounds` on safe shapes).
    Boolean(Program),
    /// Dissociation ensemble: per-candidate upper/lower program pairs.
    Bounds {
        candidates: Vec<Dissociation>,
        programs: Vec<BoundsProgram>,
    },
    /// Expected count.
    Count(CountProgram),
    /// The verdict was Monte Carlo — no bytecode, but caching it still
    /// skips replanning. For `ProbabilityBounds` the planner's sampling
    /// reason is kept for the report's `Unsafe` node.
    Sampled { bounds_reason: Option<String> },
}

/// Bound registers memoized inside a cache entry: the gathered, pre-
/// sorted columns of every deterministic program, valid exactly while
/// every relation's data version matches `versions`. A warm hit whose
/// stamps match skips predicate compilation and register binding and goes
/// straight to the fold; any mutation makes the stamps differ and the
/// next evaluation rebinds (and overwrites) the registers.
#[derive(Debug)]
pub(crate) struct BoundRegs {
    /// Data versions the registers were gathered under, term order.
    pub versions: Vec<u64>,
    /// Per-term shard stamps ([`ProbDb::shard_versions`]) at gather
    /// time. When only some shards moved, [`rebind_or_patch`] re-gathers
    /// just those leading-key ranges ([`vm::patch_term`]) and splices
    /// the untouched runs over from the memo.
    pub shard_versions: Vec<Vec<u64>>,
    /// Register sets per program: `[regs]` for a boolean program, the
    /// [`bind_bounds`] layout for a bounds ensemble, empty for a count
    /// program (whose memo is [`BoundRegs::count`]).
    pub per_program: Vec<Vec<vm::TermRegs>>,
    /// Memoized grouped mass tables of an expected-count program, step
    /// order; reused per step while that step's term data is unchanged.
    pub count: Option<Vec<exact::MassTable>>,
    /// The scan statistics the report would recompute from the compiled
    /// terms.
    pub stats: Vec<crate::plan::RelationStats>,
}

/// One term of the owned query shape stored in the cache.
#[derive(Debug)]
struct OwnedTerm {
    name: String,
    relation: String,
    /// The raw flattened predicate, compared verbatim against incoming
    /// queries on every hit.
    raw_pred: Predicate,
    /// The simplified predicate, re-bound into [`Term`]s on warm hits.
    pred: Predicate,
    class_attrs: Vec<(usize, AttrId)>,
}

/// A fully planned, compiled, shape-verified cache entry: everything a
/// warm hit needs to execute against current column data without
/// resolving or classifying anything.
#[derive(Debug)]
pub(crate) struct CachedPlan {
    terms: Vec<OwnedTerm>,
    classes: Vec<(Vec<(usize, AttrId)>, String)>,
    joins: Vec<ResolvedPair>,
    schemas: Vec<Arc<Schema>>,
    /// Recorded verdict of the key-straddle guard at plan time.
    pub straddle: bool,
    /// Recorded verdict of the alias-live-mismatch guard at plan time.
    pub alias_mismatch: bool,
    /// The planned evaluation path (pre any hybrid upgrade, which is an
    /// evaluation-time decision re-made per answer).
    pub path: EvalPath,
    pub plan_class: PlanClass,
    /// The classifier's decomposition (bounds answers re-derive their
    /// winning candidate's decomposition at evaluation time).
    pub decomposition: Option<SafePlan>,
    pub program: CompiledProgram,
    /// Version-guarded register memo (see [`BoundRegs`]); `None` until
    /// the first warm execution binds it.
    pub regs: Mutex<Option<BoundRegs>>,
    /// Bounds report-rendering memo (see [`DescribeMemo`]).
    pub describe: DescribeMemo,
}

impl CachedPlan {
    /// Builds the owned entry from a cold plan, recording the guard
    /// verdicts uniformly and stamping the relations' data versions.
    pub(crate) fn capture(
        flat: &Flattened,
        resolved: &Resolved,
        compiled: &[CompiledTerm],
        path: EvalPath,
        plan_class: PlanClass,
        decomposition: Option<SafePlan>,
        program: CompiledProgram,
    ) -> (Self, Vec<u64>) {
        let versions = resolved.terms.iter().map(|t| t.db.version()).collect();
        let plan = CachedPlan {
            terms: flat
                .terms
                .iter()
                .zip(&resolved.terms)
                .map(|(ft, rt)| OwnedTerm {
                    name: rt.name.clone(),
                    relation: rt.relation.clone(),
                    raw_pred: ft.pred.clone(),
                    pred: rt.pred.clone(),
                    class_attrs: rt.class_attrs.clone(),
                })
                .collect(),
            classes: resolved
                .classes
                .iter()
                .map(|c| (c.members.clone(), c.label.clone()))
                .collect(),
            joins: flat.joins.clone(),
            schemas: resolved
                .terms
                .iter()
                .map(|t| t.db.schema().clone())
                .collect(),
            straddle: key_straddle(resolved, compiled).is_some(),
            alias_mismatch: alias_live_mismatch(resolved, compiled).is_some(),
            path,
            plan_class,
            decomposition,
            program,
            regs: Mutex::new(None),
            describe: Mutex::new(None),
        };
        (plan, versions)
    }

    /// Full structural shape verification on a fingerprint match.
    pub(crate) fn matches(&self, flat: &Flattened) -> bool {
        self.terms.len() == flat.terms.len()
            && self.joins == flat.joins
            && self
                .terms
                .iter()
                .zip(&flat.terms)
                .all(|(a, b)| a.name == b.name && a.relation == b.relation && a.raw_pred == b.pred)
    }

    /// Re-binds the owned shape against current catalog data: cheap
    /// per-term lookups plus `O(shape)` clones, no resolution or
    /// classification. Returns `None` (stale — cold replan) when a
    /// relation disappeared or its schema changed.
    pub(crate) fn bind<'a, F>(&self, lookup: &F) -> Option<(Resolved<'a>, Vec<u64>)>
    where
        F: Fn(&str) -> Option<&'a ProbDb>,
    {
        let mut terms = Vec::with_capacity(self.terms.len());
        let mut versions = Vec::with_capacity(self.terms.len());
        for (i, t) in self.terms.iter().enumerate() {
            let db = lookup(&t.relation)?;
            let schema = db.schema();
            if !Arc::ptr_eq(schema, &self.schemas[i]) && **schema != *self.schemas[i] {
                return None;
            }
            versions.push(db.version());
            terms.push(Term {
                name: t.name.clone(),
                relation: t.relation.clone(),
                db,
                pred: t.pred.clone(),
                class_attrs: t.class_attrs.clone(),
            });
        }
        let classes = self
            .classes
            .iter()
            .map(|(members, label)| Class {
                members: members.clone(),
                label: label.clone(),
            })
            .collect();
        Some((Resolved { terms, classes }, versions))
    }
}

/// Per-term register delta between a memo's shard stamps and the
/// current data, decided by [`term_deltas`].
enum TermDelta {
    /// Every shard stamp unchanged: the memoized registers are still the
    /// data and move over untouched.
    Clean,
    /// Only these leading-key value ranges changed (ascending,
    /// disjoint): patch candidates.
    Dirty(Vec<Range<u32>>),
    /// Everything changed (or the memo predates this database): full
    /// re-gather.
    Rebind,
}

/// Classifies every term by comparing the memo's shard stamps against
/// the current per-shard stamps, merging adjacent dirty shards into one
/// splice range.
fn term_deltas(resolved: &Resolved, old: &[Vec<u64>]) -> Vec<TermDelta> {
    resolved
        .terms
        .iter()
        .zip(old)
        .map(|(term, old_stamps)| {
            let new = term.db.shard_versions();
            if old_stamps.as_slice() == new {
                return TermDelta::Clean;
            }
            let map = term.db.shard_map();
            let mut ranges: Vec<Range<u32>> = Vec::new();
            for s in 0..SHARD_COUNT {
                if old_stamps[s] == new[s] {
                    continue;
                }
                let r = map.value_range(s);
                if r.is_empty() {
                    continue;
                }
                match ranges.last_mut() {
                    Some(last) if last.end == r.start => last.end = r.end,
                    _ => ranges.push(r),
                }
            }
            let card = map.value_range(SHARD_COUNT - 1).end;
            if ranges.is_empty() || (ranges.len() == 1 && ranges[0] == (0..card)) {
                TermDelta::Rebind
            } else {
                TermDelta::Dirty(ranges)
            }
        })
        .collect()
}

/// Can term `t`'s registers for this sort path be range-patched? The
/// splice operates on the level-0 sort key, while the shard stamps cover
/// the *leading attribute's* value ranges — so patching is sound exactly
/// when the program's root partition keys this term on attribute 0.
fn patchable(resolved: &Resolved, path: &[usize], t: usize) -> bool {
    path.first().is_some_and(|&c| {
        resolved.terms[t]
            .class_attrs
            .iter()
            .any(|&(ci, a)| ci == c && a == AttrId(0))
    })
}

/// Result of [`rebind_or_patch`]: the refreshed register sets in the
/// memo layout, plus how they were obtained (for the cache counters).
pub(crate) struct RegsMaintenance {
    /// Register sets per program, [`BoundRegs::per_program`] layout.
    pub per_program: Vec<Vec<vm::TermRegs>>,
    /// Refreshed mass tables of a count program.
    pub count: Option<Vec<exact::MassTable>>,
    /// Term register sets refreshed by range patching.
    pub patched: u64,
    /// Term register sets (or mass tables) rebuilt from scratch.
    pub rebound: u64,
}

/// Refreshes a cached plan's register memo against current column data,
/// consuming the old memo: terms whose shard stamps are all unchanged
/// move over untouched, terms whose data moved in only some shards are
/// range-patched ([`vm::patch_term`]), and everything else is re-bound.
/// Count programs refresh per-step mass tables the same way (reuse per
/// unchanged term, rebuild otherwise). With no usable memo, every
/// program binds fresh — fanned out over the rayon pool when it has
/// more than one thread (per-program binds are independent and collect
/// in program order, so the result is identical either way).
pub(crate) fn rebind_or_patch(
    plan: &CachedPlan,
    resolved: &Resolved,
    compiled: &[CompiledTerm],
    versions: &[u64],
) -> RegsMaintenance {
    let programs: Vec<&Program> = match &plan.program {
        CompiledProgram::Boolean(p) => vec![p],
        CompiledProgram::Bounds { programs, .. } => programs
            .iter()
            .flat_map(|bp| [&bp.upper, &bp.lower])
            .collect(),
        _ => Vec::new(),
    };
    let steps = match &plan.program {
        CompiledProgram::Count(cp) => cp.steps.as_deref(),
        _ => None,
    };
    let old = plan.regs.lock().expect("register memo lock").take();
    let mut patched = 0u64;
    let mut rebound = 0u64;
    if let Some(memo) = old {
        if memo.per_program.len() == programs.len()
            && memo.shard_versions.len() == resolved.terms.len()
        {
            let deltas = term_deltas(resolved, &memo.shard_versions);
            let per_program: Vec<Vec<vm::TermRegs>> = programs
                .iter()
                .zip(memo.per_program)
                .map(|(prog, old_regs)| {
                    old_regs
                        .into_iter()
                        .enumerate()
                        .map(|(t, old_t)| match &deltas[t] {
                            TermDelta::Clean => old_t,
                            TermDelta::Dirty(ranges) if patchable(resolved, &prog.paths[t], t) => {
                                patched += 1;
                                vm::patch_term(&old_t, &prog.paths[t], &compiled[t], ranges)
                            }
                            _ => {
                                rebound += 1;
                                vm::bind_term(&prog.paths[t], &compiled[t])
                            }
                        })
                        .collect()
                })
                .collect();
            let count = steps.map(|st| {
                let reusable = memo.count.filter(|tables| {
                    tables.len() == st.len() && memo.versions.len() == versions.len()
                });
                match reusable {
                    Some(tables) => st
                        .iter()
                        .zip(tables)
                        .map(|(step, table)| {
                            if memo.versions[step.term] == versions[step.term] {
                                table
                            } else {
                                rebound += 1;
                                exact::grouped_term_mass(&compiled[step.term], step)
                            }
                        })
                        .collect(),
                    None => {
                        rebound += st.len() as u64;
                        exact::mass_tables(st, compiled, rayon::current_num_threads() > 1)
                    }
                }
            });
            return RegsMaintenance {
                per_program,
                count,
                patched,
                rebound,
            };
        }
    }
    let parallel = rayon::current_num_threads() > 1;
    rebound += (programs.len() * resolved.terms.len()) as u64;
    let per_program: Vec<Vec<vm::TermRegs>> = if parallel && programs.len() > 1 {
        use rayon::prelude::*;
        programs
            .into_par_iter()
            .map(|prog| vm::bind_program(prog, compiled))
            .collect()
    } else {
        programs
            .iter()
            .map(|prog| vm::bind_program(prog, compiled))
            .collect()
    };
    let count = steps.map(|st| {
        rebound += st.len() as u64;
        exact::mass_tables(st, compiled, parallel)
    });
    RegsMaintenance {
        per_program,
        count,
        patched,
        rebound,
    }
}

/// Cumulative cache counters plus the current size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Warm hits: answers produced from a cached program.
    pub hits: u64,
    /// Cold misses (including fingerprint collisions that failed shape
    /// verification).
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Entries dropped because their guarded data properties or schemas
    /// changed out from under them.
    pub invalidations: u64,
    /// Memoized term register sets refreshed by *range patching* after a
    /// mutation touched only some shards: just the dirty leading-key
    /// ranges were re-gathered, the rest spliced over from the memo.
    pub reg_patches: u64,
    /// Memoized term register sets (or count mass tables) rebuilt from
    /// scratch because the mutation was not range-patchable.
    pub reg_rebinds: u64,
    /// Warm hits answered from the lock-free hot tier without touching a
    /// cache stripe (a subset of [`PlanCacheStats::hits`]).
    pub hot_hits: u64,
    /// Shapes promoted into (or re-promoted within) the hot tier.
    pub hot_promotions: u64,
    /// Current number of cached plans.
    pub len: usize,
    /// Maximum number of cached plans.
    pub capacity: usize,
}

#[derive(Debug)]
struct Entry {
    tag: u8,
    hash: u64,
    plan: Arc<CachedPlan>,
    versions: Vec<u64>,
    last_used: u64,
    /// Striped-probe hits since insertion; drives hot-tier promotion.
    hits: u64,
}

/// Upper bound on the number of independently locked stripes of a
/// [`PlanCache`]. Small caches (capacity below `2 ×` this) collapse to
/// one stripe so their LRU order stays globally exact.
const CACHE_STRIPES: usize = 8;

/// Slots in the lock-free hot tier probed before the striped table.
const HOT_SLOTS: usize = 8;

/// Striped-probe hits after which a shape is promoted into the hot tier
/// (and re-promoted at every further multiple, so a shape evicted from
/// its hot slot by a collision can win it back while it stays hot).
const HOT_PROMOTE_HITS: u64 = 3;

/// Hot entries inline their per-term version stamps as atomics so
/// readers never lock; shapes with more terms than this stay striped.
const HOT_MAX_TERMS: usize = 8;

/// Replaced hot entries cannot be freed while lock-free readers may
/// still hold a pointer, so they are retired into a graveyard freed when
/// the cache drops. The cap bounds the graveyard: once it fills, no
/// further promotions replace a live entry (the hot set has churned
/// enough; the striped tier still serves everything correctly).
const HOT_RETIRED_CAP: usize = 256;

#[derive(Debug)]
struct CacheStripe {
    entries: Vec<Entry>,
    capacity: usize,
}

/// One resident of the hot tier. Immutable except for the version
/// stamps, which are refreshed in place with atomic stores — a reader
/// racing a refresh can observe a torn stamp vector, which at worst
/// sends that one execution through the guard-revalidation path (the
/// executor always compares against the *actual* current data versions).
#[derive(Debug)]
struct HotEntry {
    tag: u8,
    hash: u64,
    plan: Arc<CachedPlan>,
    nterms: usize,
    versions: [AtomicU64; HOT_MAX_TERMS],
}

/// Retired hot entries await deallocation at cache drop. Raw pointers
/// are not `Send`; the graveyard is only ever touched under its mutex
/// and freed once no reader can exist, so the transfer is sound.
#[derive(Debug, Default)]
struct Graveyard(Vec<*mut HotEntry>);

unsafe impl Send for Graveyard {}

/// A shape-keyed cache of compiled plans, shared across engines — and,
/// under the serving layer, across worker threads.
///
/// Keys are `(statistic tag, 64-bit shape fingerprint)`; hits re-verify
/// full structural equality before reuse, so collisions degrade to
/// misses, never to wrong answers.
///
/// **Eviction policy: least-recently-used.** Every lookup and insert
/// stamps the entry with a monotonically increasing tick; when an insert
/// would exceed the capacity (default 128 plans; see
/// [`PlanCache::with_capacity`]) the entry with the smallest tick is
/// dropped and counted in [`PlanCacheStats::evictions`]. Entries whose
/// guarded data properties change are removed eagerly and counted in
/// [`PlanCacheStats::invalidations`].
///
/// **Concurrency.** The table is striped: entries hash to one of up to
/// eight independently locked stripes, counters are atomics,
/// and each operation locks exactly one stripe — concurrent workers
/// probing different shapes never serialize on each other. Capacity is
/// enforced per stripe (each stripe gets an equal share), so under
/// striping LRU is exact within a stripe and approximate globally;
/// caches smaller than two entries per stripe use a single stripe and
/// keep the globally exact order. Shareable behind an [`Arc`] across
/// engine instances — and across catalog mutations, which is the point:
/// rebuild the borrowing engine, keep the warmth.
#[derive(Debug)]
pub struct PlanCache {
    stripes: Vec<Mutex<CacheStripe>>,
    /// The hot tier: one `AtomicPtr<HotEntry>` per slot (null = empty),
    /// probed before any stripe lock. Entries are only written under the
    /// graveyard mutex and never freed while the cache lives, so readers
    /// dereference the loaded pointer without any synchronization.
    hot: [AtomicPtr<HotEntry>; HOT_SLOTS],
    retired: Mutex<Graveyard>,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    reg_patches: AtomicU64,
    reg_rebinds: AtomicU64,
    hot_hits: AtomicU64,
    hot_promotions: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanCache {
    /// A cache with the default capacity of 128 plans.
    pub fn new() -> Self {
        Self::with_capacity(128)
    }

    /// A cache holding at most `capacity` plans (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let stripes = if capacity >= 2 * CACHE_STRIPES {
            CACHE_STRIPES
        } else {
            1
        };
        let (base, extra) = (capacity / stripes, capacity % stripes);
        Self {
            stripes: (0..stripes)
                .map(|i| {
                    Mutex::new(CacheStripe {
                        entries: Vec::new(),
                        capacity: base + usize::from(i < extra),
                    })
                })
                .collect(),
            hot: [const { AtomicPtr::new(std::ptr::null_mut()) }; HOT_SLOTS],
            retired: Mutex::new(Graveyard::default()),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            reg_patches: AtomicU64::new(0),
            reg_rebinds: AtomicU64::new(0),
            hot_hits: AtomicU64::new(0),
            hot_promotions: AtomicU64::new(0),
        }
    }

    /// Snapshot of the cumulative counters and current size.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            reg_patches: self.reg_patches.load(Ordering::Relaxed),
            reg_rebinds: self.reg_rebinds.load(Ordering::Relaxed),
            hot_hits: self.hot_hits.load(Ordering::Relaxed),
            hot_promotions: self.hot_promotions.load(Ordering::Relaxed),
            len: self.len(),
            capacity: self.stripes.iter().map(|s| self.lock(s).capacity).sum(),
        }
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| self.lock(s).entries.len())
            .sum()
    }

    /// True when no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry, hot tier included (counters are kept).
    pub fn clear(&self) {
        for stripe in &self.stripes {
            self.lock(stripe).entries.clear();
        }
        let mut retired = self.lock_retired();
        for slot in &self.hot {
            let old = slot.swap(std::ptr::null_mut(), Ordering::AcqRel);
            if !old.is_null() {
                retired.0.push(old);
            }
        }
    }

    fn lock<'a>(&self, stripe: &'a Mutex<CacheStripe>) -> std::sync::MutexGuard<'a, CacheStripe> {
        stripe.lock().expect("plan cache stripe lock")
    }

    fn lock_retired(&self) -> std::sync::MutexGuard<'_, Graveyard> {
        self.retired.lock().expect("hot graveyard lock")
    }

    /// The hot slot `(tag, hash)` maps to (same folding as the stripes).
    fn hot_slot(&self, tag: u8, hash: u64) -> &AtomicPtr<HotEntry> {
        let mix = hash ^ (hash >> 32) ^ u64::from(tag);
        &self.hot[(mix as usize) % HOT_SLOTS]
    }

    /// Probes the lock-free hot tier: one atomic load, a key compare,
    /// and per-term atomic version loads — no stripe lock. Callers
    /// verify the shape and route stale entries through
    /// [`PlanCache::invalidate`] exactly like a striped hit.
    pub(crate) fn probe_hot(&self, tag: u8, hash: u64) -> Option<(Arc<CachedPlan>, Vec<u64>)> {
        let ptr = self.hot_slot(tag, hash).load(Ordering::Acquire);
        if ptr.is_null() {
            return None;
        }
        // Safety: hot entries are never deallocated while the cache is
        // alive (replaced ones go to the graveyard, freed only in
        // `Drop`), and every caller borrows the cache.
        let entry = unsafe { &*ptr };
        if entry.tag != tag || entry.hash != hash {
            return None;
        }
        let versions = entry.versions[..entry.nterms]
            .iter()
            .map(|v| v.load(Ordering::Acquire))
            .collect();
        Some((entry.plan.clone(), versions))
    }

    /// Counts one answer served from the hot tier (also counted as a
    /// regular [`PlanCacheStats::hits`] so warm-ratio math is unchanged).
    pub(crate) fn record_hot_hit(&self) {
        self.hot_hits.fetch_add(1, Ordering::Relaxed);
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Installs (or refreshes) `(tag, hash)` in its hot slot. The old
    /// resident is retired, never freed in place — a reader may still
    /// hold it. Promotion is skipped when the graveyard is full.
    fn promote(&self, tag: u8, hash: u64, plan: &Arc<CachedPlan>, versions: &[u64]) {
        if versions.len() > HOT_MAX_TERMS {
            return;
        }
        let slot = self.hot_slot(tag, hash);
        let mut retired = self.lock_retired();
        let incumbent = slot.load(Ordering::Acquire);
        if !incumbent.is_null() && retired.0.len() >= HOT_RETIRED_CAP {
            return;
        }
        let entry = Box::new(HotEntry {
            tag,
            hash,
            plan: plan.clone(),
            nterms: versions.len(),
            versions: [const { AtomicU64::new(0) }; HOT_MAX_TERMS],
        });
        for (cell, &v) in entry.versions.iter().zip(versions) {
            cell.store(v, Ordering::Release);
        }
        let old = slot.swap(Box::into_raw(entry), Ordering::AcqRel);
        if !old.is_null() {
            retired.0.push(old);
        }
        self.hot_promotions.fetch_add(1, Ordering::Relaxed);
    }

    /// Drops `(tag, hash)` from the hot tier if resident (stale guards,
    /// or an explicit invalidation).
    fn demote(&self, tag: u8, hash: u64) {
        let slot = self.hot_slot(tag, hash);
        let mut retired = self.lock_retired();
        let ptr = slot.load(Ordering::Acquire);
        if ptr.is_null() {
            return;
        }
        // Safety: see `probe_hot` — live until cache drop.
        let entry = unsafe { &*ptr };
        if entry.tag == tag && entry.hash == hash {
            let old = slot.swap(std::ptr::null_mut(), Ordering::AcqRel);
            if !old.is_null() {
                retired.0.push(old);
            }
        }
    }

    /// The stripe `(tag, hash)` lives in: the fingerprint's high bits
    /// folded over the low ones (the low bits alone correlate with the
    /// shapes' shared hashing prefix), salted with the statistic tag.
    fn stripe_of(&self, tag: u8, hash: u64) -> &Mutex<CacheStripe> {
        let mix = hash ^ (hash >> 32) ^ u64::from(tag);
        &self.stripes[(mix as usize) % self.stripes.len()]
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The entry under `(tag, hash)`, LRU-bumped, with its recorded data
    /// versions. Callers verify the shape and count the hit or miss.
    /// Every [`HOT_PROMOTE_HITS`]th striped hit promotes the shape into
    /// the hot tier (after the stripe lock is released).
    pub(crate) fn probe(&self, tag: u8, hash: u64) -> Option<(Arc<CachedPlan>, Vec<u64>)> {
        let tick = self.next_tick();
        let (plan, versions, promote) = {
            let mut stripe = self.lock(self.stripe_of(tag, hash));
            let entry = stripe
                .entries
                .iter_mut()
                .find(|e| e.tag == tag && e.hash == hash)?;
            entry.last_used = tick;
            entry.hits += 1;
            let promote = entry.hits % HOT_PROMOTE_HITS == 0;
            (entry.plan.clone(), entry.versions.clone(), promote)
        };
        if promote {
            self.promote(tag, hash, &plan, &versions);
        }
        Some((plan, versions))
    }

    pub(crate) fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Accounts one warm execution's register maintenance (see
    /// [`PlanCacheStats::reg_patches`] / [`PlanCacheStats::reg_rebinds`]).
    pub(crate) fn record_reg_maintenance(&self, patched: u64, rebound: u64) {
        if patched > 0 {
            self.reg_patches.fetch_add(patched, Ordering::Relaxed);
        }
        if rebound > 0 {
            self.reg_rebinds.fetch_add(rebound, Ordering::Relaxed);
        }
    }

    /// Removes a stale entry (guards or schema changed), hot tier
    /// included.
    pub(crate) fn invalidate(&self, tag: u8, hash: u64) {
        let removed = {
            let mut stripe = self.lock(self.stripe_of(tag, hash));
            let before = stripe.entries.len();
            stripe.entries.retain(|e| !(e.tag == tag && e.hash == hash));
            stripe.entries.len() < before
        };
        if removed {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
        self.demote(tag, hash);
    }

    /// Updates the recorded data versions after the guards re-validated,
    /// so the next unchanged-data hit skips them again. A hot-tier
    /// resident has its inline stamps refreshed in place.
    pub(crate) fn refresh_versions(&self, tag: u8, hash: u64, versions: &[u64]) {
        {
            let mut stripe = self.lock(self.stripe_of(tag, hash));
            if let Some(e) = stripe
                .entries
                .iter_mut()
                .find(|e| e.tag == tag && e.hash == hash)
            {
                e.versions.clear();
                e.versions.extend_from_slice(versions);
            }
        }
        let ptr = self.hot_slot(tag, hash).load(Ordering::Acquire);
        if !ptr.is_null() {
            // Safety: see `probe_hot` — live until cache drop.
            let entry = unsafe { &*ptr };
            if entry.tag == tag && entry.hash == hash && entry.nterms == versions.len() {
                for (cell, &v) in entry.versions.iter().zip(versions) {
                    cell.store(v, Ordering::Release);
                }
            }
        }
    }

    /// Inserts (or replaces) an entry, evicting the stripe's least
    /// recently used one when the stripe is full.
    pub(crate) fn insert(&self, tag: u8, hash: u64, plan: Arc<CachedPlan>, versions: Vec<u64>) {
        let tick = self.next_tick();
        let mut stripe = self.lock(self.stripe_of(tag, hash));
        if let Some(e) = stripe
            .entries
            .iter_mut()
            .find(|e| e.tag == tag && e.hash == hash)
        {
            e.plan = plan;
            e.versions = versions;
            e.last_used = tick;
            return;
        }
        if stripe.entries.len() >= stripe.capacity {
            if let Some(oldest) = stripe
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
            {
                stripe.entries.swap_remove(oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        stripe.entries.push(Entry {
            tag,
            hash,
            plan,
            versions,
            last_used: tick,
            hits: 0,
        });
    }
}

impl Drop for PlanCache {
    fn drop(&mut self) {
        // Exclusive access: no reader can hold a hot pointer anymore, so
        // the slots and the graveyard can finally be freed.
        for slot in &self.hot {
            let ptr = slot.swap(std::ptr::null_mut(), Ordering::AcqRel);
            if !ptr.is_null() {
                // Safety: created by `Box::into_raw` in `promote`,
                // removed from the slot above, never freed before.
                drop(unsafe { Box::from_raw(ptr) });
            }
        }
        let mut retired = self.lock_retired();
        for ptr in retired.0.drain(..) {
            // Safety: retired pointers left every slot when they were
            // replaced and are owned solely by the graveyard.
            drop(unsafe { Box::from_raw(ptr) });
        }
    }
}
