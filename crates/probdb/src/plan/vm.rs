//! The safe-plan bytecode VM: flat programs over columnar registers.
//!
//! [`super::compile`] lowers a classified safe plan (including
//! dissociation `Copy` nodes and the transformed-mass leaves of both
//! oblivious bounds) into a [`Program`] — a flat `Vec` of ops — that this
//! module executes directly against the current column data. The op set:
//!
//! * [`Op::Leaf`] — the per-block complement product
//!   `1 - ∏_blocks (1 - t(mass))` over one term's current register
//!   window, where `t` is the leaf's [`Transform`]: identity for exact
//!   plans, `m^(1/k)` ([`Transform::ConjRoot`]) for the conjunctive
//!   alias upper bound, `1 - (1-m)^(1/d)` ([`Transform::DisjRoot`], `d`
//!   read from the term's runtime replication register) for the
//!   disjunctive lower bound.
//! * [`Op::Partition`] — the key-partition fold
//!   `1 - ∏_values (1 - ∏_subcomponents p)`: a k-way sorted-run merge
//!   over the binding terms' pre-sorted key registers that narrows each
//!   binding term's window to its value run and runs the embedded
//!   subcomponent product (the body) per common key value. Dissociated
//!   `Copy` terms keep their full windows and accumulate the branch
//!   count into their replication registers. The body embeds two
//!   peephole results: loop-invariant steps ([`BodyStep::Hoisted`],
//!   subcomponents containing only copied terms) are evaluated once per
//!   fold instead of per branch, and an all-leaf body is fused into an
//!   inline `(term, transform)` list with no op dispatch per branch.
//! * The expected-count mass join ([`CountProgram`]) — set-at-a-time
//!   already; it executes through the same deterministic
//!   [`exact::run_mass_join`] kernel as the interpreter, which is what
//!   makes the two paths bit-identical by construction.
//!
//! **Registers.** [`bind_program`] is the per-data half of compilation:
//! it gathers each term's live rows into columnar registers — key
//! columns for every partition level on the term's path, plus per-block
//! probability masses — sorted once, lexicographically by the term's
//! root-to-leaf key path with original row order breaking ties, then
//! collapsed to block granularity (every live row of a block shares its
//! path keys, so blocks are contiguous after the sort). That single
//! pre-sort replaces the interpreter's per-recursion-level hash
//! partitioning: every partition branch becomes a contiguous window
//! `[c0, c1) × [a0, a1)` and the recursion only moves window bounds.
//! Because ties keep original row order, block masses accumulate in the
//! interpreter's exact addition sequence, and the interpreter iterates
//! key values in ascending order, the VM performs *exactly* the
//! interpreter's floating-point operations and reproduces its results
//! bit for bit. Registers are owned and data-addressed, so the plan
//! cache memoizes them next to version stamps — an unchanged-data warm
//! hit skips the gather entirely.
//!
//! **Sharded execution.** The root partition fold is independent across
//! key values, so [`run_prebound_sharded`] splits the sorted key domain
//! into contiguous value ranges ([`shard_ranges`]), evaluates each range
//! on the rayon pool, and merges in range order. Each shard returns its
//! per-value *complement factors* `1 - p_v` in ascending value order —
//! not a partial product — and the merge multiplies the concatenated
//! factor sequence left to right. That sequence is exactly the sequence
//! the sequential fold multiplies, so the result is **bit-identical to
//! the sequential VM (and therefore the interpreter) at every thread
//! and shard count**: floating-point non-associativity never enters,
//! because the multiplication order never changes. Dissociated folds
//! need one extra pass — the branch count `d` feeding the lower bound's
//! replication registers is counted per shard and summed in shard order
//! (exact: counts are small integers) before any factor is computed, so
//! every shard sees the same global `d` the sequential fold would.
//!
//! **Incremental maintenance.** [`patch_term`] rebuilds only the dirty
//! key ranges of a memoized register set after an upsert: the store's
//! per-shard version stamps ([`crate::ProbDb::shard_versions`]) prove
//! which leading-key ranges changed, the stale runs are re-gathered and
//! re-sorted, and the clean runs are spliced over from the old registers
//! unchanged. Because the level-0 key is the pre-sort's primary key and
//! equal stamps imply identical shard contents, the splice reproduces a
//! fresh [`bind_program`] bit for bit.

use super::classify::CompiledTerm;
use super::exact::{self, MassStep};
use mrsl_util::FxHashMap;

/// Per-block mass transform applied by [`Op::Leaf`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Transform {
    /// The exact mass (safe plans, and the un-transformed side of each
    /// bound).
    Identity,
    /// `m^(1/k)` — the conjunctive upper bound for `k > 1` aliased
    /// copies; `k` is a compile-time constant of the shape.
    ConjRoot {
        /// Alias multiplicity of the term's relation.
        k: f64,
    },
    /// `1 - (1-m)^(1/d)` — the disjunctive lower bound for branch
    /// replicas; `d` is the term's runtime replication register (the
    /// transform is the identity while it stays at 1).
    DisjRoot,
}

/// One factor of a partition body, in subcomponent order. The order is
/// load-bearing: the interpreter multiplies subcomponents left to right
/// with a zero early-exit, and the VM must reproduce that exact sequence
/// of floating-point multiplications.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum BodyStep {
    /// Evaluate the op per branch.
    Eval(u32),
    /// Loop-invariant op (only copied terms below it): evaluated once per
    /// fold, multiplied in place per branch.
    Hoisted(u32),
}

/// One bytecode op. See the module docs for semantics.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Op {
    /// `1 - ∏_blocks (1 - transform(mass))` over the term's window.
    Leaf {
        /// Term register set the leaf reads.
        term: u32,
        /// Per-block mass transform.
        transform: Transform,
    },
    /// Key-partition fold over the binding terms' sorted key registers.
    Partition {
        /// `(term, level)` pairs: which terms bind the key, and at which
        /// position of their sort path this class sits.
        binding: Vec<(u32, u32)>,
        /// Terms replicated unchanged into every branch; their
        /// replication registers accumulate the branch count.
        copied: Vec<u32>,
        /// Per-branch factors in subcomponent order.
        body: Vec<BodyStep>,
        /// Peephole: when every body step is an un-hoisted leaf, the
        /// inlined `(term, transform, memoizable)` list evaluated without
        /// dispatch. A leaf is memoizable when this partition is the
        /// term's *first* binding level: its outer window is then the
        /// full register for the whole fold, so the leaf value depends
        /// only on the key value (and the term's current replication
        /// register) and can be reused across enclosing branches.
        fused: Option<Vec<(u32, Transform, bool)>>,
    },
}

/// A compiled boolean-probability (or single-bound) program.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Program {
    /// Flat op pool; ops reference each other by index.
    pub ops: Vec<Op>,
    /// Top-level connected components, multiplied without early exit
    /// (matching the interpreter's top loop).
    pub roots: Vec<u32>,
    /// Per-term sort path: the partition classes that narrow this term,
    /// root to leaf. Drives the bind-time pre-sort.
    pub paths: Vec<Vec<usize>>,
}

/// Upper/lower program pair of one dissociation candidate.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct BoundsProgram {
    pub upper: Program,
    pub lower: Program,
}

/// The expected-count program: either the single-relation closed form or
/// the deterministic mass-join schedule.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CountProgram {
    /// `None`: one relation, no join classes — the closed form
    /// [`exact::single_expected_count`] applies.
    pub steps: Option<Vec<MassStep>>,
    /// Number of join classes (the mass-join assignment width).
    pub classes: usize,
}

/// One term's columnar registers, gathered and pre-sorted by
/// [`bind_program`]. Registers are owned columns, so callers may keep
/// them across executions (the plan cache stores them next to the data
/// version stamps they were gathered under).
#[derive(Debug)]
pub(crate) struct TermRegs {
    /// Key column per sort-path level, certain rows, sorted order.
    ckeys: Vec<Vec<u16>>,
    /// Key column per sort-path level, one entry per *block*, sorted
    /// order. Alternatives are collapsed to block granularity at bind
    /// time: every live row of a block shares its path keys, so blocks
    /// are contiguous after the sort and windows never split them.
    akeys: Vec<Vec<u16>>,
    /// Per-block probability mass, accumulated over the block's live
    /// alternatives in sorted-row order — the exact addition sequence the
    /// interpreter's leaf would perform, so downstream arithmetic stays
    /// bit-identical.
    amass: Vec<f64>,
    /// Number of live certain rows.
    clen: u32,
    /// Number of blocks with live alternatives.
    alen: u32,
}

/// Gathers and pre-sorts every term's live rows into columnar registers
/// (the per-execution half of compilation — the program itself is
/// data-free and cacheable).
pub(crate) fn bind_term(path: &[usize], ct: &CompiledTerm) -> TermRegs {
    let mut cert: Vec<u32> = ct.live_certain.iter_ones().map(|i| i as u32).collect();
    let mut alts: Vec<u32> = ct.live_alts.iter_ones().map(|i| i as u32).collect();
    let ccols: Vec<&[u16]> = path
        .iter()
        .map(|&c| ct.class_key(c).expect("sort path classes key the term").0)
        .collect();
    let acols: Vec<&[u16]> = path
        .iter()
        .map(|&c| ct.class_key(c).expect("sort path classes key the term").1)
        .collect();
    // LSD radix over the path levels: each pass is a stable counting sort,
    // so the final order is lexicographic by root-to-leaf key with the
    // initial ascending row order breaking ties. That tie-break is what
    // keeps blocks contiguous inside the deepest windows and the row
    // visit order identical to the interpreter's partition iteration.
    sort_by_path(&mut cert, &ccols);
    sort_by_path(&mut alts, &acols);
    let probs = ct.db.columns().alt_probs();
    // Collapse alternative rows to block runs: one key tuple and one
    // accumulated mass per block, visited in sorted-row order (identical
    // to the grouping the leaf op would otherwise do per execution).
    let mut heads: Vec<u32> = Vec::new();
    let mut amass: Vec<f64> = Vec::new();
    let mut i = 0;
    while i < alts.len() {
        let block = ct.alt_block[alts[i] as usize];
        heads.push(alts[i]);
        let mut mass = 0.0;
        while i < alts.len() && ct.alt_block[alts[i] as usize] == block {
            mass += probs[alts[i] as usize];
            i += 1;
        }
        amass.push(mass);
    }
    TermRegs {
        ckeys: ccols
            .iter()
            .map(|col| cert.iter().map(|&r| col[r as usize]).collect())
            .collect(),
        akeys: acols
            .iter()
            .map(|col| heads.iter().map(|&r| col[r as usize]).collect())
            .collect(),
        alen: amass.len() as u32,
        amass,
        clen: cert.len() as u32,
    }
}

/// Incrementally re-binds a term's registers after an upsert that only
/// touched the level-0 key ranges in `dirty` (sorted, disjoint,
/// ascending): the dirty rows are re-gathered and re-sorted exactly as
/// [`bind_term`] would, and the clean runs are spliced over from `old`
/// unchanged.
///
/// Bit-identity to a fresh [`bind_term`]: the level-0 key is the LSD
/// pre-sort's *primary* key, so a fresh bind's output is partitioned
/// into contiguous segments by level-0 key range, each segment being the
/// stable sort of exactly the rows in that range. Segments over clean
/// ranges are unchanged from `old` (equal shard stamps imply the
/// identical push sequence there), and segments over dirty ranges equal
/// the stable sort of the re-gathered rows — which is what this splice
/// assembles, range by ascending range.
pub(crate) fn patch_term(
    old: &TermRegs,
    path: &[usize],
    ct: &CompiledTerm,
    dirty: &[std::ops::Range<u32>],
) -> TermRegs {
    let ccols: Vec<&[u16]> = path
        .iter()
        .map(|&c| ct.class_key(c).expect("sort path classes key the term").0)
        .collect();
    let acols: Vec<&[u16]> = path
        .iter()
        .map(|&c| ct.class_key(c).expect("sort path classes key the term").1)
        .collect();
    let in_dirty = |v: u16| dirty.iter().any(|r| r.contains(&(v as u32)));
    // Re-gather only the live rows whose leading key landed in a dirty
    // range; the sort and block collapse mirror `bind_term` exactly.
    let mut cert: Vec<u32> = ct
        .live_certain
        .iter_ones()
        .map(|i| i as u32)
        .filter(|&r| in_dirty(ccols[0][r as usize]))
        .collect();
    let mut alts: Vec<u32> = ct
        .live_alts
        .iter_ones()
        .map(|i| i as u32)
        .filter(|&r| in_dirty(acols[0][r as usize]))
        .collect();
    sort_by_path(&mut cert, &ccols);
    sort_by_path(&mut alts, &acols);
    let probs = ct.db.columns().alt_probs();
    let mut heads: Vec<u32> = Vec::new();
    let mut hmass: Vec<f64> = Vec::new();
    let mut i = 0;
    while i < alts.len() {
        let block = ct.alt_block[alts[i] as usize];
        heads.push(alts[i]);
        let mut mass = 0.0;
        while i < alts.len() && ct.alt_block[alts[i] as usize] == block {
            mass += probs[alts[i] as usize];
            i += 1;
        }
        hmass.push(mass);
    }
    // Splice: for each dirty range, copy the preceding clean segment
    // from the old registers, then append the re-gathered runs of the
    // range; finish with the clean tail.
    let levels = path.len();
    let mut ckeys: Vec<Vec<u16>> = vec![Vec::new(); levels];
    let mut akeys: Vec<Vec<u16>> = vec![Vec::new(); levels];
    let mut amass: Vec<f64> = Vec::new();
    let (mut oc, mut oa) = (0u32, 0u32); // old-register cursors
    let (mut nc, mut na) = (0usize, 0usize); // re-gathered cursors
    let old_ck0 = &old.ckeys[0];
    let old_ak0 = &old.akeys[0];
    for range in dirty {
        let cs = seek(old_ck0, range.start).max(oc);
        let as_ = seek(old_ak0, range.start).max(oa);
        for lvl in 0..levels {
            ckeys[lvl].extend_from_slice(&old.ckeys[lvl][oc as usize..cs as usize]);
            akeys[lvl].extend_from_slice(&old.akeys[lvl][oa as usize..as_ as usize]);
        }
        amass.extend_from_slice(&old.amass[oa as usize..as_ as usize]);
        oc = seek(old_ck0, range.end).max(cs);
        oa = seek(old_ak0, range.end).max(as_);
        while nc < cert.len() && (ccols[0][cert[nc] as usize] as u32) < range.end {
            for lvl in 0..levels {
                ckeys[lvl].push(ccols[lvl][cert[nc] as usize]);
            }
            nc += 1;
        }
        while na < heads.len() && (acols[0][heads[na] as usize] as u32) < range.end {
            for lvl in 0..levels {
                akeys[lvl].push(acols[lvl][heads[na] as usize]);
            }
            amass.push(hmass[na]);
            na += 1;
        }
    }
    for lvl in 0..levels {
        ckeys[lvl].extend_from_slice(&old.ckeys[lvl][oc as usize..]);
        akeys[lvl].extend_from_slice(&old.akeys[lvl][oa as usize..]);
    }
    amass.extend_from_slice(&old.amass[oa as usize..]);
    debug_assert_eq!(
        ckeys[0].len(),
        ct.live_certain.count_ones(),
        "patched certain registers cover every live row"
    );
    debug_assert_eq!((nc, na), (cert.len(), heads.len()));
    TermRegs {
        clen: ckeys[0].len() as u32,
        alen: amass.len() as u32,
        ckeys,
        akeys,
        amass,
    }
}

/// Stable LSD counting sort of `rows` by the key columns, last level
/// first. Dictionary-encoded keys are dense small `u16`s, so counting
/// beats a comparator sort's per-comparison column indirection; per-pass
/// stability makes earlier levels dominate and keeps ties in the
/// incoming order.
fn sort_by_path(rows: &mut Vec<u32>, cols: &[&[u16]]) {
    let mut scratch = vec![0u32; rows.len()];
    for col in cols.iter().rev() {
        let max = rows.iter().map(|&r| col[r as usize]).max().unwrap_or(0) as usize;
        let mut starts = vec![0u32; max + 2];
        for &r in rows.iter() {
            starts[col[r as usize] as usize + 1] += 1;
        }
        for i in 1..starts.len() {
            starts[i] += starts[i - 1];
        }
        for &r in rows.iter() {
            let k = col[r as usize] as usize;
            scratch[starts[k] as usize] = r;
            starts[k] += 1;
        }
        std::mem::swap(rows, &mut scratch);
    }
}

/// Gathers and pre-sorts every term's registers for one program — the
/// per-data half of compilation, reusable across executions while the
/// underlying data versions are unchanged.
pub(crate) fn bind_program(program: &Program, compiled: &[CompiledTerm]) -> Vec<TermRegs> {
    program
        .paths
        .iter()
        .zip(compiled)
        .map(|(path, ct)| bind_term(path, ct))
        .collect()
}

/// Runs a boolean program against registers bound earlier (and still
/// valid for the current data).
pub(crate) fn run_prebound(program: &Program, regs: &[TermRegs]) -> f64 {
    let mut ex = Exec::new(program, regs);
    let mut p = 1.0;
    for &root in &program.roots {
        p *= ex.eval(root);
    }
    p
}

/// Default shard count when the engine auto-configures sharding
/// (`QueryEngineConfig::shards == 0` on a multi-threaded pool). Matches
/// [`crate::column::SHARD_COUNT`] so register patching and parallel
/// execution partition the key domain the same way, but the two are
/// independent knobs: any shard count produces bit-identical answers.
pub(crate) const DEFAULT_SHARDS: usize = 16;

/// Minimum binding rows before an *auto-configured* fold bothers
/// sharding; explicitly requested shard counts ignore it. Purely an
/// overhead threshold — results are identical either way.
const AUTO_SHARD_MIN_ROWS: u32 = 4096;

/// Resolves a configured shard count for a fold over `rows` rows. `0`
/// means "auto": stay sequential unless the fold is at least
/// [`AUTO_SHARD_MIN_ROWS`] rows, the current rayon pool has more than
/// one thread, *and* the host actually has more than one core —
/// otherwise shard to [`DEFAULT_SHARDS`]. The size gate applies
/// regardless of pool size: below the threshold the fan-out/merge
/// overhead dwarfs the fold itself (sub-threshold warm folds measured
/// ~300× slower when force-sharded onto an 8-thread pool of a 1-core
/// host), so auto mode never pays it. A nonzero count is honored as-is
/// (even on one thread), which is what lets tests and benches force the
/// sharded path deterministically. Purely a scheduling decision —
/// results are bit-identical at every shard count.
pub(crate) fn effective_shards(requested: usize, rows: u32) -> usize {
    match requested {
        0 => {
            let host = std::thread::available_parallelism().map_or(1, usize::from);
            if rows < AUTO_SHARD_MIN_ROWS || rayon::current_num_threads() <= 1 || host <= 1 {
                1
            } else {
                DEFAULT_SHARDS
            }
        }
        n => n,
    }
}

/// [`run_prebound`], with each root partition fold sharded across the
/// rayon pool. Bit-identical to the sequential path at every thread and
/// shard count — see the module docs for the argument — because shards
/// return per-value complement factors that are merged in value order,
/// reproducing the sequential multiplication sequence exactly.
///
/// `shards` is the raw configured count: `0` lets each root fold decide
/// per its own size via [`effective_shards`], `1` forces the sequential
/// path outright.
pub(crate) fn run_prebound_sharded(program: &Program, regs: &[TermRegs], shards: usize) -> f64 {
    if shards == 1 {
        return run_prebound(program, regs);
    }
    let mut p = 1.0;
    for &root in &program.roots {
        // A fresh `Exec` per root is bit-identical to the shared one in
        // `run_prebound`: windows, replication registers and memos carry
        // no state across root components.
        p *= eval_root_sharded(program, regs, root, shards);
    }
    p
}

/// Evaluates one root component, sharding its partition fold by key
/// range when the fold is large enough to split.
fn eval_root_sharded(program: &Program, regs: &[TermRegs], root: u32, requested: usize) -> f64 {
    let Op::Partition {
        binding,
        copied,
        body,
        fused,
    } = &program.ops[root as usize]
    else {
        return Exec::new(program, regs).eval(root);
    };
    let rows: u32 = binding
        .iter()
        .map(|&(t, _)| {
            let r = &regs[t as usize];
            r.clen + r.alen
        })
        .sum();
    let ranges = shard_ranges(binding, regs, effective_shards(requested, rows));
    if ranges.len() <= 1 {
        return Exec::new(program, regs).eval(root);
    }
    use rayon::prelude::*;
    // Dissociated folds replicate the global branch count d into every
    // copied term, so it must be known before any shard computes a
    // factor: count per shard, sum in shard order (exact — counts are
    // small integers, so the sum order cannot matter anyway).
    let d = if copied.is_empty() {
        0.0
    } else {
        ranges
            .par_iter()
            .map(|range| shard_exec(program, regs, binding, range).count_values(binding))
            .collect::<Vec<f64>>()
            .into_iter()
            .sum()
    };
    let chunks: Vec<Vec<f64>> = ranges
        .par_iter()
        .map(|range| {
            let mut ex = shard_exec(program, regs, binding, range);
            ex.partition_factors(root, binding, copied, body, fused.as_deref(), d)
        })
        .collect();
    // Merge: multiply the concatenated factor sequence left to right —
    // the exact sequence (and early exit) of the sequential fold.
    let mut none = 1.0;
    'merge: for chunk in &chunks {
        for &f in chunk {
            none *= f;
            if none == 0.0 {
                break 'merge;
            }
        }
    }
    1.0 - none
}

/// Splits the root fold's key domain into up to `shards` contiguous
/// value ranges with roughly balanced row counts, cutting at values
/// drawn from the largest binding term's sorted key register. The ranges
/// tile `[0, 65536)` in ascending order, so concatenating the per-range
/// value sequences reproduces the sequential fold's value order exactly.
#[allow(clippy::single_range_in_vec_init)] // ranges are shard intervals, not element sets
fn shard_ranges(
    binding: &[(u32, u32)],
    regs: &[TermRegs],
    shards: usize,
) -> Vec<std::ops::Range<u32>> {
    const DOMAIN_END: u32 = u16::MAX as u32 + 1;
    if shards <= 1 || binding.is_empty() {
        return vec![0..DOMAIN_END];
    }
    let &(t, lvl) = binding
        .iter()
        .max_by_key(|&&(t, _)| {
            let r = &regs[t as usize];
            r.clen + r.alen
        })
        .expect("binding is non-empty");
    let r = &regs[t as usize];
    let keys: &[u16] = if r.alen >= r.clen {
        &r.akeys[lvl as usize]
    } else {
        &r.ckeys[lvl as usize]
    };
    if keys.is_empty() {
        return vec![0..DOMAIN_END];
    }
    // Equidistant positions in the sorted key register give balanced
    // *rows* per range (not balanced value counts); duplicate cut values
    // collapse, so skewed keys degrade shard count, never correctness.
    let mut bounds: Vec<u32> = vec![0];
    for i in 1..shards {
        let v = keys[i * keys.len() / shards] as u32;
        if v > *bounds.last().expect("bounds start non-empty") {
            bounds.push(v);
        }
    }
    bounds.push(DOMAIN_END);
    bounds.windows(2).map(|w| w[0]..w[1]).collect()
}

/// An `Exec` whose binding-term windows are narrowed to `range` of the
/// level-0 key domain. All other terms (copied terms, separate subtrees)
/// keep their full windows, exactly as in the sequential fold.
fn shard_exec<'p>(
    program: &'p Program,
    regs: &'p [TermRegs],
    binding: &[(u32, u32)],
    range: &std::ops::Range<u32>,
) -> Exec<'p> {
    let mut ex = Exec::new(program, regs);
    for &(t, lvl) in binding {
        // Root partitions always bind at the first path level: compile
        // pushes the root class onto every bound term's path before
        // recursing into the body.
        debug_assert_eq!(lvl, 0, "root partitions bind at the first path level");
        let r = &regs[t as usize];
        let ck = &r.ckeys[lvl as usize];
        let ak = &r.akeys[lvl as usize];
        ex.win[t as usize] = [
            seek(ck, range.start),
            seek(ck, range.end),
            seek(ak, range.start),
            seek(ak, range.end),
        ];
    }
    ex
}

/// First position in the sorted key register whose key is `>= bound`
/// (`bound` ranges over `0..=65536`, one past the `u16` domain).
fn seek(keys: &[u16], bound: u32) -> u32 {
    keys.partition_point(|&k| (k as u32) < bound) as u32
}

/// Runs an expected-count program through the shared deterministic
/// kernels.
pub(crate) fn run_count(program: &CountProgram, compiled: &[CompiledTerm]) -> f64 {
    match &program.steps {
        None => exact::single_expected_count(&compiled[0]),
        Some(steps) => exact::run_mass_join(steps, compiled, program.classes),
    }
}

/// First position in `[cur, end)` whose key is `>= v` (keys are sorted).
/// Binary search instead of stepping: partition merges over a copied
/// term re-walk its full window once per branch, and galloping turns
/// that from `O(rows)` into `O(log rows)` per branch.
fn skip_to(keys: &[u16], cur: u32, end: u32, v: u16) -> u32 {
    cur + keys[cur as usize..end as usize].partition_point(|&k| k < v) as u32
}

/// First position in `[cur, end)` past the run of keys `== v`.
fn past_run(keys: &[u16], cur: u32, end: u32, v: u16) -> u32 {
    cur + keys[cur as usize..end as usize].partition_point(|&k| k <= v) as u32
}

/// Execution state: windows and replication registers per term.
struct Exec<'p> {
    prog: &'p Program,
    regs: &'p [TermRegs],
    /// `[c0, c1, a0, a1)` — current certain/alternative window per term.
    win: Vec<[u32; 4]>,
    /// Replication multiplicity per term (the lower bound's runtime `d`).
    repl: Vec<f64>,
    /// Per-partition-op memo of fused invariant-window leaf values,
    /// keyed by `(term, key value, replication register bits)`. Reuses
    /// the exact `f64` computed on the first visit, so the downstream
    /// multiplication sequence is unchanged bit for bit.
    memo: Vec<FxHashMap<(u32, u16, u64), f64>>,
}

impl<'p> Exec<'p> {
    /// Fresh execution state: full windows, unit replication, empty memos.
    fn new(prog: &'p Program, regs: &'p [TermRegs]) -> Self {
        Exec {
            prog,
            win: regs.iter().map(|r| [0, r.clen, 0, r.alen]).collect(),
            repl: vec![1.0; regs.len()],
            memo: vec![FxHashMap::default(); prog.ops.len()],
            regs,
        }
    }

    fn eval(&mut self, op: u32) -> f64 {
        let prog = self.prog;
        match &prog.ops[op as usize] {
            Op::Leaf { term, transform } => self.leaf(*term, *transform),
            Op::Partition {
                binding,
                copied,
                body,
                fused,
            } => self.partition(op, binding, copied, body, fused.as_deref()),
        }
    }

    /// `1 - ∏_blocks (1 - t(mass))` over the term's current window; a
    /// certain row in the window decides it.
    fn leaf(&self, t: u32, tr: Transform) -> f64 {
        let r = &self.regs[t as usize];
        let [c0, c1, a0, a1] = self.win[t as usize];
        if c1 > c0 {
            return 1.0;
        }
        let repl = self.repl[t as usize];
        let mut none = 1.0;
        for &mass in &r.amass[a0 as usize..a1 as usize] {
            let m = mass.min(1.0);
            let tm = match tr {
                Transform::Identity => m,
                Transform::ConjRoot { k } => m.powf(1.0 / k),
                Transform::DisjRoot => {
                    if repl > 1.0 {
                        1.0 - (1.0 - m).powf(1.0 / repl)
                    } else {
                        m
                    }
                }
            };
            none *= (1.0 - tm).max(0.0);
        }
        1.0 - none
    }

    fn partition(
        &mut self,
        op: u32,
        binding: &[(u32, u32)],
        copied: &[u32],
        body: &[BodyStep],
        fused: Option<&[(u32, Transform, bool)]>,
    ) -> f64 {
        // Outer windows of the binding terms (restored on exit; the value
        // loop overwrites them with per-value runs).
        let outer: Vec<[u32; 4]> = binding.iter().map(|&(t, _)| self.win[t as usize]).collect();
        let mut cur: Vec<[u32; 2]> = outer.iter().map(|w| [w[0], w[2]]).collect();

        let saved_repl: Vec<f64> = copied.iter().map(|&t| self.repl[t as usize]).collect();
        if !copied.is_empty() {
            // The branch count d multiplies every copied term's
            // replication register, identically in all branches — so it
            // is applied once, before the value loop.
            let d = self.count_values(binding);
            for &t in copied {
                self.repl[t as usize] *= d;
            }
        }

        let mut hoist_vals: Vec<f64> = Vec::new();
        let mut first = true;
        let mut none = 1.0;
        while let Some(v) = self.next_value(binding, &outer, &mut cur) {
            self.narrow_to_run(binding, &outer, &mut cur, v);
            if first {
                self.hoist_body(body, &mut hoist_vals);
                first = false;
            }
            let p_v = self.branch_product(op, body, fused, &hoist_vals, v);
            none *= 1.0 - p_v;
            if none == 0.0 {
                break;
            }
        }

        for (i, &(t, _)) in binding.iter().enumerate() {
            self.win[t as usize] = outer[i];
        }
        for (i, &t) in copied.iter().enumerate() {
            self.repl[t as usize] = saved_repl[i];
        }
        1.0 - none
    }

    /// The partition fold's value loop, returning the per-value
    /// complement factors `1 - p_v` in ascending value order instead of
    /// folding them — the sharded executor's per-shard kernel. `d` is the
    /// *global* branch count (across all shards), precomputed by the
    /// caller. Windows and replication registers are not restored: the
    /// shard `Exec` is discarded after this call.
    fn partition_factors(
        &mut self,
        op: u32,
        binding: &[(u32, u32)],
        copied: &[u32],
        body: &[BodyStep],
        fused: Option<&[(u32, Transform, bool)]>,
        d: f64,
    ) -> Vec<f64> {
        let outer: Vec<[u32; 4]> = binding.iter().map(|&(t, _)| self.win[t as usize]).collect();
        let mut cur: Vec<[u32; 2]> = outer.iter().map(|w| [w[0], w[2]]).collect();
        for &t in copied {
            self.repl[t as usize] *= d;
        }
        let mut hoist_vals: Vec<f64> = Vec::new();
        let mut first = true;
        let mut out = Vec::new();
        while let Some(v) = self.next_value(binding, &outer, &mut cur) {
            self.narrow_to_run(binding, &outer, &mut cur, v);
            if first {
                self.hoist_body(body, &mut hoist_vals);
                first = false;
            }
            let p_v = self.branch_product(op, body, fused, &hoist_vals, v);
            out.push(1.0 - p_v);
            if p_v == 1.0 {
                // This factor is exactly 0.0, so the merged product is
                // 0.0 no matter what follows — the same early exit the
                // sequential fold takes when `none` first hits zero.
                break;
            }
        }
        out
    }

    /// Counts the distinct key values of the fold over the *current*
    /// windows (the branch count `d` of a dissociated fold). Read-only:
    /// iterates private cursors, windows stay untouched.
    fn count_values(&self, binding: &[(u32, u32)]) -> f64 {
        let outer: Vec<[u32; 4]> = binding.iter().map(|&(t, _)| self.win[t as usize]).collect();
        let mut cur: Vec<[u32; 2]> = outer.iter().map(|w| [w[0], w[2]]).collect();
        let mut d = 0.0;
        while let Some(v) = self.next_value(binding, &outer, &mut cur) {
            d += 1.0;
            for (i, &(t, lvl)) in binding.iter().enumerate() {
                let (ce, ae) = self.run_end(t, lvl, &outer[i], &cur[i], v);
                cur[i] = [ce, ae];
            }
        }
        d
    }

    /// Narrows every binding term's window to its `v` run and advances
    /// the merge cursors past it.
    fn narrow_to_run(
        &mut self,
        binding: &[(u32, u32)],
        outer: &[[u32; 4]],
        cur: &mut [[u32; 2]],
        v: u16,
    ) {
        for (i, &(t, lvl)) in binding.iter().enumerate() {
            let (ce, ae) = self.run_end(t, lvl, &outer[i], &cur[i], v);
            self.win[t as usize] = [cur[i][0], ce, cur[i][1], ae];
            cur[i] = [ce, ae];
        }
    }

    /// Evaluates the loop-invariant (hoisted) body steps once, in body
    /// order: copied-only subtrees see the same un-narrowed windows in
    /// every branch.
    fn hoist_body(&mut self, body: &[BodyStep], hoist_vals: &mut Vec<f64>) {
        for step in body {
            if let BodyStep::Hoisted(op) = step {
                hoist_vals.push(self.eval(*op));
            }
        }
    }

    /// One branch's subcomponent product `∏ p`, left to right with the
    /// interpreter's zero early-exit, through either the fused leaf list
    /// or the general body.
    fn branch_product(
        &mut self,
        op: u32,
        body: &[BodyStep],
        fused: Option<&[(u32, Transform, bool)]>,
        hoist_vals: &[f64],
        v: u16,
    ) -> f64 {
        let mut p_v = 1.0;
        if let Some(leaves) = fused {
            for &(t, tr, memoizable) in leaves {
                let p = if memoizable {
                    let key = (t, v, self.repl[t as usize].to_bits());
                    match self.memo[op as usize].get(&key) {
                        Some(&p) => p,
                        None => {
                            let p = self.leaf(t, tr);
                            self.memo[op as usize].insert(key, p);
                            p
                        }
                    }
                } else {
                    self.leaf(t, tr)
                };
                p_v *= p;
                if p_v == 0.0 {
                    break;
                }
            }
        } else {
            let mut hi = 0;
            for step in body {
                p_v *= match step {
                    BodyStep::Eval(op) => self.eval(*op),
                    BodyStep::Hoisted(_) => {
                        let x = hoist_vals[hi];
                        hi += 1;
                        x
                    }
                };
                if p_v == 0.0 {
                    break;
                }
            }
        }
        p_v
    }

    /// Advances the merge to the next key value present in *every*
    /// binding term (certain or alternative side), or `None` when any
    /// term is exhausted. Cursors are left at the start of each term's
    /// value run. Equivalent to the interpreter's sorted intersection of
    /// the per-term partition key sets.
    fn next_value(
        &self,
        binding: &[(u32, u32)],
        outer: &[[u32; 4]],
        cur: &mut [[u32; 2]],
    ) -> Option<u16> {
        let head = |cur: &[[u32; 2]], i: usize| -> Option<u16> {
            let (t, lvl) = binding[i];
            let r = &self.regs[t as usize];
            let c = (cur[i][0] < outer[i][1]).then(|| r.ckeys[lvl as usize][cur[i][0] as usize]);
            let a = (cur[i][1] < outer[i][3]).then(|| r.akeys[lvl as usize][cur[i][1] as usize]);
            match (c, a) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, None) => x,
                (None, y) => y,
            }
        };
        let mut v = head(cur, 0)?;
        for i in 1..binding.len() {
            v = v.max(head(cur, i)?);
        }
        loop {
            let mut stable = true;
            for i in 0..binding.len() {
                let (t, lvl) = binding[i];
                let r = &self.regs[t as usize];
                let ck = &r.ckeys[lvl as usize];
                let ak = &r.akeys[lvl as usize];
                cur[i][0] = skip_to(ck, cur[i][0], outer[i][1], v);
                cur[i][1] = skip_to(ak, cur[i][1], outer[i][3], v);
                let h = head(cur, i)?;
                if h > v {
                    v = h;
                    stable = false;
                }
            }
            if stable {
                return Some(v);
            }
        }
    }

    /// End of the `v` run starting at `cur` in term `t`'s level-`lvl` key
    /// registers, bounded by the outer window.
    fn run_end(&self, t: u32, lvl: u32, outer: &[u32; 4], cur: &[u32; 2], v: u16) -> (u32, u32) {
        let r = &self.regs[t as usize];
        let ck = &r.ckeys[lvl as usize];
        let ak = &r.akeys[lvl as usize];
        (
            past_run(ck, cur[0], outer[1], v),
            past_run(ak, cur[1], outer[3], v),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn in_pool<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("test pool")
            .install(f)
    }

    #[test]
    fn auto_mode_keeps_small_folds_sequential_even_in_wide_pools() {
        // The regression this guards: auto mode used to shard any fold 16
        // ways as soon as the pool had >1 thread, which made warm
        // microsecond folds hundreds of times slower. The size gate must
        // hold at every pool width.
        for threads in [1, 2, 4, 8] {
            let eff = in_pool(threads, || effective_shards(0, AUTO_SHARD_MIN_ROWS - 1));
            assert_eq!(eff, 1, "small fold sharded in a {threads}-thread pool");
        }
    }

    #[test]
    fn forced_counts_are_honored_verbatim() {
        for threads in [1, 8] {
            assert_eq!(in_pool(threads, || effective_shards(1, 1_000_000)), 1);
            assert_eq!(in_pool(threads, || effective_shards(5, 10)), 5);
            assert_eq!(in_pool(threads, || effective_shards(16, 0)), 16);
        }
    }

    #[test]
    fn auto_mode_follows_pool_and_host_width_for_large_folds() {
        let host = std::thread::available_parallelism().map_or(1, usize::from);
        // A single-thread pool never shards, whatever the host has.
        assert_eq!(in_pool(1, || effective_shards(0, u32::MAX)), 1);
        // A wide pool shards large folds only when the host can actually
        // run the shards in parallel.
        let expected = if host > 1 { DEFAULT_SHARDS } else { 1 };
        assert_eq!(in_pool(8, || effective_shards(0, u32::MAX)), expected);
    }
}
